"""Profile one experiment module under cProfile.

Usage::

    python benchmarks/profile_experiment.py fig6            # default scale
    python benchmarks/profile_experiment.py fig7 --scale 500
    python benchmarks/profile_experiment.py fig6 --sort tottime --top 40

Runs the named experiment's ``run()`` end-to-end (workload generation,
functional operator execution, performance/energy modeling) from cold
caches and prints the top functions by cumulative time -- the same view
that motivated the segmented columnar kernel layer.  ``make profile
EXPERIMENT=fig6`` is the developer entry point.

No third-party dependencies: runs anywhere the repo's Python does.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import pstats
import time

#: Experiment name -> module path; every module exposes ``run(scale=...)``.
EXPERIMENTS = {
    "fig6": "repro.experiments.fig6_probe",
    "fig7": "repro.experiments.fig7_overall",
    "fig8": "repro.experiments.fig8_energy",
    "fig9": "repro.experiments.fig9_efficiency",
    "table5": "repro.experiments.table5_partition",
}

#: Experiments whose ``run()`` takes no scale argument.
UNSCALED = {
    "table1": "repro.experiments.table1_operators",
    "table2": "repro.experiments.table2_phases",
    "sec31": "repro.experiments.sec31_activation",
    "sec32": "repro.experiments.sec32_mlp",
    "skew": "repro.experiments.skew_partitioning",
    "ablations": "repro.experiments.ablations",
}


def profile_experiment(name: str, scale: float, sort: str, top: int) -> pstats.Stats:
    """Run one experiment under cProfile and print its hot-spot report."""
    from repro.experiments import common

    scaled = name in EXPERIMENTS
    module = importlib.import_module((EXPERIMENTS | UNSCALED)[name])
    common.clear_caches()  # profile the cold pipeline, not a cache lookup

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    if scaled:
        module.run(scale=scale)
    else:
        module.run()
    profiler.disable()
    elapsed = time.perf_counter() - start

    scale_note = f" at scale {scale:g}" if scaled else ""
    print(f"{name}{scale_note}: {elapsed:.3f} s wall\n")
    stats = pstats.Stats(profiler).sort_stats(sort)
    stats.print_stats(top)
    return stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS | UNSCALED),
        help="experiment section to profile",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=500.0,
        help="model scale for the scaled figures (default: 500, the "
        "benchmark suite's scale; ignored for unscaled sections)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows to print (default: 25)"
    )
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    profile_experiment(args.experiment, args.scale, args.sort, args.top)


if __name__ == "__main__":
    main()
