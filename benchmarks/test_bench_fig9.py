"""Bench: Figure 9 -- performance-per-watt improvement over the CPU.

Paper: efficiency follows the performance trends with smaller gains;
Mondrian up to 28x over the CPU and ~5x over the best NMP baseline.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig7_overall, fig9_efficiency


def test_fig9_efficiency_improvements(benchmark):
    out = run_once(benchmark, fig9_efficiency.run, scale=BENCH_SCALE)
    imp = out["improvements"]

    for op, series in imp.items():
        assert series["mondrian"] >= series["nmp-perm"] >= 0.99 * series["nmp"], op
        for system, value in series.items():
            assert value > 1.0, (op, system)

    # Paper: up to 28x; accept the same order of magnitude.
    assert 28 / 4 < out["mondrian_peak"] < 28 * 4


def test_fig9_gains_smaller_than_fig7_performance(benchmark):
    """Paper: "the gains are smaller than the performance improvements,
    reflecting Mondrian's high utilization of system resources"."""
    eff = run_once(benchmark, fig9_efficiency.run, scale=BENCH_SCALE)
    perf = fig7_overall.run(scale=BENCH_SCALE)
    # Compare the Mondrian peaks: efficiency peak <= ~performance peak x1.5.
    assert eff["mondrian_peak"] <= perf["mondrian_peak"] * 1.5
