"""Bench: two-round partitioning under skew (section 5.4 future work).

Asserts that the overflow exception fires exactly when naive hashing
exceeds the destination-buffer capacity, and that the retry brings every
partition back under budget.
"""

from benchmarks.conftest import run_once
from repro.experiments import skew_partitioning


def test_skew_two_round_partitioning(benchmark):
    out = run_once(benchmark, skew_partitioning.run)
    points = out["points"]
    cap = out["capacity_factor"]

    # Uniform data: no retry, already balanced.
    assert not points[0.0]["retried"]
    assert points[0.0]["final_imbalance"] < cap + 0.1

    # Heavy skew: naive hashing far exceeds capacity, the retry fires
    # and restores balance to within the buffer budget.
    heavy = points[max(points)]
    assert heavy["naive_imbalance"] > cap
    assert heavy["retried"]
    assert heavy["final_imbalance"] <= cap + 0.1

    # Imbalance after the retry never exceeds capacity at any skew.
    for alpha, p in points.items():
        assert p["final_imbalance"] <= cap + 0.1, alpha
