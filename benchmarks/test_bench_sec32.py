"""Bench: Section 3.2 -- MLP-limited bandwidth under the vault power cap.

Paper: an A57-class OoO core sustains ~20 outstanding accesses for
~5.3 GB/s of the vault's 8 GB/s, at 1.5 W -- several times the 312 mW
budget; the Mondrian unit reaches the full 8 GB/s by streaming within
180 mW.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import sec32_mlp


def test_sec32_mlp_bandwidth_power(benchmark):
    out = run_once(benchmark, sec32_mlp.run)
    assert out["a57_mlp"] == pytest.approx(21.3, abs=1.5)
    assert out["a57_bw_gbps"] == pytest.approx(5.3, abs=0.5)
    d = out["details"]
    assert not d["cortex-a57 (OoO)"]["fits_vault_budget"]
    assert d["mondrian A35+SIMD"]["fits_vault_budget"]
    assert d["mondrian A35+SIMD"]["bw_gbps"] == pytest.approx(8.0)
