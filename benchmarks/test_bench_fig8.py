"""Bench: Figure 8 -- energy breakdown per system.

Asserted shape (paper section 7.2): CPU dominated by core energy;
NMP and NMP-perm near-identical profiles; Mondrian's profile shifted
toward dynamic DRAM (aggressive bandwidth utilization shrinks the
static-dominated components' share).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig8_energy


def test_fig8_energy_breakdown(benchmark):
    out = run_once(benchmark, fig8_energy.run, scale=BENCH_SCALE)
    fr = out["fractions"]

    for system, components in fr.items():
        assert sum(components.values()) == pytest.approx(1.0), system

    assert fr["cpu"]["cores"] == max(fr["cpu"].values())

    for component in fr["nmp-rand"]:
        assert fr["nmp-rand"][component] == pytest.approx(
            fr["nmp-perm"][component], abs=0.1
        ), component

    assert fr["mondrian"]["dram_dyn"] > fr["nmp-rand"]["dram_dyn"]

    totals = out["totals_j"]
    assert totals["mondrian"] < totals["nmp-rand"] < totals["cpu"]
