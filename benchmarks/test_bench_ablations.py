"""Bench: ablations over the Mondrian design choices (DESIGN.md section 5).

Not a paper artifact -- these sweeps probe the design space around the
paper's chosen points: SIMD width (the paper argues 1024 bits), row
buffer size (HMC's 256 B is the *conservative* case for permutability),
and the FR-FCFS window (reordering alone cannot recover shuffle
locality).
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import ablations


def test_ablation_simd_width(benchmark):
    sweep = run_once(
        benchmark, ablations.simd_width_sweep, widths=(128, 256, 512, 1024),
        scale=BENCH_SCALE,
    )
    runtimes = [sweep[w] for w in sorted(sweep)]
    # Wider SIMD never hurts, and 1024b beats 128b outright.
    assert all(a >= b * 0.999 for a, b in zip(runtimes, runtimes[1:]))
    assert sweep[1024] < sweep[128]


def test_ablation_row_buffer_size(benchmark):
    sweep = run_once(benchmark, ablations.row_buffer_sweep)
    savings = {rb: sweep[rb]["saving"] for rb in sweep}
    # Permutability always saves, and saves more on larger rows.
    assert all(s > 2 for s in savings.values())
    assert savings[256] < savings[2048] < savings[4096]


def test_ablation_scheduler_window(benchmark):
    sweep = run_once(benchmark, ablations.scheduler_window_sweep)
    # Practical windows (<= 64) recover under half the locality that
    # permutability provides by construction (hit rate ~15/16 = 0.94).
    assert sweep[16] < 0.5
    assert sweep[64] < 0.94
    # Monotone in window size.
    rates = [sweep[w] for w in sorted(sweep)]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
