"""Bench: Table 1 -- Spark-operator characterization.

Regenerates the basic-operator taxonomy and verifies every basic
operator against its oracle.
"""

from benchmarks.conftest import run_once
from repro.experiments import table1_operators


def test_table1_operator_characterization(benchmark):
    out = run_once(benchmark, table1_operators.run)
    assert all(out["verified"].values())
    # The four basic operators cover all listed Spark transformations.
    spark_ops = [op for ops in out["map"].values() for op in ops]
    assert len(spark_ops) == 14
