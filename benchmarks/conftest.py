"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures end-to-end
(workload generation, functional operator execution, performance/energy
modeling) and asserts the paper's qualitative shape on the result.  The
timed quantity is the full experiment pipeline; `pedantic` keeps rounds
low because each run is itself seconds of work.
"""

import pytest

#: Model scale used by the benches: large enough that working sets
#: exceed all cache levels (as in the paper), small enough to finish
#: in seconds.
BENCH_SCALE = 500.0


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
