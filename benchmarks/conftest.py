"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures end-to-end
(workload generation, functional operator execution, performance/energy
modeling) and asserts the paper's qualitative shape on the result.  The
timed quantity is the full experiment pipeline; `pedantic` keeps rounds
low because each run is itself seconds of work.

The experiment layer memoizes workloads and (system, operator) results
in process-wide caches (see ``repro.experiments.common``); every
benchmark starts from cleared caches so it times the full pipeline, not
a lookup of the previous benchmark's work.
"""

import pytest

from repro.experiments import common

#: Model scale used by the benches: large enough that working sets
#: exceed all cache levels (as in the paper), small enough to finish
#: in seconds.
BENCH_SCALE = 500.0


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_result_store():
    """An ambient ``REPRO_STORE`` would turn the timed cold pipelines
    into warm store replays (and write benchmark entries into the
    user's personal store); scrub it for the whole session."""
    mp = pytest.MonkeyPatch()
    mp.delenv(common.STORE_ENV, raising=False)
    mp.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    yield
    mp.undo()


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each benchmark measures a cold experiment pipeline."""
    common.clear_caches()
    yield
    common.clear_caches()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
