"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures end-to-end
(workload generation, functional operator execution, performance/energy
modeling) and asserts the paper's qualitative shape on the result.  The
timed quantity is the full experiment pipeline, re-run from restored
cold state for a few identical rounds (`run_once`) so the trajectory
gate can read a jitter-robust minimum.

The experiment layer memoizes workloads and (system, operator) results
in process-wide caches (see ``repro.experiments.common``); every
benchmark starts from cleared caches so it times the full pipeline, not
a lookup of the previous benchmark's work.
"""

import os

import pytest

from repro.experiments import common

#: Model scale used by the benches: large enough that working sets
#: exceed all cache levels (as in the paper), small enough to finish
#: in seconds.
BENCH_SCALE = 500.0


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_result_store():
    """An ambient ``REPRO_STORE`` would turn the timed cold pipelines
    into warm store replays (and write benchmark entries into the
    user's personal store); scrub it for the whole session.  Store
    benches use throwaway tmp-path stores, so they take the documented
    ``REPRO_STORE_FSYNC=0`` fast path: the trajectory compares
    simulation and codec work across PRs, not the host's fsync latency
    (durability is chaos-test's job, and BENCH_PR4/PR5 predate the
    journaled fsync path entirely)."""
    from repro.service import store as store_mod

    mp = pytest.MonkeyPatch()
    mp.delenv(common.STORE_ENV, raising=False)
    mp.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    mp.setenv(store_mod.FSYNC_ENV, "0")
    yield
    mp.undo()


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each benchmark measures a cold experiment pipeline."""
    common.clear_caches()
    yield
    common.clear_caches()


#: Identical cold rounds per benchmark.  The trajectory gate
#: (``benchmarks/compare.py``) reads the *minimum* round -- the
#: jitter-robust estimator of a deterministic pipeline's true cost on a
#: shared machine, where scheduler blips only ever add time.  On very
#: noisy shared hosts (effective CPU speed can swing 2x for tens of
#: seconds at a stretch), raise ``BENCH_ROUNDS`` so every benchmark
#: samples several noise episodes and the minimum converges.
ROUNDS = int(os.environ.get("BENCH_ROUNDS", "3"))


def run_once(benchmark, fn, *args, restore=None, **kwargs):
    """Time an experiment from restored-cold state, ``ROUNDS`` times.

    Caches are cleared before every round so each one times the full
    cold pipeline; a benchmark with extra per-round state (e.g. a store
    directory that must start empty) passes ``restore`` to reset it.
    Returns the last round's result.
    """

    def _restore():
        common.clear_caches()
        if restore is not None:
            restore()

    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, setup=_restore, rounds=ROUNDS, iterations=1
    )
