"""Bench: the persistent result store, cold vs warm.

Times the committed sweep-smoke grid through the store tier in both
regimes the evaluation service cares about:

- **cold store**: empty directory, every scenario simulates and writes
  its evaluated result back -- the first client's bill;
- **warm store**: the same grid replayed with cold *in-memory* caches
  against a populated store -- the fresh-process / second-client path,
  which must cost JSON decoding, not simulation.

The warm/cold ratio is the service's whole value proposition, so it
rides the perf trajectory (``BENCH_PR4.json``) from this PR on.
"""

import shutil
from pathlib import Path

from benchmarks.conftest import run_once
from repro.api import Sweep
from repro.experiments import common

SPEC = Path(__file__).resolve().parents[1] / "tests" / "data" / "sweep_smoke.json"


def _smoke_sweep() -> Sweep:
    return Sweep.from_json(SPEC.read_text())


def _run_with_store(store_dir) -> int:
    common.configure_store(store_dir)
    try:
        return len(_smoke_sweep().run())
    finally:
        common.configure_store(None)


def test_sweep_cold_store(benchmark, tmp_path):
    store = tmp_path / "store"

    def empty_store():  # every round starts from an empty directory
        shutil.rmtree(store, ignore_errors=True)

    records = run_once(benchmark, _run_with_store, store, restore=empty_store)
    assert records > 0
    assert len(list(store.glob("objects/*/*.json"))) == 4


def test_sweep_warm_store(benchmark, tmp_path):
    store = tmp_path / "store"
    populated = _run_with_store(store)  # fill the store outside the clock
    common.clear_caches()  # memory tiers cold: only the store is warm
    count = run_once(benchmark, _run_with_store, store)
    assert count == populated
    # Nothing new was evaluated: the entry set is exactly the cold run's.
    assert len(list(store.glob("objects/*/*.json"))) == 4


def test_sweep_no_store_baseline(benchmark):
    """The in-memory-only cold path, for the trajectory comparison."""
    result = run_once(benchmark, lambda: len(_smoke_sweep().run()))
    assert result > 0
