"""Diff two pytest-benchmark JSON files (the repo's BENCH_* trajectory).

Usage::

    python benchmarks/compare.py NEW.json OLD.json   # explicit pair
    python benchmarks/compare.py --latest            # newest two BENCH_*.json
    python benchmarks/compare.py --latest --max-regression 10

Prints per-benchmark representative times (the min round; see
``load_means``) and the speedup of NEW over OLD (>1x means NEW is
faster), plus benchmarks present in only one file.  By default the
comparison is informational (exits non-zero only on usage errors); with
``--max-regression PCT`` any shared benchmark that regressed more than
PCT percent is flagged and the exit status is non-zero -- the perf gate
``make bench-compare`` runs in CI.

No third-party dependencies: runs anywhere the repo's Python does.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


#: Latency-percentile stats fields carried through the comparison when a
#: benchmark records them (the fleet load test does; plain
#: pytest-benchmark entries do not, and simply lack the fields).
PERCENTILE_FIELDS = ("p50", "p95", "p99")


def load_means(path: Path) -> dict:
    """benchmark name -> representative seconds, from a pytest-benchmark JSON.

    The representative time is the *minimum* round when present (the
    benches run identical restored-cold rounds, so scheduler jitter only
    ever adds time and the min estimates the true cost), falling back to
    the mean for files recorded before multi-round benches -- under the
    old ``rounds=1`` regime the two are the same number, so trajectory
    points stay comparable.
    """
    with path.open() as fh:
        payload = json.load(fh)
    return {
        b["name"]: b["stats"].get("min", b["stats"].get("mean"))
        for b in payload.get("benchmarks", [])
    }


def load_percentiles(path: Path) -> dict:
    """benchmark name -> recorded latency percentiles (p50/p95/p99).

    Only benchmarks whose ``stats`` carry percentile fields appear (the
    ``load_test_*`` entries written by ``tools/load_test.py``); for a
    multi-round latency distribution the tail is the interesting part,
    and the min that represents compute benches would hide it.
    """
    with path.open() as fh:
        payload = json.load(fh)
    out = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        fields = {k: stats[k] for k in PERCENTILE_FIELDS if k in stats}
        if fields:
            out[bench["name"]] = fields
    return out


def find_latest_pair() -> tuple:
    """The two newest BENCH_*.json files in the repo root, by PR number."""

    def pr_number(path: Path) -> int:
        match = re.search(r"(\d+)", path.stem)
        return int(match.group(1)) if match else -1

    files = sorted(ROOT.glob("BENCH_*.json"), key=pr_number)
    if len(files) < 2:
        raise SystemExit(
            f"--latest needs two BENCH_*.json files in {ROOT}, found "
            f"{[f.name for f in files]}; this PR establishes the first "
            "trajectory point, so there is nothing to diff yet"
        )
    return files[-1], files[-2]


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def find_regressions(
    new: dict, old: dict, max_regression_pct: float,
    new_percentiles=None, old_percentiles=None,
) -> list:
    """Shared benchmarks whose NEW mean exceeds OLD by > the threshold.

    Returns ``(name, old_mean, new_mean, regression_pct)`` tuples,
    worst first.  When both sides recorded latency percentiles for a
    shared benchmark, each regressed percentile is gated too, as its
    own ``name:p99``-style entry -- a load test whose median held but
    whose tail blew up fails the gate.
    """
    regressions = []
    for name in sorted(set(new) & set(old)):
        if old[name] <= 0:
            continue
        pct = (new[name] / old[name] - 1.0) * 100.0
        if pct > max_regression_pct:
            regressions.append((name, old[name], new[name], pct))
        if new_percentiles and old_percentiles:
            new_p = new_percentiles.get(name, {})
            old_p = old_percentiles.get(name, {})
            for field in PERCENTILE_FIELDS:
                if field not in new_p or old_p.get(field, 0) <= 0:
                    continue
                ppct = (new_p[field] / old_p[field] - 1.0) * 100.0
                if ppct > max_regression_pct:
                    regressions.append(
                        (f"{name}:{field}", old_p[field], new_p[field], ppct)
                    )
    regressions.sort(key=lambda item: -item[3])
    return regressions


def compare(
    new_path: Path, old_path: Path, new=None, old=None,
    new_percentiles=None, old_percentiles=None,
) -> str:
    new = load_means(new_path) if new is None else new
    old = load_means(old_path) if old is None else old
    new_percentiles = new_percentiles or {}
    old_percentiles = old_percentiles or {}
    shared = sorted(set(new) & set(old))
    only_new = sorted(set(new) - set(old))
    only_old = sorted(set(old) - set(new))
    lines = [f"Benchmark comparison: {new_path.name} vs {old_path.name}", ""]
    if shared:
        header = f"{'benchmark':<44}  {'old':>10}  {'new':>10}  {'speedup':>8}"
        lines += [header, "-" * len(header)]
        for name in shared:
            speedup = old[name] / new[name] if new[name] else float("inf")
            lines.append(
                f"{name:<44}  {fmt_seconds(old[name]):>10}  "
                f"{fmt_seconds(new[name]):>10}  {speedup:>7.2f}x"
            )
            if name in new_percentiles and name in old_percentiles:
                for field in PERCENTILE_FIELDS:
                    if field in new_percentiles[name] and field in old_percentiles[name]:
                        lines.append(
                            f"  {name + ':' + field:<42}  "
                            f"{fmt_seconds(old_percentiles[name][field]):>10}  "
                            f"{fmt_seconds(new_percentiles[name][field]):>10}"
                        )
    else:
        lines.append(
            "no shared benchmarks between the two files -- the suites "
            "diverged completely; see the sections below"
        )
    if only_new:
        lines += ["", f"new benchmarks ({len(only_new)}, only in "
                      f"{new_path.name} -- no old baseline):"]
        lines += [f"  {name}  {fmt_seconds(new[name])}" for name in only_new]
    if only_old:
        lines += ["", f"removed benchmarks ({len(only_old)}, only in "
                      f"{old_path.name} -- not run anymore):"]
        lines += [f"  {name}  {fmt_seconds(old[name])}" for name in only_old]
    if shared:
        # A zero NEW mean would divide by zero; such benches are shown
        # in the table (as inf speedup) but excluded from the geomean.
        measurable = [n for n in shared if new[n] > 0 and old[n] > 0]
        if measurable:
            geomean = 1.0
            for name in measurable:
                geomean *= old[name] / new[name]
            geomean **= 1.0 / len(measurable)
            note = (f" ({len(shared) - len(measurable)} zero-mean "
                    "excluded)" if len(measurable) != len(shared) else "")
            lines += ["", f"geomean speedup over {len(measurable)} shared "
                          f"benchmarks{note}: {geomean:.2f}x"]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="NEW.json OLD.json (pytest-benchmark output)")
    parser.add_argument("--latest", action="store_true",
                        help="compare the two newest BENCH_*.json in the repo root")
    parser.add_argument("--max-regression", type=float, default=None, metavar="PCT",
                        help="fail (exit 1) if any shared benchmark "
                             "regressed more than PCT percent vs OLD")
    parser.add_argument("--json", metavar="OUT", dest="json_out",
                        help="also write the comparison as a canonical JSON "
                             "document to OUT ('-' for stdout): per-benchmark "
                             "old/new/speedup, new/removed lists, geomean, "
                             "and the regression verdict")
    return parser


def comparison_document(
    new_path: Path, old_path: Path, new: dict, old: dict,
    max_regression_pct=None, new_percentiles=None, old_percentiles=None,
) -> dict:
    """The machine-readable comparison (the ``--json`` artifact).

    Mirrors what :func:`compare` prints: shared benchmarks with their
    representative times and speedups, one-sided benchmarks, the geomean
    over measurable shared benches, and -- when a threshold is given --
    the per-benchmark regressions that would fail the gate.  Benchmarks
    carrying latency percentiles (the load-test phases) keep them under
    ``percentiles`` per side, and percentile regressions appear in the
    gate as ``name:p99``-style entries.
    """
    new_percentiles = new_percentiles or {}
    old_percentiles = old_percentiles or {}
    shared = sorted(set(new) & set(old))
    measurable = [n for n in shared if new[n] > 0 and old[n] > 0]
    geomean = None
    if measurable:
        geomean = 1.0
        for name in measurable:
            geomean *= old[name] / new[name]
        geomean **= 1.0 / len(measurable)
    document = {
        "schema": "bench-compare/v1",
        "new_file": new_path.name,
        "old_file": old_path.name,
        "shared": {
            name: {
                "old_s": old[name],
                "new_s": new[name],
                "speedup": (old[name] / new[name]) if new[name] else None,
                **(
                    {"percentiles": {
                        "old": old_percentiles.get(name),
                        "new": new_percentiles.get(name),
                    }}
                    if name in new_percentiles or name in old_percentiles
                    else {}
                ),
            }
            for name in shared
        },
        "only_new": sorted(set(new) - set(old)),
        "only_old": sorted(set(old) - set(new)),
        "new_percentiles": {
            name: new_percentiles[name]
            for name in sorted(set(new_percentiles) - set(old))
        },
        "geomean_speedup": geomean,
    }
    if max_regression_pct is not None:
        regressions = find_regressions(
            new, old, max_regression_pct,
            new_percentiles=new_percentiles, old_percentiles=old_percentiles,
        )
        document["max_regression_pct"] = max_regression_pct
        document["regressions"] = [
            {"name": name, "old_s": old_s, "new_s": new_s, "pct": pct}
            for name, old_s, new_s, pct in regressions
        ]
        document["gate_ok"] = not regressions
    return document


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.latest:
        if args.files:
            raise SystemExit("pass either --latest or two files, not both")
        new_path, old_path = find_latest_pair()
    elif len(args.files) == 2:
        new_path, old_path = args.files
    else:
        raise SystemExit("expected exactly two files (NEW.json OLD.json) or --latest")
    for path in (new_path, old_path):
        if not path.is_file():
            raise SystemExit(f"no such benchmark file: {path}")
    new, old = load_means(new_path), load_means(old_path)
    new_pct, old_pct = load_percentiles(new_path), load_percentiles(old_path)
    print(compare(new_path, old_path, new=new, old=old,
                  new_percentiles=new_pct, old_percentiles=old_pct))
    if args.json_out:
        document = comparison_document(
            new_path, old_path, new, old,
            max_regression_pct=args.max_regression,
            new_percentiles=new_pct, old_percentiles=old_pct,
        )
        text = json.dumps(document, sort_keys=True, separators=(",", ":"))
        if args.json_out == "-":
            print(text)
        else:
            Path(args.json_out).write_text(text + "\n")
            print(f"wrote comparison JSON to {args.json_out}", file=sys.stderr)
    if args.max_regression is not None:
        regressions = find_regressions(
            new, old, args.max_regression,
            new_percentiles=new_pct, old_percentiles=old_pct,
        )
        if regressions:
            print(
                f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
                f"{args.max_regression:g}% vs {old_path.name}:"
            )
            for name, old_mean, new_mean, pct in regressions:
                print(
                    f"  {name}: {fmt_seconds(old_mean)} -> "
                    f"{fmt_seconds(new_mean)}  (+{pct:.1f}%)"
                )
            raise SystemExit(1)
        print(
            f"\nOK: no shared benchmark regressed more than "
            f"{args.max_regression:g}%."
        )


if __name__ == "__main__":
    main()
