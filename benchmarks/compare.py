"""Diff two pytest-benchmark JSON files (the repo's BENCH_* trajectory).

Usage::

    python benchmarks/compare.py NEW.json OLD.json   # explicit pair
    python benchmarks/compare.py --latest            # newest two BENCH_*.json

Prints per-benchmark mean times and the speedup of NEW over OLD
(>1x means NEW is faster), plus benchmarks present in only one file.
Exits non-zero only on usage errors -- the comparison is informational,
the repo's perf gate is the committed BENCH file trajectory itself.

No third-party dependencies: runs anywhere the repo's Python does.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def load_means(path: Path) -> dict:
    """benchmark name -> mean seconds, from a pytest-benchmark JSON."""
    with path.open() as fh:
        payload = json.load(fh)
    return {b["name"]: b["stats"]["mean"] for b in payload.get("benchmarks", [])}


def find_latest_pair() -> tuple:
    """The two newest BENCH_*.json files in the repo root, by PR number."""

    def pr_number(path: Path) -> int:
        match = re.search(r"(\d+)", path.stem)
        return int(match.group(1)) if match else -1

    files = sorted(ROOT.glob("BENCH_*.json"), key=pr_number)
    if len(files) < 2:
        raise SystemExit(
            f"--latest needs two BENCH_*.json files in {ROOT}, found "
            f"{[f.name for f in files]}; this PR establishes the first "
            "trajectory point, so there is nothing to diff yet"
        )
    return files[-1], files[-2]


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def compare(new_path: Path, old_path: Path) -> str:
    new, old = load_means(new_path), load_means(old_path)
    shared = sorted(set(new) & set(old))
    lines = [f"Benchmark comparison: {new_path.name} vs {old_path.name}", ""]
    header = f"{'benchmark':<44}  {'old':>10}  {'new':>10}  {'speedup':>8}"
    lines += [header, "-" * len(header)]
    for name in shared:
        speedup = old[name] / new[name] if new[name] else float("inf")
        lines.append(
            f"{name:<44}  {fmt_seconds(old[name]):>10}  "
            f"{fmt_seconds(new[name]):>10}  {speedup:>7.2f}x"
        )
    for name in sorted(set(new) - set(old)):
        lines.append(f"{name:<44}  {'-':>10}  {fmt_seconds(new[name]):>10}  {'new':>8}")
    for name in sorted(set(old) - set(new)):
        lines.append(f"{name:<44}  {fmt_seconds(old[name]):>10}  {'-':>10}  {'gone':>8}")
    if shared:
        geomean = 1.0
        for name in shared:
            geomean *= old[name] / new[name]
        geomean **= 1.0 / len(shared)
        lines += ["", f"geomean speedup over {len(shared)} shared benchmarks: "
                      f"{geomean:.2f}x"]
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="NEW.json OLD.json (pytest-benchmark output)")
    parser.add_argument("--latest", action="store_true",
                        help="compare the two newest BENCH_*.json in the repo root")
    args = parser.parse_args(argv)
    if args.latest:
        if args.files:
            raise SystemExit("pass either --latest or two files, not both")
        new_path, old_path = find_latest_pair()
    elif len(args.files) == 2:
        new_path, old_path = args.files
    else:
        raise SystemExit("expected exactly two files (NEW.json OLD.json) or --latest")
    for path in (new_path, old_path):
        if not path.is_file():
            raise SystemExit(f"no such benchmark file: {path}")
    print(compare(new_path, old_path))


if __name__ == "__main__":
    main()
