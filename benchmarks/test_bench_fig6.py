"""Bench: Figure 6 -- probe-phase speedup over the CPU per operator.

Asserted shape (paper section 7.1):

- NMP-rand == NMP-seq on Scan (identical code);
- NMP-rand beats NMP-seq on Join and Group by (scalar hardware does not
  pay back the sort's extra log n passes);
- Mondrian's wide SIMD makes the sort-based probe the overall winner;
- every NMP configuration beats the CPU.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig6_probe


def test_fig6_probe_speedups(benchmark):
    out = run_once(benchmark, fig6_probe.run, scale=BENCH_SCALE)
    s = out["speedups"]

    assert s["scan"]["nmp-rand"] == pytest.approx(s["scan"]["nmp-seq"])

    for op in ("join", "groupby"):
        assert s[op]["nmp-rand"] > s[op]["nmp-seq"], op

    for op, series in s.items():
        assert series["mondrian"] >= 0.95 * max(series.values()), op
        for system, value in series.items():
            assert value > 1.0, (op, system)

    # Scan magnitudes near the paper's (2.4x NMP, ~6x Mondrian).
    assert 1.5 < s["scan"]["nmp-rand"] < 6.0
    assert 3.0 < s["scan"]["mondrian"] < 15.0
