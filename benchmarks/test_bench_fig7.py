"""Bench: Figure 7 -- overall speedup over the CPU baseline.

Paper: Mondrian peaks at 49x over the CPU and 5x over the best NMP
baseline.  Asserted: the ordering NMP <= NMP-perm < Mondrian per
operator, and the two headline peaks within the same order of magnitude.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig7_overall


def test_fig7_overall_speedups(benchmark):
    out = run_once(benchmark, fig7_overall.run, scale=BENCH_SCALE)
    s = out["speedups"]

    for op, series in s.items():
        assert series["nmp"] <= series["nmp-perm"] * 1.01, op
        assert series["mondrian"] > series["nmp"], op
        assert series["nmp"] > 1.0, op

    # Headline factors within the paper's order of magnitude.
    assert 49 / 10 < out["mondrian_peak"] < 49 * 4
    assert 5 / 4 < out["mondrian_vs_best_nmp_peak"] < 5 * 4
