"""Bench: the benchmark-suite subsystem, one representative suite per
workload family plus the scored full grid.

Each family bench times the full cold pipeline for one registered suite
on the CPU baseline and Mondrian: typed workload generation (packed
composite keys, dictionary-encoded strings, windowed streams, skewed
users), ``QueryPlan`` execution through ``Machine.run_pipeline``, and
the tidy per-stage record export.  The grid bench adds the scoring
engine -- every suite on every evaluated preset, folded into the tiered
ranking report -- which is exactly what ``run_all --suites`` pays.

Asserted shape: the suites agree with the paper's verdict (Mondrian
beats the CPU end-to-end and tops the composite ranking), so a perf win
here cannot come from computing less.
"""

from benchmarks.conftest import run_once
from repro.experiments import common
from repro.suites import SUITES, SuiteRun, score_records

#: One representative suite per workload family, in registry order.
FAMILY_SUITES = {
    "composite-key": "composite-sales",
    "string-key": "dict-products",
    "windowed": "windowed-clicks",
    "skewed": "skew-hotspot",
}


def _run_suite(name):
    return SuiteRun(suites=(name,), systems=("cpu", "mondrian")).run()


def _check_cpu_vs_mondrian(rs):
    assert len(rs) > 0
    cpu = rs.filter(system="cpu").total("time_s")
    mon = rs.filter(system="mondrian").total("time_s")
    assert mon < cpu  # near-memory wins end-to-end


def test_suite_composite_sales(benchmark):
    rs = run_once(benchmark, _run_suite, FAMILY_SUITES["composite-key"])
    _check_cpu_vs_mondrian(rs)


def test_suite_dict_products(benchmark):
    rs = run_once(benchmark, _run_suite, FAMILY_SUITES["string-key"])
    _check_cpu_vs_mondrian(rs)


def test_suite_windowed_clicks(benchmark):
    rs = run_once(benchmark, _run_suite, FAMILY_SUITES["windowed"])
    _check_cpu_vs_mondrian(rs)


def test_suite_skew_hotspot(benchmark):
    rs = run_once(benchmark, _run_suite, FAMILY_SUITES["skewed"])
    _check_cpu_vs_mondrian(rs)


def test_suite_grid_scored(benchmark):
    """The full catalogue, scored: the ``run_all --suites`` bill."""

    def grid_and_score():
        return score_records(SuiteRun().run())

    report = run_once(benchmark, grid_and_score)
    assert set(report["suites"]) == set(SUITES)
    assert report["ranking"][0]["system"] == "mondrian"


def test_suite_warm_store_replay(benchmark, tmp_path):
    """Fresh-process path: cold memory tiers against a populated store
    must cost JSON decoding, not pipeline simulation."""
    store = tmp_path / "store"
    name = FAMILY_SUITES["string-key"]

    def run_with_store():
        common.configure_store(store)
        try:
            return _run_suite(name)
        finally:
            common.configure_store(None)

    cold = run_with_store()  # fill the store outside the clock
    common.clear_caches()  # memory tiers cold: only the store is warm
    warm = run_once(benchmark, run_with_store)
    assert warm.to_json() == cold.to_json()
