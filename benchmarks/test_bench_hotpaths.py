"""Bench: the vectorized functional-simulation hot paths in isolation.

These microbenches pin the two kernels the end-to-end experiments spend
their time in -- the shuffle engine's destination materialization (both
write disciplines) and the mergesort pass structure -- at a size close
to one full-scale partitioning phase (64 partitions, paper section 6).
They complement the per-figure benches: a regression here shows up
before it is diluted by modeling code.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analytics.tuples import TUPLE_DTYPE, Relation
from repro.operators.sort_algos import mergesort
from repro.shuffle.engine import ShuffleEngine

NUM_PARTITIONS = 64
TUPLES_PER_SOURCE = 4_000  # 256k tuples through the engine per run


def _shuffle_inputs(seed=17):
    rng = np.random.default_rng(seed)
    sources, dest_maps = [], []
    for s in range(NUM_PARTITIONS):
        keys = rng.integers(0, 1 << 40, TUPLES_PER_SOURCE, dtype=np.uint64)
        sources.append(Relation.from_arrays(keys, keys, f"s{s}"))
        dest_maps.append(
            rng.integers(0, NUM_PARTITIONS, TUPLES_PER_SOURCE).astype(np.int64)
        )
    return sources, dest_maps


def test_shuffle_permutable(benchmark):
    sources, dest_maps = _shuffle_inputs()
    engine = ShuffleEngine(NUM_PARTITIONS, permutable=True)
    result = run_once(benchmark, engine.run, sources, dest_maps)
    assert result.total_tuples == NUM_PARTITIONS * TUPLES_PER_SOURCE
    assert result.barrier.all_complete()


def test_shuffle_addressed(benchmark):
    sources, dest_maps = _shuffle_inputs()
    engine = ShuffleEngine(NUM_PARTITIONS, permutable=False)
    result = run_once(benchmark, engine.run, sources, dest_maps)
    assert result.total_tuples == NUM_PARTITIONS * TUPLES_PER_SOURCE
    assert result.barrier.all_complete()


def test_mergesort_bitonic_seeded(benchmark):
    rng = np.random.default_rng(23)
    data = np.empty(64_000, dtype=TUPLE_DTYPE)
    data["key"] = rng.integers(0, 1 << 48, len(data), dtype=np.uint64)
    data["payload"] = rng.integers(0, 1 << 60, len(data), dtype=np.uint64)
    out, stats = run_once(benchmark, mergesort, data, True)
    assert np.array_equal(np.sort(out["key"]), out["key"])
    assert stats.bitonic_steps > 0
