"""Bench: Section 3.1 -- row-activation energy share vs access size.

Paper: ~14% of access energy when a whole 256 B HMC row is consumed,
~80% at 8 B granularity; larger-row devices are worse.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import sec31_activation


def test_sec31_activation_fractions(benchmark):
    out = run_once(benchmark, sec31_activation.run)
    assert out["hmc_full_row"] == pytest.approx(0.14, abs=0.04)
    assert out["hmc_8b"] == pytest.approx(0.80, abs=0.08)
    # Larger row buffers waste more (HBM 2 KB, Wide I/O 2 4 KB).
    assert (
        out["fractions"]["HMC"][64]
        < out["fractions"]["HBM"][64]
        < out["fractions"]["WideIO2"][64]
    )
