"""Bench: Table 2 -- operator phase decomposition.

Asserts the measured phase structure matches the paper's table: Scan has
no partitioning; Join/Group by/Sort run histogram + distribution; hash
variants add a probe-side hash step.
"""

from benchmarks.conftest import run_once
from repro.experiments import table2_phases


def test_table2_phase_decomposition(benchmark):
    out = run_once(benchmark, table2_phases.run)
    s = out["structure"]
    assert s["scan"]["histogram"] == [] and s["scan"]["distribute"] == []
    for op in ("join", "groupby", "sort"):
        assert s[op]["histogram"] and s[op]["distribute"]
    assert "hash-build" in s["join"]["probe"]       # second hash step
    assert "hash-aggregate" in s["groupby"]["probe"]
    assert s["sort"]["probe"] == ["mergesort"]       # local sort only
