"""Bench: Table 5 -- partitioning-phase speedup over the CPU baseline.

Paper: NMP 58x, NMP-perm 98x, Mondrian-noperm 142x, Mondrian 273x.
Asserted shape: the strict ordering, the ~1.7x permutability step on the
NMP baseline, the ~1.9x permutability step on Mondrian, and every
speedup within an order of magnitude of the paper's value.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import table5_partition


def test_table5_partition_speedups(benchmark):
    out = run_once(benchmark, table5_partition.run, scale=BENCH_SCALE)
    s = out["speedups"]

    # Strict ordering of the four rows.
    assert 1 < s["nmp-rand"] < s["nmp-perm"] < s["mondrian-noperm"] < s["mondrian"]

    # Step ratios (paper: 98/58 = 1.7, 273/142 = 1.9).
    assert 1.2 < s["nmp-perm"] / s["nmp-rand"] < 2.5
    assert 1.3 < s["mondrian"] / s["mondrian-noperm"] < 3.0

    # Same order of magnitude as the paper.
    for name, paper in out["paper"].items():
        assert paper / 10 < s[name] < paper * 10, (name, s[name], paper)
