"""Bench: telemetry overhead -- disabled tracing must be (nearly) free.

Two trajectory points:

- ``test_fig6_with_tracer_installed`` times the figure-6 experiment
  with a live tracer collecting every span, so the trajectory tracks
  the *enabled* cost of instrumentation over time.
- ``test_disabled_overhead_budget`` directly enforces the design
  budget: with no tracer installed, the instrumented figure-6 pipeline
  must cost within 2% of the same pipeline timed around the
  instrumentation sites' no-op guard.  The guard is one module-global
  read per site, so a regression here means someone put real work
  outside the ``tracer is None`` check.
"""

import time

from benchmarks.conftest import BENCH_SCALE, ROUNDS, run_once
from repro.experiments import common, fig6_probe
from repro.telemetry import install_tracer, uninstall_tracer

#: Max tolerated slowdown of the disabled-telemetry pipeline vs itself
#: (paired cold rounds), from the ISSUE's instrumentation budget.
DISABLED_OVERHEAD_BUDGET = 0.02


def test_fig6_with_tracer_installed(benchmark):
    def traced_run():
        tracer = install_tracer()
        try:
            return fig6_probe.run(scale=BENCH_SCALE), len(tracer.spans)
        finally:
            uninstall_tracer()

    out, span_count = run_once(benchmark, traced_run)
    assert span_count > 0
    assert out["speedups"]["scan"]["mondrian"] > 1.0


def test_disabled_overhead_budget():
    """The no-op guard's total cost must stay under 2% of fig6's runtime.

    Three measurements: (1) the cold figure-6 runtime with telemetry
    disabled; (2) how many instrumentation sites that pipeline actually
    crosses (count spans from one traced run); (3) the per-crossing
    cost of the disabled guard, micro-benchmarked directly.  The
    enforced budget is ``crossings x guard_cost < 2% x runtime`` -- if
    anyone moves real work outside the ``tracer is None`` check, the
    guard cost explodes and this fails long before users feel it.
    """
    from repro.telemetry import span

    def cold_runtime_ns() -> int:
        common.clear_caches()
        start = time.perf_counter_ns()
        fig6_probe.run(scale=BENCH_SCALE)
        return time.perf_counter_ns() - start

    cold_runtime_ns()  # warm imports/allocator before timing
    runtime_ns = min(cold_runtime_ns() for _ in range(ROUNDS))

    tracer = install_tracer()
    try:
        common.clear_caches()
        fig6_probe.run(scale=BENCH_SCALE)
        crossings = len(tracer.spans)
    finally:
        uninstall_tracer()
    assert crossings > 0

    calls = 200_000
    start = time.perf_counter_ns()
    for _ in range(calls):
        with span("budget", category="bench"):
            pass
    guard_ns = (time.perf_counter_ns() - start) / calls

    overhead = crossings * guard_ns / runtime_ns
    assert overhead < DISABLED_OVERHEAD_BUDGET, (
        f"{crossings} disabled span sites x {guard_ns:.0f} ns "
        f"= {overhead:.2%} of the {runtime_ns / 1e6:.0f} ms fig6 run "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%})"
    )
