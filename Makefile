# Mondrian Data Engine reproduction -- developer entry points.
# All targets run from the repo root; no installation required.

PY ?= python
export PYTHONPATH := src

#: Current perf-trajectory point; bump per perf PR (BENCH_PR3.json, ...).
BENCH_JSON ?= BENCH_PR2.json

.PHONY: test docs-check report pipelines bench bench-compare

## Tier-1 verification: full unit/integration/experiment + benchmark suite.
test:
	$(PY) -m pytest -x -q

## Executable-documentation check: doctest every fenced code block in
## README.md and docs/, validate documented CLI flags against the real
## parser, then smoke-run the documented commands end-to-end.
docs-check:
	$(PY) -m pytest -q tests/test_docs.py
	$(PY) -m repro.experiments.run_all --fast > /dev/null
	$(PY) -m repro.experiments.run_all --fast --pipelines > /dev/null
	@echo "docs-check OK: doc examples pass and documented commands run."

## Full paper-artifact report at paper scale.
report:
	$(PY) -m repro.experiments.run_all

## Query-pipeline suite (per-stage breakdowns, CPU vs NMP vs Mondrian).
pipelines:
	$(PY) -m repro.experiments.run_all --pipelines

## Perf trajectory: run the benchmark suite and write $(BENCH_JSON).
bench:
	$(PY) -m pytest -q benchmarks --benchmark-json $(BENCH_JSON)

## Diff the two newest committed BENCH_*.json trajectory points
## (or: make bench-compare ARGS="NEW.json OLD.json").
bench-compare:
	$(PY) benchmarks/compare.py $(or $(ARGS),--latest)
