# Mondrian Data Engine reproduction -- developer entry points.
# All targets run from the repo root; no installation required.

PY ?= python
export PYTHONPATH := src

#: Current perf-trajectory point; bump per perf PR (BENCH_PR11.json, ...).
BENCH_JSON ?= BENCH_PR10.json

#: Full per-file bench sweeps min-merged by `make bench` (see
#: tools/bench_runner.py; more sweeps = more jitter robustness).
BENCH_REPEAT ?= 2

#: Experiment profiled by `make profile` (fig6, fig7, ..., table5, skew).
EXPERIMENT ?= fig6

#: Max tolerated per-benchmark regression (percent) in bench-compare.
MAX_REGRESSION ?= 10

#: Minimum line coverage (percent) `make coverage` demands of the
#: fault-injection package.
FAULTS_MIN_COVERAGE ?= 90

#: Minimum line coverage (percent) `make coverage-service` demands of
#: the evaluation-service package (resilience layer included).
SERVICE_MIN_COVERAGE ?= 90

#: Minimum line coverage (percent) `make coverage-suites` demands of
#: the benchmark-suite package.
SUITES_MIN_COVERAGE ?= 90

#: Minimum line coverage (percent) `make coverage-telemetry` demands of
#: the telemetry package (spans, metrics, codec).
TELEMETRY_MIN_COVERAGE ?= 90

#: Minimum line coverage (percent) `make coverage-fleet` demands of the
#: evaluation-fleet package (ring, sharded store, router, async client).
FLEET_MIN_COVERAGE ?= 90

#: Deterministic wire-fault schedule seeds replayed by `make chaos-test`.
CHAOS_SEEDS ?= --seed 7 --seed 17

.PHONY: test test-faults coverage coverage-service coverage-suites coverage-telemetry coverage-fleet chaos-test docs-check load-test load-test-smoke report report-html report-smoke pipelines sweep-smoke service-smoke suites-smoke bench bench-compare profile

## Tier-1 verification: full unit/integration/experiment + benchmark
## suite, then the fault-injection suite, the sweep-smoke, service-smoke,
## suites-smoke, report-smoke and load-test-smoke checks, and the chaos
## harness.
test:
	$(PY) -m pytest -x -q
	$(MAKE) test-faults
	$(MAKE) sweep-smoke
	$(MAKE) service-smoke
	$(MAKE) suites-smoke
	$(MAKE) report-smoke
	$(MAKE) load-test-smoke
	$(MAKE) chaos-test

## Fault-injection suite: property harness (output byte-identity under
## randomized schedules), cross-process determinism audit, barrier edge
## cases and the fault_sweep golden.
test-faults:
	$(PY) -m pytest -x -q tests/test_faults_properties.py \
	  tests/test_faults_determinism.py tests/test_faults_edgecases.py \
	  tests/test_fault_sweep.py

## Coverage gate: run the fault suite under a stdlib line tracer and
## fail if any src/repro/faults/ file is below FAULTS_MIN_COVERAGE%.
coverage:
	$(PY) tools/coverage_gate.py faults --min $(FAULTS_MIN_COVERAGE)

## Service coverage gate: run the service + resilience suites under the
## same stdlib tracer; fail if any src/repro/service/ file is below
## SERVICE_MIN_COVERAGE%.
coverage-service:
	$(PY) tools/coverage_gate.py service --min $(SERVICE_MIN_COVERAGE)

## Suite coverage gate: run the suite tests under the stdlib tracer;
## fail if any src/repro/suites/ file is below SUITES_MIN_COVERAGE%.
coverage-suites:
	$(PY) tools/coverage_gate.py suites --min $(SUITES_MIN_COVERAGE)

## Telemetry coverage gate: run the telemetry + report suites under the
## stdlib tracer; fail if any src/repro/telemetry/ file is below
## TELEMETRY_MIN_COVERAGE%.
coverage-telemetry:
	$(PY) tools/coverage_gate.py telemetry --min $(TELEMETRY_MIN_COVERAGE)

## Fleet coverage gate: run the fleet suite under the stdlib tracer;
## fail if any src/repro/service/fleet/ file is below
## FLEET_MIN_COVERAGE%.
coverage-fleet:
	$(PY) tools/coverage_gate.py fleet --min $(FLEET_MIN_COVERAGE)

## Fleet load test: replay thousands of concurrent requests through a
## real sharded/replicated fleet -- steady, then with a member daemon
## SIGKILLed mid-run -- asserting zero failed requests, and merging
## p50/p95/p99 latency + throughput into $(BENCH_JSON).
load-test:
	$(PY) tools/load_test.py --json $(BENCH_JSON)

## Small CI form of the load test (120 requests, same SIGKILL phase and
## zero-failure assertion; no trajectory write).
load-test-smoke:
	$(PY) tools/load_test.py --smoke

## Chaos harness: replay the sweep-smoke grid through a real daemon
## under worker SIGKILLs, torn store writes, seeded wire faults and
## daemon loss, asserting every export stays byte-identical to the
## golden file and no corrupt entry is ever served.
chaos-test:
	$(PY) tools/chaos.py $(CHAOS_SEEDS)

## Scenario-API smoke test: run the committed 2x2 sweep grid (CPU +
## a 32-core star-topology Mondrian the paper never measured) and diff
## its ResultSet JSON against the committed golden file.
## (REPRO_STORE is cleared so an ambient warm store can never replay
## stale results into the golden diff.)
sweep-smoke:
	REPRO_STORE= $(PY) -m repro.api --sweep tests/data/sweep_smoke.json --json - \
	  | diff - tests/data/sweep_smoke_golden.json
	@echo "sweep-smoke OK: ResultSet matches the committed golden file."

## Benchmark-suite smoke test: run a 2x2 suite grid (string-key +
## skew-family suites on CPU and Mondrian) plus the full-grid ranked
## score report, and diff both against the committed goldens.
suites-smoke:
	REPRO_STORE= $(PY) -m repro.suites run --suite dict-products \
	  --suite skew-hotspot --system cpu --system mondrian --json - \
	  | diff - tests/data/suites_smoke_golden.json
	REPRO_STORE= $(PY) -m repro.suites score --json - \
	  | diff - tests/data/suites_score_golden.json
	@echo "suites-smoke OK: suite records and score report match the goldens."

## Evaluation-service smoke test: start the daemon on an ephemeral port
## with a fresh store, submit the sweep-smoke grid twice through the
## service CLI, and assert the second pass is 100% store hits with
## byte-identical golden output.
service-smoke:
	$(PY) tests/service_smoke.py

## Executable-documentation check: doctest every fenced code block in
## README.md and docs/, validate documented CLI flags against the real
## parser, then smoke-run the documented commands end-to-end.
docs-check:
	$(PY) -m pytest -q tests/test_docs.py
	$(PY) -m repro.experiments.run_all --fast > /dev/null
	$(PY) -m repro.experiments.run_all --fast --pipelines > /dev/null
	$(PY) -m repro.suites list > /dev/null
	@echo "docs-check OK: doc examples pass and documented commands run."

## Full paper-artifact report at paper scale.
report:
	$(PY) -m repro.experiments.run_all

## Self-contained HTML report (figures, bottlenecks, suites, bench
## trajectory) written to report.html.
report-html:
	$(PY) -m repro.report --out report.html

## Report smoke check: render every report section from committed
## goldens + the fast model scale and audit the HTML's structure,
## self-containment and determinism.
report-smoke:
	$(PY) tools/report_smoke.py

## Query-pipeline suite (per-stage breakdowns, CPU vs NMP vs Mondrian).
pipelines:
	$(PY) -m repro.experiments.run_all --pipelines

## Perf trajectory: run every benchmarks/test_bench_*.py file in its
## own pytest process (fresh interpreter per file, so heavy files can't
## heat-bias whatever sorts after them) and min-merge BENCH_REPEAT
## sweeps into $(BENCH_JSON).
bench:
	$(PY) tools/bench_runner.py $(BENCH_JSON) --repeat $(BENCH_REPEAT)

## Diff the two newest committed BENCH_*.json trajectory points
## (or: make bench-compare ARGS="NEW.json OLD.json"), failing if any
## shared benchmark regressed more than MAX_REGRESSION percent.
bench-compare:
	$(PY) benchmarks/compare.py $(or $(ARGS),--latest) --max-regression $(MAX_REGRESSION)

## Profile one experiment under cProfile and print the top-25
## cumulative-time report: make profile EXPERIMENT=fig7
profile:
	$(PY) benchmarks/profile_experiment.py $(EXPERIMENT)
