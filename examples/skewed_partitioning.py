#!/usr/bin/env python3
"""Handling skewed datasets with two-round partitioning.

The paper (section 5.4) defers skew to future work, sketching the
mechanism: a vault that would overflow its destination buffer raises an
exception, and the CPU retries "with a second round of partitioning in
order to balance the resulting partitions' sizes".  This example runs
that protocol end to end:

1. generate a Zipf-skewed Group-by workload (a few hot keys hold much of
   the data);
2. show naive one-round hash partitioning blowing through the
   destination-buffer budget (the PartitionOverflowError fires during
   shuffle_begin, before any data moves);
3. run the skew-aware path: the supervisor re-plans from the global
   histogram (greedy LPT packing, hot buckets split across vaults) and
   the shuffle completes within budget;
4. verify no tuples were lost and every partition fits its buffer.

Run:  python examples/skewed_partitioning.py
"""

import numpy as np

from repro.analytics import make_skewed_groupby_workload, partition_imbalance
from repro.analytics.histogram import build_histogram
from repro.operators import (
    OperatorVariant,
    PartitionOverflowError,
    run_partitioning_skew_aware,
)
from repro.operators.partition import destination_map
from repro.operators.skew import check_overflow

PARTITIONS = 16
CAPACITY_FACTOR = 1.5  # destination buffers hold 1.5x the fair share
N = 12_000
ALPHA = 1.5


def main() -> None:
    workload = make_skewed_groupby_workload(
        N, PARTITIONS, alpha=ALPHA, num_distinct=N // 8, seed=11
    )
    variant = OperatorVariant(
        radix_bits=8, probe_algorithm="sort", permutable=True, simd=True,
        num_partitions=PARTITIONS,
    )
    capacity = int(np.ceil(N / PARTITIONS * CAPACITY_FACTOR))
    print(f"{N} tuples, Zipf(alpha={ALPHA}) keys, {PARTITIONS} vaults, "
          f"buffers hold {capacity} tuples each\n")

    # Naive round one: histogram the hash destinations.
    inbound = np.zeros(PARTITIONS, dtype=np.int64)
    for part in workload.partitions:
        dests = destination_map(part, variant, "low", workload.key_space_bits)
        inbound += build_histogram(dests, PARTITIONS)
    print(f"naive hash shuffle: max/mean imbalance "
          f"{partition_imbalance(inbound):.2f}x, hottest vault gets "
          f"{int(inbound.max())} tuples")

    try:
        check_overflow(inbound, capacity)
        print("  -> fits; no retry needed")
    except PartitionOverflowError as err:
        print(f"  -> OVERFLOW: {err}\n")

    outcome, plan = run_partitioning_skew_aware(
        workload.partitions, variant, workload.key_space_bits,
        capacity_factor=CAPACITY_FACTOR, seed=11,
    )
    sizes = [len(p) for p in outcome.partitions]
    print("after the two-round retry:")
    print(f"  imbalance {plan.imbalance_before:.2f}x -> {plan.imbalance_after:.2f}x")
    print(f"  hot buckets split across vaults: {len(plan.split_buckets)}")
    print(f"  largest partition: {max(sizes)} tuples (budget {capacity})")
    assert max(sizes) <= capacity

    total = sum(sizes)
    assert total == N
    print(f"  all {total} tuples accounted for  [ok]")

    print("\nphases charged by the cost model:")
    for phase in outcome.phases:
        print(f"  {phase.name:12s} {phase.notes}")


if __name__ == "__main__":
    main()
