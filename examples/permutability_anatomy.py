#!/usr/bin/env python3
"""Anatomy of the permutability optimization (paper figure 2, section 5.3).

Walks through exactly what happens at one destination vault during the
partitioning shuffle:

1. sources interleave their writes in the memory network;
2. an *addressed* vault controller scatters them to their exact offsets,
   activating a DRAM row for almost every 16 B object;
3. a *permutable* controller appends arrivals to the sequential tail,
   activating each row exactly once -- correct because the region is an
   unordered bucket (the multiset of tuples is preserved, which this
   script verifies).

Both disciplines are replayed on the event-accurate DRAM bank model, so
the activation counts and completion times printed below come from
actual simulated row-buffer state machines, not formulas.

Run:  python examples/permutability_anatomy.py
"""

import numpy as np

from repro.analytics import Relation
from repro.config.dram import DramTiming, HmcGeometry
from repro.dram import VaultMemory
from repro.dram.vault import VaultRequest
from repro.shuffle import ShuffleEngine

NUM_SOURCES = 32
TUPLES_PER_SOURCE = 128
OBJECT_B = 16


def make_sources():
    rng = np.random.default_rng(3)
    sources, dests = [], []
    for s in range(NUM_SOURCES):
        keys = rng.integers(0, 1 << 40, TUPLES_PER_SOURCE, dtype=np.uint64)
        sources.append(Relation.from_arrays(keys, keys, f"src{s}"))
        dests.append(np.zeros(TUPLES_PER_SOURCE, dtype=np.int64))  # all -> vault 0
    return sources, dests


def replay_on_dram(trace, label):
    geometry, timing = HmcGeometry(), DramTiming()
    vault = VaultMemory(geometry, timing)
    requests = [
        VaultRequest(arrival_ns=i * 2.0, addr=int(addr), size_b=OBJECT_B, is_write=True)
        for i, addr in enumerate(trace)
    ]
    done_ns = vault.run_trace(requests)
    stats = vault.stats
    print(
        f"  {label:10s} activations={stats.activations:5d}"
        f"  row-hit rate={stats.row_hit_rate * 100:5.1f}%"
        f"  finished at {done_ns / 1e3:7.2f} us"
    )
    return stats


def main() -> None:
    sources, dests = make_sources()
    total = NUM_SOURCES * TUPLES_PER_SOURCE
    print(
        f"{NUM_SOURCES} sources shuffle {total} x {OBJECT_B} B tuples "
        f"into one destination vault\n"
    )

    addressed = ShuffleEngine(1, permutable=False).run(sources, dests)
    permutable = ShuffleEngine(1, permutable=True).run(sources, dests)

    # Correctness: both deliver the same multiset of tuples.
    assert permutable.destinations[0].multiset_equal(addressed.destinations[0])
    assert not (permutable.destinations[0] == addressed.destinations[0])
    print("same tuples delivered (multiset equal), different arrangement  [ok]\n")

    print("arrival order at the vault (first 8 writes, vault-local addresses):")
    for label, result in (("addressed", addressed), ("permutable", permutable)):
        head = ", ".join(f"{a:5d}" for a in result.write_traces[0][:8])
        print(f"  {label:10s} {head}, ...")

    print("\nreplaying both write traces on the event-accurate DRAM model:")
    a = replay_on_dram(addressed.write_traces[0], "addressed")
    p = replay_on_dram(permutable.write_traces[0], "permutable")

    ideal = total * OBJECT_B // 256
    print(
        f"\n  rows touched: {ideal} -> permutable activated each exactly "
        f"{p.activations / ideal:.1f}x; addressed paid {a.activations / ideal:.1f}x"
    )
    print(
        f"  activation energy saved by permutability: "
        f"{a.activations / p.activations:.1f}x"
    )


if __name__ == "__main__":
    main()
