#!/usr/bin/env python3
"""Quickstart: run one Join on the CPU baseline and the Mondrian Data
Engine, compare runtime and energy.

The workload follows the paper's setup: 16-byte tuples (8 B key + 8 B
payload), uniform keys, a foreign-key relationship between R and S, data
initially spread over 64 memory partitions.  The tuples really move --
the join output is verified -- while the performance/energy models are
evaluated at a dataset `SCALE` times larger (the paper fills 512 MB
vaults; pure-Python execution at that size would be pointless).

Run:  python examples/quickstart.py
"""

from repro.analytics import make_join_workload
from repro.perf.result import efficiency_improvement, speedup
from repro.systems import build_system

#: Functional tuples: 4k R x 16k S.  Modeled dataset: x2000 (~0.6 GB).
SCALE = 2000.0


def main() -> None:
    workload = make_join_workload(n_r=4_000, n_s=16_000, num_partitions=64, seed=1)

    cpu = build_system("cpu").run_operator("join", workload, scale_factor=SCALE)
    mondrian = build_system("mondrian").run_operator("join", workload, scale_factor=SCALE)

    # Both machines computed the same join.
    assert cpu.output.matches == mondrian.output.matches == 16_000
    assert cpu.output.checksum == mondrian.output.checksum

    print("Join of R (4k tuples) and S (16k tuples), modeled at x2000 scale\n")
    header = f"{'':16s}{'runtime':>12s}{'partition':>12s}{'probe':>12s}{'energy':>10s}"
    print(header)
    for result in (cpu, mondrian):
        print(
            f"{result.system:16s}"
            f"{result.runtime_s * 1e3:10.2f} ms"
            f"{result.partition_time_s * 1e3:10.2f} ms"
            f"{result.probe_time_s * 1e3:10.2f} ms"
            f"{result.energy.total_j:8.3f} J"
        )

    print(f"\nMondrian speedup over CPU:     {speedup(cpu, mondrian):5.1f}x")
    print(f"Mondrian efficiency (perf/W):  {efficiency_improvement(cpu, mondrian):5.1f}x")
    print("\nPer-phase breakdown (Mondrian):")
    for perf in mondrian.phase_perfs:
        print(
            f"  {perf.phase.name:14s} {perf.time_ns / 1e6:8.3f} ms"
            f"   bound={perf.core.bound:9s}"
            f" bw={perf.achieved_bw_bps / 1e9:6.1f} GB/s (system-wide)"
        )


if __name__ == "__main__":
    main()
