#!/usr/bin/env python3
"""A Spark-style analytics pipeline on the Mondrian Data Engine.

The paper's Table 1 maps Spark transformations onto the four basic
operators.  This example lowers a small business-intelligence query into
a single :class:`~repro.pipeline.plan.QueryPlan` the way a Spark backend
would:

    kept    = Filter(events, product_id % 4 == 0)          -> Scan
    joined  = Join(users, kept)                            -> Join
    spend   = AggregateByKey(joined, agg=sum)              -> Group by
    ranked  = SortByKey(spend)                             -> Sort

The plan runs unchanged on every machine: tuples really move through
partitioning and probing once per machine, each stage's phase costs are
evaluated by that machine's models, and the report shows where
near-memory execution pays off along a realistic query plan -- per-stage
breakdowns, the pipeline bottleneck, and end-to-end speedups.

Run:  PYTHONPATH=src python examples/spark_style_pipeline.py
"""

import numpy as np

from repro.pipeline import (
    FilterStage,
    GroupByStage,
    JoinStage,
    QueryPlan,
    SortStage,
    bottleneck_report,
    comparison_table,
    make_fk_tables,
    stage_breakdown_table,
)
from repro.pipeline.queries import KEY_SPACE_BITS
from repro.systems import build_system

PARTITIONS = 64
SCALE = 1000.0
SYSTEMS = ("cpu", "nmp-perm", "mondrian")


def main() -> None:
    # users(user_id, profile_score), events(user_id, spend): the shared
    # FK generator keeps payloads small enough for exact chained sums.
    users, events = make_fk_tables(n_r=6_000, n_s=24_000, seed=7)

    plan = QueryPlan(
        name="bi-spend-ranking",
        tables={"users": users, "events": events},
        stages=[
            # LookupKey -> Scan: keep a quarter of the products.
            FilterStage(
                "events", "kept", predicate=lambda k: k % np.uint64(4) == 0
            ),
            # Join clicks with user profiles (FK: every event has a user).
            JoinStage("users", "kept", "joined"),
            # AggregateByKey: spend per user.
            GroupByStage("joined", "spend", aggregate="sum"),
            # SortByKey: rank the totals.
            SortStage("spend", "ranked"),
        ],
        num_partitions=PARTITIONS,
        key_space_bits=KEY_SPACE_BITS,
        description="filter -> join -> aggregate -> rank",
    )

    print(f"Query plan {plan.name!r}: {' -> '.join(plan.stage_names)}\n")

    perfs = {}
    for system in SYSTEMS:
        perf = build_system(system).run_pipeline(plan, scale_factor=SCALE)
        perfs[system] = perf
        print(f"[{system}]")
        print(stage_breakdown_table(perf))
        print(bottleneck_report(perf))
        print()

    print(comparison_table(perfs, baseline="cpu"))

    # The pipeline is functionally verified stage by stage on every
    # machine (join checksums, group sums, sortedness); the final ranked
    # relation must agree across machines tuple for tuple.
    outputs = {
        s: p.stages[-1].result.output for s, p in perfs.items()
    }
    assert all(outputs["cpu"].multiset_equal(o) for o in outputs.values())
    print("\nPipeline complete: identical ranked output on all machines.")


if __name__ == "__main__":
    main()
