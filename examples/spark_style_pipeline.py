#!/usr/bin/env python3
"""A Spark-style analytics pipeline on the Mondrian Data Engine.

The paper's Table 1 maps Spark transformations onto the four basic
operators.  This example plays a small business-intelligence query the
way a Spark backend would lower it:

    clicks  = LookupKey(events, product_id == TARGET)        -> Scan
    joined  = Join(clicks_by_user, users)                    -> Join
    spend   = AggregateByKey(joined, by=region, agg=sum/avg) -> Group by
    ranked  = SortByKey(spend)                               -> Sort

Each stage runs on the engine (tuples really move through partitioning
and probing) and reports the modeled runtime/energy of the three machine
classes, showing where near-memory execution pays off along a realistic
query plan.

Run:  python examples/spark_style_pipeline.py
"""

import numpy as np

from repro.analytics import Relation, make_join_workload
from repro.analytics.workload import (
    GroupByWorkload,
    ScanWorkload,
    SortWorkload,
    _split,
)
from repro.systems import build_system

PARTITIONS = 64
SCALE = 1000.0
SYSTEMS = ("cpu", "nmp-perm", "mondrian")


def stage(title, operator, workload):
    print(f"\n== {title} ({operator}) ==")
    results = {}
    for name in SYSTEMS:
        r = build_system(name).run_operator(operator, workload, scale_factor=SCALE)
        results[name] = r
        print(
            f"  {name:10s} runtime={r.runtime_s * 1e3:9.3f} ms  "
            f"energy={r.energy.total_j:7.4f} J"
        )
    base = results["cpu"]
    best = min(results.values(), key=lambda r: r.runtime_s)
    print(f"  -> fastest: {best.system} ({base.runtime_s / best.runtime_s:.1f}x vs cpu)")
    return results


def main() -> None:
    rng = np.random.default_rng(7)

    # events(product_id, user_id): the clicks table.
    n_events, n_users = 24_000, 6_000
    join_w = make_join_workload(n_users, n_events, PARTITIONS, seed=7)

    # Stage 1 -- LookupKey on the events table (Scan).
    target = int(join_w.s_partitions[0].keys[0])
    scan_w = ScanWorkload(
        partitions=join_w.s_partitions, search_key=target,
        key_space_bits=join_w.key_space_bits,
    )
    stage("find clicks on the target product", "scan", scan_w)

    # Stage 2 -- Join clicks with the users table.
    join_results = stage("join clicks with user profiles", "join", join_w)
    assert join_results["mondrian"].output.matches == n_events

    # Stage 3 -- AggregateByKey: spend per region (Group by).  Regions
    # are synthesized by coarsening user keys (64 regions).
    users = join_w.r_partitions
    all_users = users[0]
    for p in users[1:]:
        all_users = all_users.concat(p)
    region_keys = (all_users.keys % np.uint64(64)) + np.uint64(1)
    spend = Relation.from_arrays(region_keys, all_users.payloads, "spend")
    group_w = GroupByWorkload(
        partitions=_split(spend, PARTITIONS),
        key_space_bits=7,
        avg_group_size=len(spend) / 64,
    )
    group_results = stage("aggregate spend per region", "groupby", group_w)
    assert group_results["mondrian"].output.num_groups <= 64

    # Stage 4 -- SortByKey the per-region totals (Sort).  Sorting the
    # full spend table stands in for the ranking shuffle.
    sort_w = SortWorkload(partitions=_split(spend, PARTITIONS), key_space_bits=7)
    stage("rank regions", "sort", sort_w)

    print("\nPipeline complete: every stage verified functionally on all machines.")


if __name__ == "__main__":
    main()
