#!/usr/bin/env python3
"""Design-space exploration around the Mondrian Data Engine.

Three sweeps that interrogate the paper's design choices:

1. **All six system configurations** on the Join operator -- the full
   evaluation matrix of section 7 in one table.
2. **SIMD width** -- why 1024 bits: narrower units leave the sort-based
   probe compute-bound; wider than the per-vault bandwidth demands is
   wasted.
3. **Row-buffer size** -- permutability's activation-energy saving on
   HMC (256 B) vs HBM (2 KB) vs Wide I/O 2 (4 KB): the paper calls HMC
   the conservative case, and the sweep shows why.
4. **Scenario-API sweep** -- a `Sweep` over a hardware point the paper
   never measured (Mondrian at 32 cores on a star network), pivoted out
   of the tidy `ResultSet`.

Run:  python examples/design_space.py
"""

from repro.analytics import make_join_workload
from repro.api import Sweep, SystemSpec
from repro.experiments.ablations import row_buffer_sweep
from repro.systems import build_system
from repro.systems.machine import Machine

SCALE = 1000.0


def sweep_systems(workload):
    print("1. All system configurations, Join operator")
    print(f"   {'system':18s}{'partition':>12s}{'probe':>12s}{'total':>12s}{'energy':>10s}")
    rows = []
    for name in ("cpu", "nmp-rand", "nmp-seq", "nmp-perm", "mondrian-noperm", "mondrian"):
        r = build_system(name).run_operator("join", workload, scale_factor=SCALE)
        rows.append((name, r))
        print(
            f"   {name:18s}"
            f"{r.partition_time_s * 1e3:10.2f} ms"
            f"{r.probe_time_s * 1e3:10.2f} ms"
            f"{r.runtime_s * 1e3:10.2f} ms"
            f"{r.energy.total_j:8.3f} J"
        )
    base = dict(rows)["cpu"]
    best = min((r for _, r in rows), key=lambda r: r.runtime_s)
    print(f"   -> {best.system}: {base.runtime_s / best.runtime_s:.1f}x over cpu\n")


def sweep_simd(workload):
    print("2. SIMD width (Mondrian)")
    baseline = None
    for width in (128, 256, 512, 1024, 2048):
        config = (
            SystemSpec("mondrian").with_simd(width).named(f"mondrian-{width}b")
        ).to_config()
        r = Machine(config).run_operator("join", workload, scale_factor=SCALE)
        baseline = baseline or r.runtime_s
        print(
            f"   {width:5d} bits   {r.runtime_s * 1e3:9.2f} ms"
            f"   ({baseline / r.runtime_s:4.2f}x vs 128b)"
        )
    print("   -> returns diminish once the probe turns bandwidth-bound\n")


def sweep_row_buffers():
    print("3. Row-buffer size vs permutability saving (1M shuffled tuples)")
    for row_b, v in row_buffer_sweep().items():
        device = {256: "HMC", 2048: "HBM", 4096: "WideIO2"}.get(row_b, str(row_b))
        print(
            f"   {device:8s} ({row_b:4d} B rows)  addressed={v['addressed']:7.4f} J"
            f"  permutable={v['permutable']:7.4f} J   saving={v['saving']:5.1f}x"
        )
    print("   -> the bigger the row, the more an addressed shuffle wastes")


def sweep_scenarios():
    print("\n4. Scenario sweep: an unmeasured hardware point vs the presets")
    narrow = SystemSpec("mondrian").with_cores(32).with_topology("star").named(
        "mondrian-32c-star"
    )
    results = Sweep(
        systems=("cpu", "mondrian", narrow),
        workloads=("scan", "join"),
        scales=(SCALE,),
    ).run()
    pivot = results.pivot(index="system", columns="workload", values="time_s")
    for system in results.unique("system"):
        times = pivot[system]
        print(
            f"   {system:18s}"
            + "".join(f"{op}={times[op] * 1e3:9.2f} ms  " for op in ("scan", "join"))
        )
    print("   -> the vault-local scan is untouched, but the star network "
          "taxes the join's all-to-all shuffle")


def main() -> None:
    workload = make_join_workload(4_000, 16_000, num_partitions=64, seed=5)
    sweep_systems(workload)
    sweep_simd(workload)
    sweep_row_buffers()
    sweep_scenarios()


if __name__ == "__main__":
    main()
