"""Process-isolated benchmark recorder for the perf trajectory.

``make bench`` used to run the whole ``benchmarks/`` suite in one pytest
process.  That couples every benchmark to the suite's accumulated state:
a heavy bench file heats the CPU and pollutes the allocator for whatever
file happens to sort after it, so *adding* a bench file can shift the
recorded times of untouched benchmarks by 10-20% on small containers.

This runner executes each ``benchmarks/test_bench_*.py`` file in its own
pytest subprocess (fresh interpreter, fresh allocator, a moment for the
machine to settle) and merges the per-file ``--benchmark-json`` parts
into one document compatible with ``benchmarks/compare.py``.  With
``--repeat N`` the whole per-file sweep runs N times and each
benchmark's representative ``stats.min`` is the minimum across sweeps --
noise on a busy machine only ever adds time, so min-merging across
spaced-out sweeps is the jitter-robust estimator the trajectory gate
wants.

Usage::

    python tools/bench_runner.py BENCH_PR9.json [--repeat 2]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def bench_files() -> list:
    return sorted((ROOT / "benchmarks").glob("test_bench_*.py"))


def run_file(path: Path, part: Path) -> None:
    """Run one bench file in a fresh pytest process, writing PART."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            str(path),
            "--benchmark-json",
            str(part),
        ],
        cwd=ROOT,
        env={
            "PYTHONPATH": "src",
            "PATH": "/usr/bin:/bin",
            **(
                {"BENCH_ROUNDS": os.environ["BENCH_ROUNDS"]}
                if "BENCH_ROUNDS" in os.environ
                else {}
            ),
        },
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"benchmark file failed: {path.name}")


def sweep() -> dict:
    """One pass over every bench file; returns the merged document."""
    merged = None
    with tempfile.TemporaryDirectory() as tmp:
        for path in bench_files():
            part = Path(tmp) / (path.stem + ".json")
            run_file(path, part)
            doc = json.loads(part.read_text())
            if merged is None:
                merged = doc
            else:
                merged["benchmarks"].extend(doc["benchmarks"])
    if merged is None:
        raise SystemExit("no benchmarks/test_bench_*.py files found")
    merged["benchmarks"].sort(key=lambda b: b["name"])
    return merged


def min_merge(docs: list) -> dict:
    """Fold repeated sweeps: each benchmark keeps its fastest round."""
    base = docs[0]
    for bench in base["benchmarks"]:
        mins = [
            b["stats"]["min"]
            for d in docs
            for b in d["benchmarks"]
            if b["name"] == bench["name"]
        ]
        bench["stats"]["min"] = min(mins)
    return base


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out", help="merged --benchmark-json output path")
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="number of full per-file sweeps to min-merge (default 1)",
    )
    args = parser.parse_args(argv)

    docs = []
    for i in range(args.repeat):
        print(f"bench sweep {i + 1}/{args.repeat} ...", flush=True)
        docs.append(sweep())
    out = min_merge(docs)
    Path(args.out).write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {args.out}: {len(out['benchmarks'])} benchmarks, "
        f"{args.repeat} sweep(s), per-file process isolation"
    )


if __name__ == "__main__":
    main()
