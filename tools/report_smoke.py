"""Report smoke check: generate the full HTML report and audit it.

Renders every section -- figures and pipelines live at the fast model
scale, the sweep and suite sections from the committed golden record
files, the bench trajectory from the repo's BENCH_*.json -- then
asserts the structural contract:

- all five sections are present with their charts (inline SVG only);
- every SVG parses as well-formed XML;
- the document is self-contained (no scripts, external styles, images
  or network fetches) and ships both color themes;
- rendering is deterministic: a second render is byte-identical.

Run directly (``python tools/report_smoke.py``) or via
``make report-smoke``; exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import re
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.report.__main__ import SECTIONS, build_parser, render_report  # noqa: E402


def main() -> int:
    args = build_parser().parse_args([
        "--out", "-",
        "--sections", ",".join(SECTIONS),
        "--fast",
        "--sweep", str(ROOT / "tests" / "data" / "sweep_smoke_golden.json"),
        "--suites", str(ROOT / "tests" / "data" / "suites_smoke_golden.json"),
        "--bench-dir", str(ROOT),
    ])
    html = render_report(args)

    failures = []
    for name in SECTIONS:
        if f'<section id="{name}"' not in html:
            failures.append(f"missing section: {name}")

    svgs = re.findall(r"<svg.*?</svg>", html, re.DOTALL)
    if len(svgs) < 8:
        failures.append(f"expected >= 8 charts, found {len(svgs)}")
    for i, svg in enumerate(svgs):
        try:
            ET.fromstring(svg)
        except ET.ParseError as exc:
            failures.append(f"chart {i} is not well-formed SVG: {exc}")

    neutered = html.replace("https://ui.perfetto.dev", "")
    for marker in ("<script", "<link", "<img", "http://", "https://"):
        if marker in neutered:
            failures.append(f"report is not self-contained: found {marker!r}")
    if "prefers-color-scheme: dark" not in html:
        failures.append("dark theme missing")

    if render_report(args) != html:
        failures.append("re-render is not byte-identical")

    if failures:
        for failure in failures:
            print(f"report-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"report-smoke OK: {len(SECTIONS)} sections, {len(svgs)} charts, "
        f"{len(html)} bytes, deterministic."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
