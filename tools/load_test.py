#!/usr/bin/env python
"""Load-test the evaluation fleet: thousands of requests, one SIGKILL.

Stands up a real fleet (``--shards`` member daemons over a sharded,
``--replicas``-way replicated store, behind the hedging/failing-over
router) and replays ``--requests`` concurrent ``evaluate`` requests
through the pipelined :class:`~repro.service.fleet.AsyncServiceClient`
-- twice:

- **steady**: the fleet left alone, measuring the happy-path tail;
- **kill-shard**: the same load, except one member daemon is SIGKILLed
  mid-run (at ``--kill-at`` of the request stream).  The router's
  failover plus the client's idempotent-verb retry matrix must absorb
  the murder: **any failed request fails the harness** (exit 1).

Each phase reports p50/p95/p99 latency and throughput.  With ``--json
BENCH_PR10.json`` the phases are merged into the repo's
pytest-benchmark trajectory file as ``load_test_steady`` /
``load_test_kill_shard`` entries (stats carry the percentile fields;
``benchmarks/compare.py`` diffs them across trajectory points).

Usage::

    python tools/load_test.py                      # full run, temp store
    python tools/load_test.py --json BENCH_PR10.json   # make load-test
    python tools/load_test.py --smoke              # make load-test-smoke

Requests cycle over the committed sweep-smoke grid, pre-warmed with one
sweep so the measured requests are store-served -- the harness times
the *service fabric* (router, hedging, sharded reads, wire), not the
simulator.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def percentile(samples, q: float) -> float:
    """Nearest-rank-with-interpolation percentile of a sorted list."""
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    position = q * (len(samples) - 1)
    low = int(position)
    high = min(low + 1, len(samples) - 1)
    fraction = position - low
    return samples[low] * (1.0 - fraction) + samples[high] * fraction


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000, metavar="N",
                        help="requests per phase (default 2000)")
    parser.add_argument("--concurrency", type=int, default=64, metavar="C",
                        help="concurrent in-flight requests (default 64)")
    parser.add_argument("--shards", type=int, default=3, metavar="N",
                        help="fleet store shards / member daemons (default 3)")
    parser.add_argument("--replicas", type=int, default=2, metavar="R",
                        help="copies of each store object (default 2)")
    parser.add_argument("--kill-at", type=float, default=0.25, metavar="FRAC",
                        help="SIGKILL one member after this fraction of the "
                             "kill-shard phase has been issued (default 0.25)")
    parser.add_argument("--kill-member", type=int, default=0, metavar="I",
                        help="index of the member daemon to murder (default 0)")
    parser.add_argument("--hedge-after", type=float, default=0.25, metavar="S",
                        help="router hedge deadline in seconds (default 0.25)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="client transport retry budget (default 3)")
    parser.add_argument("--deadline", type=float, default=60.0, metavar="S",
                        help="per-request deadline in seconds (default 60)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="fleet store root (default: a fresh temp dir)")
    parser.add_argument("--json", metavar="OUT", dest="json_out", default=None,
                        help="merge phase results into this pytest-benchmark "
                             "JSON trajectory file (e.g. BENCH_PR10.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (120 requests, "
                             "concurrency 16), same zero-failure assertion")
    return parser


def scenarios_from_smoke_grid():
    """The committed sweep-smoke grid, expanded to scenario dicts."""
    from repro.api.sweep import Sweep

    grid = json.loads((ROOT / "tests/data/sweep_smoke.json").read_text())
    return [s.to_dict() for s in Sweep.from_dict(grid).scenarios()]


async def run_phase(
    name, address, scenarios, requests, concurrency, retries, deadline,
    kill=None, kill_at=0.25,
):
    """Issue ``requests`` evaluates; returns latency/failure accounting.

    ``kill`` is an optional thunk fired once, after ``kill_at`` of the
    requests have been *issued* -- i.e. while the stream is in full
    flight.
    """
    from repro.service.fleet import AsyncServiceClient

    latencies = []
    failures = []
    issued = 0
    kill_after = max(1, int(requests * kill_at))
    killed = {}
    gate = asyncio.Semaphore(concurrency)

    async with AsyncServiceClient(
        *address, retries=retries, deadline=deadline,
        max_connections=min(concurrency, 32),
    ) as client:
        async def one(index):
            nonlocal issued
            async with gate:
                issued += 1
                if kill is not None and issued == kill_after and not killed:
                    killed["pid"] = kill()
                started = time.perf_counter()
                try:
                    await client.evaluate(scenarios[index % len(scenarios)])
                except Exception as exc:  # noqa: BLE001 - accounted, fails run
                    failures.append(f"{type(exc).__name__}: {exc}")
                    return
                latencies.append(time.perf_counter() - started)

        wall_started = time.perf_counter()
        await asyncio.gather(*(one(i) for i in range(requests)))
        wall = time.perf_counter() - wall_started

    ordered = sorted(latencies)
    return {
        "phase": name,
        "requests": requests,
        "failures": len(failures),
        "failure_samples": failures[:5],
        "killed_pid": killed.get("pid"),
        "wall_s": wall,
        "throughput_rps": (len(latencies) / wall) if wall > 0 else 0.0,
        "latency_s": {
            "min": ordered[0] if ordered else 0.0,
            "mean": statistics.fmean(ordered) if ordered else 0.0,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0,
        },
        "samples": ordered,
        "client": dict(client.resilience),
    }


def bench_entry(phase: dict) -> dict:
    """One phase as a pytest-benchmark ``benchmarks[]`` entry.

    The percentile fields ride inside ``stats`` (compare.py carries
    them through its comparison document and regression gate);
    throughput and failure accounting go to ``extra_info``.
    """
    samples = phase["samples"]
    ordered = sorted(samples) if samples else [0.0]
    mean = statistics.fmean(ordered)
    return {
        "name": f"load_test_{phase['phase']}",
        "fullname": f"tools/load_test.py::{phase['phase']}",
        "group": "load-test",
        "param": None,
        "params": None,
        "extra_info": {
            "throughput_rps": phase["throughput_rps"],
            "requests": phase["requests"],
            "failures": phase["failures"],
            "killed_pid": phase["killed_pid"],
            "client": phase["client"],
        },
        "options": {},
        "stats": {
            "min": ordered[0],
            "max": ordered[-1],
            "mean": mean,
            "median": percentile(ordered, 0.50),
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "q1": percentile(ordered, 0.25),
            "q3": percentile(ordered, 0.75),
            "stddev": statistics.pstdev(ordered) if len(ordered) > 1 else 0.0,
            "rounds": len(ordered),
            "iterations": 1,
            "ops": (1.0 / mean) if mean > 0 else 0.0,
            "total": sum(ordered),
        },
    }


def merge_into_trajectory(path: Path, phases) -> None:
    """Upsert the load-test entries into a pytest-benchmark JSON file."""
    if path.is_file():
        payload = json.loads(path.read_text())
    else:
        payload = {"version": "repro-load-test", "benchmarks": []}
    payload.setdefault("benchmarks", [])
    fresh = {bench_entry(p)["name"]: bench_entry(p) for p in phases}
    payload["benchmarks"] = [
        b for b in payload["benchmarks"] if b.get("name") not in fresh
    ] + sorted(fresh.values(), key=lambda b: b["name"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def summarize(phase: dict) -> str:
    latency = phase["latency_s"]
    return (
        f"{phase['phase']:<12} {phase['requests']:>6} requests  "
        f"p50 {latency['p50'] * 1e3:7.2f} ms  "
        f"p95 {latency['p95'] * 1e3:7.2f} ms  "
        f"p99 {latency['p99'] * 1e3:7.2f} ms  "
        f"{phase['throughput_rps']:8.1f} req/s  "
        f"failures {phase['failures']}"
        + (f"  (killed pid {phase['killed_pid']})"
           if phase["killed_pid"] else "")
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 120)
        args.concurrency = min(args.concurrency, 16)

    from repro.service.fleet import AsyncServiceClient, start_fleet_background

    store = args.store or tempfile.mkdtemp(prefix="repro-load-test-")
    scenarios = scenarios_from_smoke_grid()
    fleet = start_fleet_background(
        store, shards=args.shards, replicas=args.replicas,
        hedge_after=args.hedge_after if args.hedge_after > 0 else None,
    )
    print(
        f"load-test: fleet up on {fleet.host}:{fleet.port} "
        f"(shards={args.shards}, replicas={args.replicas}, "
        f"store={store})",
        flush=True,
    )
    try:
        async def warm():
            async with AsyncServiceClient(*fleet.address,
                                          retries=args.retries) as client:
                grid = json.loads(
                    (ROOT / "tests/data/sweep_smoke.json").read_text()
                )
                await client.sweep(grid)

        asyncio.run(warm())

        phases = []
        phases.append(asyncio.run(run_phase(
            "steady", fleet.address, scenarios, args.requests,
            args.concurrency, args.retries, args.deadline,
        )))
        print(summarize(phases[-1]), flush=True)
        phases.append(asyncio.run(run_phase(
            "kill_shard", fleet.address, scenarios, args.requests,
            args.concurrency, args.retries, args.deadline,
            kill=lambda: fleet.kill_member(args.kill_member),
            kill_at=args.kill_at,
        )))
        print(summarize(phases[-1]), flush=True)
    finally:
        fleet.stop()

    if args.json_out:
        merge_into_trajectory(Path(args.json_out), phases)
        print(f"load-test: merged {len(phases)} phases into {args.json_out}")

    failed = sum(p["failures"] for p in phases)
    if failed:
        for phase in phases:
            for sample in phase["failure_samples"]:
                print(f"load-test FAILURE [{phase['phase']}]: {sample}",
                      file=sys.stderr)
        print(f"load-test: FAIL -- {failed} failed request(s); the fleet "
              "must absorb a member SIGKILL with zero failures",
              file=sys.stderr)
        return 1
    print("load-test: OK -- zero failed requests across "
          f"{sum(p['requests'] for p in phases)} "
          "(member SIGKILL included).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
