"""Chaos harness for the evaluation service (``make chaos-test``).

Replays the committed sweep-smoke grid through a real daemon while
injecting every failure class the resilience layer claims to survive,
and asserts the one oracle that matters: **every export stays
byte-identical to ``tests/data/sweep_smoke_golden.json``, and no
corrupt store entry is ever served.**

Phases (all deterministic -- worker faults are scheduled by the
``REPRO_WORKER_CHAOS`` env, wire faults by seeded schedules):

1. **Worker crashes.**  A daemon with a supervised 2-worker fleet whose
   workers SIGKILL themselves after each evaluation (post-store-write,
   pre-reply), plus an external ``kill -9`` of a live worker before the
   batch.  The submission must still export the golden bytes, and the
   fleet must report restarts + requeues.
2. **Torn writes & corruption.**  With the daemon stopped: truncate one
   committed object, overwrite another with garbage, and plant
   write-ahead journal intents for a crash-completed temp (must roll
   forward), a torn temp (must be discarded) and a torn intent record
   (must be discarded).  ``python -m repro.service recover`` must
   report exactly that accounting and move both corrupt objects to
   ``quarantine/`` -- bytes preserved, never served.
3. **Wire faults.**  A seeded line-aware TCP proxy between client and
   daemon drops requests, truncates responses mid-JSON and delays
   them; the retrying client must still export golden bytes for every
   seed, and the daemon must re-simulate exactly the two quarantined
   points (proving quarantined entries are never served).
4. **Degradation.**  Submitting against a dead port with
   ``--degrade local`` must exit 0 with golden bytes (evaluated
   in-process) and a degradation warning on stderr.
5. **Fleet member murder.**  The sweep grid submitted through a real
   sharded/replicated fleet (3 member daemons behind the hedging
   router) with one member daemon SIGKILLed mid-sweep: the export must
   stay byte-identical to the golden file with **zero failed
   requests** (router failover + replicated shards absorb the loss),
   and a warm re-submit after the murder must stay golden too.

Usage::

    python tools/chaos.py                 # default seed set
    python tools/chaos.py --seed 3 --seed 9
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SPEC = ROOT / "tests" / "data" / "sweep_smoke.json"
GOLDEN = ROOT / "tests" / "data" / "sweep_smoke_golden.json"
GRID_SIZE = 4  # the committed 2x2 sweep-smoke grid

ENV = dict(os.environ, PYTHONPATH=str(ROOT / "src"))

#: Wire fault classes the proxy injects, one per request exchange.
WIRE_FAULTS = ("drop_request", "truncate_response", "slow")


def log(message: str) -> None:
    print(f"chaos: {message}", flush=True)


# ---------------------------------------------------------------------------
# Daemon/CLI plumbing
# ---------------------------------------------------------------------------


def start_daemon(store: str, *extra: str, env=None) -> "tuple":
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--port", "0", "--store", store, *extra,
        ],
        env=env or ENV, cwd=ROOT, stdout=subprocess.PIPE, text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"serving on ([\w.]+):(\d+)", banner)
    assert match, f"daemon did not announce its port: {banner!r}"
    return proc, int(match.group(2))


def stop_daemon(proc, port: int) -> None:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.service.client import ServiceClient

    with ServiceClient(port=port) as client:
        client.shutdown()
    assert proc.wait(timeout=30) == 0, "daemon exited uncleanly"


def submit(port: int, *extra: str, env=None, check=True) -> "subprocess.CompletedProcess":
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service", "submit",
            "--port", str(port), "--sweep", str(SPEC), "--json", "-", *extra,
        ],
        env=env or ENV, cwd=ROOT, capture_output=True, timeout=300,
    )
    if check:
        assert proc.returncode == 0, proc.stderr.decode()
    return proc


def stats(port: int) -> dict:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", "stats", "--port", str(port)],
        env=ENV, cwd=ROOT, capture_output=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return json.loads(proc.stdout)


def assert_golden(payload: bytes, what: str) -> None:
    assert payload == GOLDEN.read_bytes(), (
        f"{what}: export diverges from the golden file"
    )
    log(f"{what}: export is byte-identical to the golden file")


# ---------------------------------------------------------------------------
# Phase 1: worker crashes mid-batch
# ---------------------------------------------------------------------------


def phase_worker_crashes(store: str) -> None:
    log("phase 1: supervised fleet under SIGKILL (kill_after=1, post-store)")
    env = dict(ENV, REPRO_WORKER_CHAOS="kill_after=1,mode=post")
    daemon, port = start_daemon(store, "--workers", "2", env=env)
    try:
        fleet = stats(port)["scheduler"]["fleet"]
        assert fleet["alive"] == 2, fleet
        # An *external* kill -9 on top of the scheduled self-kills: the
        # supervisor must notice mid-dispatch and requeue.
        victim = fleet["pids"][0]
        os.kill(victim, signal.SIGKILL)
        log(f"phase 1: killed worker pid {victim} externally")

        assert_golden(submit(port).stdout, "phase 1 (crashing workers)")

        report = stats(port)
        fleet = report["scheduler"]["fleet"]
        assert fleet["restarts"] >= 1, f"no worker restarts recorded: {fleet}"
        assert fleet["requeues"] >= 1, f"no crash requeues recorded: {fleet}"
        assert report["store"]["entries"] == GRID_SIZE, report["store"]
        log(
            f"phase 1: fleet survived -- restarts={fleet['restarts']} "
            f"requeues={fleet['requeues']} degraded={fleet['degraded_tasks']}"
        )
    finally:
        if daemon.poll() is None:
            stop_daemon(daemon, port)


# ---------------------------------------------------------------------------
# Phase 2: torn writes, corrupt objects, journal recovery
# ---------------------------------------------------------------------------


def phase_store_corruption(store: str) -> None:
    log("phase 2: corrupting the store and planting torn journal intents")
    objects = sorted(Path(store).glob("objects/*/*.json"))
    assert len(objects) == GRID_SIZE, [str(p) for p in objects]

    # Two real entries corrupted two ways: a torn (truncated) document
    # and a flat-out garbage overwrite.
    objects[0].write_bytes(objects[0].read_bytes()[:20])
    objects[1].write_bytes(b"\x00garbage, not JSON\x00")

    journal = Path(store) / "journal"
    journal.mkdir(exist_ok=True)

    # A crash that completed its temp file but died before the rename:
    # recovery must roll it forward into a served entry.
    fwd_digest = "ee" + "f" * 62
    fwd_final = Path(store) / "objects" / fwd_digest[:2] / f"{fwd_digest}.json"
    fwd_tmp = fwd_final.parent / f".{fwd_digest}.12345.tmp"
    fwd_final.parent.mkdir(parents=True, exist_ok=True)
    fwd_tmp.write_text(json.dumps({"planted": "rolled-forward entry"}))
    (journal / f"{fwd_digest}.12345.json").write_text(json.dumps({
        "digest": fwd_digest,
        "final": os.path.relpath(fwd_final, store),
        "tmp": os.path.relpath(fwd_tmp, store),
    }))

    # A crash that left only a torn temp file: recovery must discard it.
    torn_digest = "dd" + "e" * 62
    torn_final = Path(store) / "objects" / torn_digest[:2] / f"{torn_digest}.json"
    torn_tmp = torn_final.parent / f".{torn_digest}.12346.tmp"
    torn_final.parent.mkdir(parents=True, exist_ok=True)
    torn_tmp.write_text('{"torn": tru')
    (journal / f"{torn_digest}.12346.json").write_text(json.dumps({
        "digest": torn_digest,
        "final": os.path.relpath(torn_final, store),
        "tmp": os.path.relpath(torn_tmp, store),
    }))

    # An intent record that is itself torn: nothing it names is
    # trustworthy, so the put is discarded.
    (journal / ("cc" + "d" * 62 + ".12347.json")).write_text('{"digest": "cc')

    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", "recover", "--store", store],
        env=ENV, cwd=ROOT, capture_output=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    report = json.loads(proc.stdout)
    log(f"phase 2: recover report {json.dumps(report, sort_keys=True)}")
    assert report["rolled_forward"] == 1, report
    assert report["discarded"] == 2, report
    assert report["quarantined_now"] == 2, report
    assert report["quarantined_total"] == 2, report
    # 4 committed - 2 quarantined + 1 rolled forward.
    assert report["entries"] == GRID_SIZE - 2 + 1, report
    assert fwd_final.is_file() and not fwd_tmp.exists(), "roll-forward failed"
    assert not torn_tmp.exists() and not torn_final.exists(), "discard failed"

    quarantined = sorted(p.name for p in Path(store).glob("quarantine/*.json"))
    assert len(quarantined) == 2, quarantined
    assert quarantined == sorted(p.name for p in objects[:2]), quarantined
    log("phase 2: corrupt entries preserved in quarantine/, journal settled")


# ---------------------------------------------------------------------------
# Phase 3: wire faults through a seeded chaos proxy
# ---------------------------------------------------------------------------


class ChaosProxy(threading.Thread):
    """A line-aware TCP proxy injecting one scheduled fault per exchange.

    The schedule is a list of fault names consumed across *all*
    connections in arrival order (the chaos client is sequential, so
    this is deterministic); once exhausted, every exchange is clean.
    """

    def __init__(self, upstream_port: int, schedule) -> None:
        super().__init__(name="chaos-proxy", daemon=True)
        self._upstream_port = upstream_port
        self._schedule = list(schedule)
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self.injected: list = []

    def _next_fault(self) -> str:
        with self._lock:
            fault = self._schedule.pop(0) if self._schedule else "ok"
            if fault != "ok":
                self.injected.append(fault)
            return fault

    def _handle(self, conn: socket.socket) -> None:
        try:
            upstream = socket.create_connection(
                ("127.0.0.1", self._upstream_port), timeout=60
            )
        except OSError:
            conn.close()
            return
        try:
            client_file = conn.makefile("rb")
            upstream_file = upstream.makefile("rb")
            for line in client_file:
                fault = self._next_fault()
                if fault == "drop_request":
                    return  # the daemon never sees the request
                upstream.sendall(line)
                response = upstream_file.readline()
                if not response:
                    return
                if fault == "truncate_response":
                    conn.sendall(response[: max(1, len(response) // 3)])
                    return  # mid-JSON cut, then a hard close
                if fault == "slow":
                    time.sleep(0.2)
                conn.sendall(response)
        except OSError:
            pass
        finally:
            conn.close()
            upstream.close()

    def run(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: proxy stopped
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def stop(self) -> None:
        self._listener.close()


def phase_wire_faults(store: str, seeds) -> None:
    log(f"phase 3: wire faults through a seeded proxy (seeds {list(seeds)})")
    daemon, port = start_daemon(store)
    try:
        for seed in seeds:
            schedule = list(WIRE_FAULTS)
            random.Random(seed).shuffle(schedule)
            proxy = ChaosProxy(port, schedule)
            proxy.start()
            try:
                result = submit(proxy.port, "--retries", "4")
                assert_golden(result.stdout, f"phase 3 (seed {seed})")
                assert proxy.injected, "proxy injected no faults"
                log(
                    f"phase 3 (seed {seed}): survived "
                    f"{'+'.join(proxy.injected)}"
                )
            finally:
                proxy.stop()

        scheduler = stats(port)["scheduler"]
        # Exactly the two quarantined points re-simulated (once, on the
        # first pass); the quarantined bytes were never served.  Note
        # ``submitted`` can exceed seeds*grid: a truncated *response*
        # means the daemon fully processed that batch, so the client's
        # retry is a whole extra batch -- served from the store, which
        # is the idempotency the retry relies on.
        assert scheduler["executed"] == 2, scheduler
        assert scheduler["store_hits"] == scheduler["submitted"] - 2, scheduler
        log("phase 3: quarantined entries re-simulated, never served")
    finally:
        if daemon.poll() is None:
            stop_daemon(daemon, port)


# ---------------------------------------------------------------------------
# Phase 4: graceful degradation to local evaluation
# ---------------------------------------------------------------------------


def phase_degradation() -> None:
    log("phase 4: --degrade local against a dead port")
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    # No listener on dead_port once the probe socket closes.  REPRO_STORE
    # is cleared exactly like make sweep-smoke: the degraded path must
    # reproduce the golden bytes from scratch, locally.
    env = dict(ENV, REPRO_STORE="")
    result = submit(
        dead_port, "--retries", "1", "--degrade", "local", env=env
    )
    assert_golden(result.stdout, "phase 4 (degraded local)")
    stderr = result.stderr.decode()
    assert "degrading sweep to local" in stderr, stderr
    log("phase 4: degradation warned and evaluated locally")

    # The default --degrade fail must keep failing loudly instead.
    result = submit(dead_port, "--retries", "0", env=env, check=False)
    assert result.returncode != 0, "degrade=fail unexpectedly succeeded"


# ---------------------------------------------------------------------------
# Phase 5: fleet member murder mid-sweep
# ---------------------------------------------------------------------------


def phase_fleet(store: str) -> None:
    log("phase 5: sweep through a 3-member fleet, SIGKILL one mid-sweep")
    sys.path.insert(0, str(ROOT / "src"))
    from repro.service.fleet import start_fleet_background

    fleet = start_fleet_background(store, shards=3, replicas=2)
    try:
        victim = fleet.router.members[0]
        victim_pid = victim.proc.pid

        # Murder a member the instant the router has routed the first
        # request of the sweep -- deterministically mid-stream, however
        # fast the grid evaluates.  The router must fail affected
        # requests over to a replica owner; the client sees nothing.
        done = threading.Event()

        def assassin() -> None:
            while not done.is_set():
                if fleet.router.counters["routed"] >= 1:
                    fleet.kill_member(0)
                    return
                time.sleep(0.001)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        try:
            result = submit(fleet.port, "--retries", "4")
        finally:
            done.set()
            killer.join(timeout=10)
        assert victim.proc.poll() is not None or victim.proc.pid != victim_pid, (
            "the victim member was never killed -- the phase proved nothing"
        )
        assert_golden(result.stdout, "phase 5 (member SIGKILLed mid-sweep)")

        # A warm re-submit with the member still dead (or freshly
        # respawned) must be pure store hits and stay golden.
        assert_golden(submit(fleet.port, "--retries", "4").stdout,
                      "phase 5 (warm re-submit after the murder)")

        report = stats(fleet.port)
        router = report["router"]
        assert router["degraded"] == 0, router
        log(
            "phase 5: fleet survived -- "
            f"routed={router['routed']} failovers={router['failovers']} "
            f"hedges={router['hedges']} respawns={router['respawns']} "
            f"member_failures={router['member_failures']}"
        )
    finally:
        fleet.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int, action="append", metavar="N",
        help="wire-fault schedule seed (repeatable; default 7 and 17)",
    )
    args = parser.parse_args(argv)
    seeds = args.seed if args.seed else [7, 17]

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as store:
        phase_worker_crashes(store)
        phase_store_corruption(store)
        phase_wire_faults(store, seeds)
    phase_degradation()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-fleet-") as store:
        phase_fleet(store)
    print(
        "chaos-test OK: golden bytes survived worker SIGKILLs, torn "
        "writes, wire faults, daemon loss and a fleet member murder; no "
        "corrupt entry was served."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
