"""Line-coverage gate for the fault-injection subsystem.

Runs the fault test modules in-process under a ``sys.settrace`` line
tracer restricted to ``src/repro/faults/`` and fails (exit 1) if any
file in the package falls below the threshold.  Stdlib-only by design:
the container has no ``coverage`` package, and the gate must run
anywhere the repo's Python does.

Executable lines are derived from the compiled code objects
(``co_lines`` over the module and every nested function/class body),
the same source of truth the interpreter reports trace events from, so
the two sides of the ratio can never disagree about what counts.

Usage::

    python tools/faults_coverage.py            # gate at the default 90%
    python tools/faults_coverage.py --min 95   # stricter
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
TARGET_DIR = ROOT / "src" / "repro" / "faults"

#: Test modules that drive the faults package (kept in sync with
#: ``make test-faults``).
FAULT_TESTS = (
    "tests/test_faults_properties.py",
    "tests/test_faults_determinism.py",
    "tests/test_faults_edgecases.py",
    "tests/test_fault_sweep.py",
)

DEFAULT_MIN_PCT = 90.0


def executable_lines(path: Path) -> set:
    """Line numbers carrying bytecode, from the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        # line 0 is the compiler's module preamble (RESUME), not source.
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None and line > 0
        )
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


class LineTracer:
    """Records line events for the target files only.

    The global trace function declines (returns ``None``) for frames
    outside the target set, so the interpreter runs everything else at
    full speed.
    """

    def __init__(self, targets: dict) -> None:
        self._targets = targets  # filename -> set of hit lines
        self._previous = None

    def _local(self, frame, event, arg):
        if event == "line":
            hits = self._targets.get(frame.f_code.co_filename)
            if hits is not None:
                hits.add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, arg):
        if frame.f_code.co_filename in self._targets:
            return self._local(frame, event, arg)
        return None

    def __enter__(self):
        self._previous = sys.gettrace()
        threading.settrace(self._global)
        sys.settrace(self._global)
        return self

    def __exit__(self, *exc):
        sys.settrace(self._previous)
        threading.settrace(self._previous)
        return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min", type=float, default=DEFAULT_MIN_PCT, metavar="PCT",
        help=f"fail if any faults file is below PCT percent line "
             f"coverage (default {DEFAULT_MIN_PCT:g})",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    sys.path.insert(0, str(ROOT))
    files = sorted(TARGET_DIR.glob("*.py"))
    if not files:
        print(f"no Python files under {TARGET_DIR}", file=sys.stderr)
        return 1
    wanted = {str(path): executable_lines(path) for path in files}
    hits = {name: set() for name in wanted}

    import pytest  # deferred: path setup above must come first

    with LineTracer(hits):
        status = pytest.main(["-q", *FAULT_TESTS])
    if status != 0:
        print("fault test suite failed; coverage not evaluated",
              file=sys.stderr)
        return int(status)

    print(f"\nline coverage of src/repro/faults/ (gate: {args.min:g}%):")
    failed = False
    for name in sorted(wanted):
        want = wanted[name]
        got = hits[name] & want
        pct = 100.0 * len(got) / len(want) if want else 100.0
        short = Path(name).relative_to(ROOT)
        missing = sorted(want - got)
        note = f"  missing lines: {missing}" if missing else ""
        print(f"  {short}: {pct:.1f}% ({len(got)}/{len(want)}){note}")
        if pct < args.min:
            failed = True
    if failed:
        print(f"FAIL: coverage below {args.min:g}%", file=sys.stderr)
        return 1
    print(f"OK: every faults file is at or above {args.min:g}% line coverage.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
