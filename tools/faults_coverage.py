"""Line-coverage gate for the fault-injection subsystem.

Thin compatibility wrapper: the actual tracer and the per-subsystem
gate table live in :mod:`tools.coverage_gate` (which also gates the
service package).  ``make coverage`` still calls this entry point.

Usage::

    python tools/faults_coverage.py            # gate at the default 90%
    python tools/faults_coverage.py --min 95   # stricter
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from coverage_gate import main as _gate_main  # noqa: E402


def main(argv=None) -> int:
    return _gate_main(["faults", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":
    raise SystemExit(main())
