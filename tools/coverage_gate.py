"""Stdlib-only line-coverage gate, parameterized per subsystem.

Runs a subsystem's test modules in-process under a ``sys.settrace``
line tracer restricted to that subsystem's source tree and fails
(exit 1) if any file falls below the threshold.  Stdlib-only by
design: the container has no ``coverage`` package, and the gate must
run anywhere the repo's Python does.

Executable lines are derived from the compiled code objects
(``co_lines`` over the module and every nested function/class body),
the same source of truth the interpreter reports trace events from, so
the two sides of the ratio can never disagree about what counts.

Gates::

    python tools/coverage_gate.py faults            # src/repro/faults/
    python tools/coverage_gate.py service --min 90  # src/repro/service/
    python tools/coverage_gate.py suites --min 90   # src/repro/suites/
    python tools/coverage_gate.py fleet --min 90    # src/repro/service/fleet/

``make coverage``, ``make coverage-service``, ``make coverage-suites``,
``make coverage-telemetry`` and ``make coverage-fleet`` wrap these.
A gate may ``exclude`` subtrees that have their own dedicated gate (the
fleet package lives under ``service/`` but is gated by ``fleet``).
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

DEFAULT_MIN_PCT = 90.0

#: Per-subsystem gate: source tree (rglob'd) + the test modules that
#: must exercise it (kept in sync with the matching Makefile target).
GATES = {
    "faults": {
        "target": ROOT / "src" / "repro" / "faults",
        "tests": (
            "tests/test_faults_properties.py",
            "tests/test_faults_determinism.py",
            "tests/test_faults_edgecases.py",
            "tests/test_fault_sweep.py",
        ),
    },
    "service": {
        "target": ROOT / "src" / "repro" / "service",
        "exclude": (ROOT / "src" / "repro" / "service" / "fleet",),
        "tests": (
            "tests/test_service.py",
            "tests/test_resilience.py",
            "tests/test_service_errors.py",
        ),
    },
    "fleet": {
        "target": ROOT / "src" / "repro" / "service" / "fleet",
        "tests": (
            "tests/test_fleet.py",
        ),
    },
    "suites": {
        "target": ROOT / "src" / "repro" / "suites",
        "tests": (
            "tests/test_suites.py",
            "tests/test_suites_determinism.py",
        ),
    },
    "telemetry": {
        "target": ROOT / "src" / "repro" / "telemetry",
        "tests": (
            "tests/test_telemetry.py",
            "tests/test_report.py",
        ),
    },
}


def executable_lines(path: Path) -> set:
    """Line numbers carrying bytecode, from the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        # line 0 is the compiler's module preamble (RESUME), not source.
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None and line > 0
        )
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


class LineTracer:
    """Records line events for the target files only.

    The global trace function declines (returns ``None``) for frames
    outside the target set, so the interpreter runs everything else at
    full speed.  Installed via both ``sys.settrace`` and
    ``threading.settrace``, so daemon/supervisor threads are counted;
    worker *subprocesses* are not -- their in-process drivers in the
    test suite are what earn worker-loop coverage.
    """

    def __init__(self, targets: dict) -> None:
        self._targets = targets  # filename -> set of hit lines
        self._previous = None

    def _local(self, frame, event, arg):
        if event == "line":
            hits = self._targets.get(frame.f_code.co_filename)
            if hits is not None:
                hits.add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, arg):
        if frame.f_code.co_filename in self._targets:
            return self._local(frame, event, arg)
        return None

    def __enter__(self):
        self._previous = sys.gettrace()
        threading.settrace(self._global)
        sys.settrace(self._global)
        return self

    def __exit__(self, *exc):
        sys.settrace(self._previous)
        threading.settrace(self._previous)
        return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "gate", choices=sorted(GATES),
        help="which subsystem's coverage gate to run",
    )
    parser.add_argument(
        "--min", type=float, default=DEFAULT_MIN_PCT, metavar="PCT",
        help=f"fail if any file is below PCT percent line coverage "
             f"(default {DEFAULT_MIN_PCT:g})",
    )
    args = parser.parse_args(argv)
    gate = GATES[args.gate]
    target_dir = gate["target"]

    sys.path.insert(0, str(ROOT / "src"))
    sys.path.insert(0, str(ROOT))
    excluded = tuple(gate.get("exclude", ()))
    files = sorted(
        path for path in target_dir.rglob("*.py")
        if not any(exc in path.parents for exc in excluded)
    )
    if not files:
        print(f"no Python files under {target_dir}", file=sys.stderr)
        return 1
    wanted = {str(path): executable_lines(path) for path in files}
    hits = {name: set() for name in wanted}

    import pytest  # deferred: path setup above must come first

    with LineTracer(hits):
        status = pytest.main(["-q", *gate["tests"]])
    if status != 0:
        print(f"{args.gate} test suite failed; coverage not evaluated",
              file=sys.stderr)
        return int(status)

    rel = target_dir.relative_to(ROOT)
    print(f"\nline coverage of {rel}/ (gate: {args.min:g}%):")
    failed = False
    for name in sorted(wanted):
        want = wanted[name]
        got = hits[name] & want
        pct = 100.0 * len(got) / len(want) if want else 100.0
        short = Path(name).relative_to(ROOT)
        missing = sorted(want - got)
        note = f"  missing lines: {missing}" if missing else ""
        print(f"  {short}: {pct:.1f}% ({len(got)}/{len(want)}){note}")
        if pct < args.min:
            failed = True
    if failed:
        print(f"FAIL: coverage below {args.min:g}%", file=sys.stderr)
        return 1
    print(f"OK: every {rel} file is at or above {args.min:g}% line coverage.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
