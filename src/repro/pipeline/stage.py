"""Pipeline stages: the uniform ``plan(inputs) -> (output, phases)``
protocol that lets every operator compose into a query plan.

A stage wraps one operator (or the standalone partitioning phase) behind
a single interface:

- it names the table(s) it **reads** and the one table it **publishes**;
- :meth:`PipelineStage.plan` functionally executes the operator on the
  current table environment (real tuples move) and returns a
  :class:`StagePlan` -- the output :class:`Relation` the next stage
  consumes plus the stage's :class:`PhaseCost` list, ready for any
  machine's :class:`~repro.perf.model.PhaseEvaluator`.

Stages are machine-agnostic: the same :class:`QueryPlan
<repro.pipeline.plan.QueryPlan>` runs unchanged on the CPU baseline and
on Mondrian, because the :class:`~repro.operators.base.OperatorVariant`
arrives at plan time (via :class:`PlanContext`), exactly as it does for
standalone operators.

Functional outputs are cross-checked against the wrapped operator's own
output (join match counts and checksums, scan match counts, sortedness)
so a stage can never silently diverge from the operator it costs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analytics.tuples import Relation
from repro.analytics.workload import (
    GroupByWorkload,
    JoinWorkload,
    ScanWorkload,
    SortWorkload,
    split_relation,
)
from repro.operators.base import OperatorRun, OperatorVariant, PhaseCost
from repro.operators.groupby import AGGREGATE_NAMES, run_groupby
from repro.operators.join import run_join
from repro.operators.partition import (
    SCHEME_HIGH_BITS,
    SCHEME_LOW_BITS,
    run_partitioning,
)
from repro.operators.scan import run_scan, scan_probe_cost
from repro.operators.skew import run_partitioning_skew_aware
from repro.operators.sort_op import run_sort


@dataclass(frozen=True)
class PlanContext:
    """Everything a stage needs at plan time beyond its input tables."""

    variant: OperatorVariant
    model_scale: float = 1.0
    key_space_bits: int = 48

    def __post_init__(self) -> None:
        if self.model_scale <= 0:
            raise ValueError("model_scale must be positive")


@dataclass
class StagePlan:
    """One planned stage: functional output + cost records + provenance."""

    name: str
    operator: str
    output_table: str
    relation: Relation
    phases: List[PhaseCost]
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_instructions(self) -> float:
        return sum(p.instructions for p in self.phases)

    def as_operator_run(self) -> OperatorRun:
        """View this stage as an OperatorRun so the systems layer can
        evaluate it with the exact machinery used for standalone
        operators."""
        return OperatorRun(
            operator=self.operator,
            variant=self.metadata.get("variant", ""),
            phases=self.phases,
            output=self.relation,
            metadata=dict(self.metadata),
        )


class PipelineStage(ABC):
    """Base class: one operator applied to named tables.

    Subclasses implement :meth:`plan`; the base class provides input
    resolution with a helpful error when a plan references a table no
    prior stage produced.
    """

    #: Operator family, for reports (subclasses override).
    operator: str = "stage"

    def __init__(self, inputs: Sequence[str], output: str, name: Optional[str] = None):
        if not inputs:
            raise ValueError("a stage needs at least one input table")
        if not output:
            raise ValueError("a stage needs an output table name")
        self.inputs = tuple(inputs)
        self.output = output
        self.name = name or f"{self.operator}:{output}"

    @abstractmethod
    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        """Functionally execute this stage and return its plan."""

    def _table(self, tables: Dict[str, Relation], name: str) -> Relation:
        try:
            return tables[name]
        except KeyError:
            raise KeyError(
                f"stage {self.name!r} reads table {name!r}, but only "
                f"{sorted(tables)} are available at this point in the plan"
            ) from None

    def _plan(
        self,
        relation: Relation,
        phases: List[PhaseCost],
        ctx: PlanContext,
        **metadata: Any,
    ) -> StagePlan:
        metadata.setdefault("variant", ctx.variant.label)
        return StagePlan(
            name=self.name,
            operator=self.operator,
            output_table=self.output,
            relation=relation,
            phases=phases,
            metadata=metadata,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({', '.join(self.inputs)} -> {self.output})"
        )


class ScanStage(PipelineStage):
    """Key-equality scan: keep the tuples whose key matches.

    Wraps :func:`repro.operators.scan.run_scan`; the functional output
    (the matching tuples, as a relation the next stage can consume) is
    cross-checked against the operator's match count.
    """

    operator = "scan"

    def __init__(self, input: str, output: str, key: int, name: Optional[str] = None):
        super().__init__([input], output, name)
        self.key = int(key)

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        rel = self._table(tables, self.inputs[0])
        workload = ScanWorkload(
            partitions=split_relation(rel, ctx.variant.num_partitions),
            search_key=self.key,
            key_space_bits=ctx.key_space_bits,
        )
        run = run_scan(workload, ctx.variant, model_scale=ctx.model_scale)
        hit = rel.keys == np.uint64(self.key)
        out = Relation(rel.data[hit], self.output)
        if len(out) != run.output.matches:
            raise AssertionError(
                f"stage {self.name!r}: scan found {run.output.matches} matches "
                f"but the output relation has {len(out)} tuples"
            )
        return self._plan(out, run.phases, ctx, search_key=self.key, tuples_in=len(rel))


class FilterStage(PipelineStage):
    """Streaming filter by an arbitrary vectorized key predicate.

    The memory behaviour is exactly Scan's (one sequential compare pass,
    figure 6's streaming pattern), so the stage charges
    :func:`~repro.operators.scan.scan_probe_cost` over the input size;
    only the kept tuples flow on.
    """

    operator = "scan"

    def __init__(
        self,
        input: str,
        output: str,
        predicate: Callable[[np.ndarray], np.ndarray],
        name: Optional[str] = None,
    ):
        super().__init__([input], output, name)
        self.predicate = predicate

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        rel = self._table(tables, self.inputs[0])
        keep = np.asarray(self.predicate(rel.keys), dtype=bool)
        if keep.shape != rel.keys.shape:
            raise ValueError(
                f"stage {self.name!r}: predicate returned shape {keep.shape}, "
                f"expected {rel.keys.shape}"
            )
        out = Relation(rel.data[keep], self.output)
        model_n = int(round(len(rel) * ctx.model_scale))
        phases = [scan_probe_cost(model_n, ctx.variant)]
        return self._plan(
            out, phases, ctx, tuples_in=len(rel), selectivity=len(out) / max(1, len(rel))
        )


class JoinStage(PipelineStage):
    """Foreign-key join of two tables (R join S, R holds unique keys).

    Wraps :func:`repro.operators.join.run_join` for the cost records and
    match/checksum verification; the stage itself materializes the joined
    relation -- key = S key, payload = R payload + S payload (mod 2**64),
    the same combination the operator's checksum digests, so the output
    relation's payload sum must equal the operator's checksum exactly.
    """

    operator = "join"

    def __init__(self, left: str, right: str, output: str, name: Optional[str] = None):
        super().__init__([left, right], output, name)

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        r = self._table(tables, self.inputs[0])
        s = self._table(tables, self.inputs[1])
        workload = JoinWorkload(
            r_partitions=split_relation(r, ctx.variant.num_partitions),
            s_partitions=split_relation(s, ctx.variant.num_partitions),
            key_space_bits=ctx.key_space_bits,
        )
        run = run_join(workload, ctx.variant, model_scale=ctx.model_scale)
        out = _fk_join_relation(r, s, self.output)
        if len(out) != run.output.matches:
            raise AssertionError(
                f"stage {self.name!r}: operator found {run.output.matches} "
                f"matches but the joined relation has {len(out)} tuples"
            )
        with np.errstate(over="ignore"):
            payload_sum = int(out.payloads.sum(dtype=np.uint64))
        if payload_sum != run.output.checksum:
            raise AssertionError(
                f"stage {self.name!r}: joined payload checksum {payload_sum} "
                f"!= operator checksum {run.output.checksum}"
            )
        return self._plan(
            out, run.phases, ctx, n_r=len(r), n_s=len(s), matches=len(out)
        )


class GroupByStage(PipelineStage):
    """Group by key and carry one aggregate forward as the payload.

    Wraps :func:`repro.operators.groupby.run_groupby`; the output
    relation is built from the operator's own functional group table
    (key -> six aggregates), keyed in ascending key order with the chosen
    aggregate as the payload.
    """

    operator = "groupby"

    def __init__(
        self, input: str, output: str, aggregate: str = "sum", name: Optional[str] = None
    ):
        super().__init__([input], output, name)
        if aggregate not in AGGREGATE_NAMES:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; choose from {AGGREGATE_NAMES}"
            )
        self.aggregate = aggregate

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        rel = self._table(tables, self.inputs[0])
        num_groups = len(np.unique(rel.keys))
        workload = GroupByWorkload(
            partitions=split_relation(rel, ctx.variant.num_partitions),
            key_space_bits=ctx.key_space_bits,
            avg_group_size=len(rel) / max(1, num_groups),
        )
        run = run_groupby(workload, ctx.variant, model_scale=ctx.model_scale)
        keys = np.sort(np.fromiter(run.output.groups, dtype=np.uint64, count=num_groups))
        values = np.array(
            [run.output.groups[int(k)][self.aggregate] for k in keys], dtype=np.float64
        )
        if np.any(values < 0) or np.any(values >= 2**64):
            raise ValueError(
                f"stage {self.name!r}: aggregate {self.aggregate!r} does not "
                "fit the 8-byte payload; use smaller payload values"
            )
        out = Relation.from_arrays(keys, values.astype(np.uint64), self.output)
        return self._plan(
            out, run.phases, ctx, aggregate=self.aggregate, groups=num_groups
        )


class SortStage(PipelineStage):
    """Globally sort a table by key (range partition + local sort).

    Wraps :func:`repro.operators.sort_op.run_sort`; the operator's output
    *is* the next stage's relation, and the stage asserts global
    sortedness and multiset equality with its input.
    """

    operator = "sort"

    def __init__(self, input: str, output: str, name: Optional[str] = None):
        super().__init__([input], output, name)

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        rel = self._table(tables, self.inputs[0])
        workload = SortWorkload(
            partitions=split_relation(rel, ctx.variant.num_partitions),
            key_space_bits=ctx.key_space_bits,
        )
        run = run_sort(workload, ctx.variant, model_scale=ctx.model_scale)
        out = Relation(run.output.data, self.output)
        if not out.is_sorted():
            raise AssertionError(f"stage {self.name!r}: output is not key-sorted")
        if not out.multiset_equal(rel):
            raise AssertionError(f"stage {self.name!r}: sort lost or invented tuples")
        return self._plan(out, run.phases, ctx, tuples=len(out))


class PartitionStage(PipelineStage):
    """Explicit repartition (a Spark-style shuffle stage).

    Wraps :func:`~repro.operators.partition.run_partitioning`, or the
    two-round skew-aware protocol
    (:func:`~repro.operators.skew.run_partitioning_skew_aware`) when
    ``skew_aware=True`` (always low-order-bit bucketing -- passing a
    different ``scheme`` with ``skew_aware`` is rejected).  The output
    relation carries the same tuples, redistributed; metadata records
    the load imbalance before/after and whether the rebalancing round
    fired.

    The stage charges the shuffle it performs; a downstream operator
    still runs its own partitioning phase over the redistributed table
    (the operators do not take pre-partitioned inputs), so use this
    stage to *add* an explicit rebalancing shuffle to a pipeline's cost,
    not to replace the next operator's.
    """

    operator = "partition"

    def __init__(
        self,
        input: str,
        output: str,
        scheme: str = SCHEME_LOW_BITS,
        skew_aware: bool = False,
        capacity_factor: float = 1.5,
        name: Optional[str] = None,
    ):
        super().__init__([input], output, name)
        if scheme not in (SCHEME_LOW_BITS, SCHEME_HIGH_BITS):
            raise ValueError(f"unknown partitioning scheme {scheme!r}")
        if skew_aware and scheme != SCHEME_LOW_BITS:
            raise ValueError(
                "the two-round skew protocol is defined for low-order-bit "
                f"bucketing; got scheme {scheme!r} with skew_aware=True"
            )
        self.scheme = scheme
        self.skew_aware = skew_aware
        self.capacity_factor = capacity_factor

    def plan(self, tables: Dict[str, Relation], ctx: PlanContext) -> StagePlan:
        rel = self._table(tables, self.inputs[0])
        sources = split_relation(rel, ctx.variant.num_partitions)
        metadata: Dict[str, Any] = {"tuples": len(rel), "scheme": self.scheme}
        if self.skew_aware:
            outcome, plan = run_partitioning_skew_aware(
                sources,
                ctx.variant,
                ctx.key_space_bits,
                capacity_factor=self.capacity_factor,
                model_scale=ctx.model_scale,
            )
            metadata.update(
                rebalanced=bool(plan.assignment),
                split_buckets=len(plan.split_buckets),
                imbalance_before=plan.imbalance_before,
                imbalance_after=plan.imbalance_after,
            )
        else:
            outcome = run_partitioning(
                sources,
                ctx.variant,
                self.scheme,
                ctx.key_space_bits,
                model_scale=ctx.model_scale,
            )
        # One concatenation of all partitions (the pairwise concat loop
        # re-promoted the structured dtype and recopied the prefix per
        # partition -- quadratic in partition count).
        out = Relation(
            np.concatenate([part.data for part in outcome.partitions]), self.output
        )
        if not out.multiset_equal(rel):
            raise AssertionError(
                f"stage {self.name!r}: repartitioning lost or invented tuples"
            )
        return self._plan(out, outcome.phases, ctx, **metadata)


def _fk_join_relation(r: Relation, s: Relation, name: str) -> Relation:
    """Materialize the FK join: (s.key, r.payload + s.payload) per match."""
    if len(r) == 0 or len(s) == 0:
        return Relation.empty(name)
    order = np.argsort(r.keys, kind="stable")
    r_keys = r.keys[order]
    r_payloads = r.payloads[order]
    idx = np.searchsorted(r_keys, s.keys)
    idx = np.minimum(idx, len(r_keys) - 1)
    found = r_keys[idx] == s.keys
    with np.errstate(over="ignore"):
        payloads = r_payloads[idx[found]] + s.payloads[found]
    return Relation.from_arrays(s.keys[found], payloads, name)
