"""Composable query pipelines: chain operators into end-to-end plans.

The paper evaluates each operator in isolation; real analytics engines
run multi-operator queries whose intermediate relations flow between
stages.  This subsystem closes that gap:

- :mod:`repro.pipeline.stage` -- a uniform ``plan(inputs) -> (output,
  phases)`` protocol wrapping every operator (scan/filter, join,
  group-by, sort, repartition -- plain or skew-aware);
- :mod:`repro.pipeline.plan` -- :class:`QueryPlan`, the chained dataflow,
  and :class:`PipelineRun`, its executed form with concatenated
  per-stage :class:`~repro.operators.base.PhaseCost` lists;
- :mod:`repro.pipeline.perf` -- :class:`PipelinePerf`, per-stage
  time/energy on one machine plus the bottleneck report (built via
  :meth:`repro.systems.machine.Machine.run_pipeline`);
- :mod:`repro.pipeline.report` -- breakdown / comparison tables;
- :mod:`repro.pipeline.queries` -- three canonical query shapes
  (:data:`CANONICAL_QUERIES`) the experiments layer sweeps across
  machines.

Quickstart::

    from repro.pipeline import fk_join_aggregate
    from repro.systems import build_system

    plan = fk_join_aggregate(n_r=400, n_s=1600, num_partitions=8)
    perf = build_system("mondrian").run_pipeline(plan, scale_factor=100.0)
    print(perf.summary())
"""

from repro.pipeline.plan import PipelineRun, QueryPlan, linear_plan
from repro.pipeline.perf import (
    PipelinePerf,
    StagePerf,
    evaluate_pipeline,
    pipeline_efficiency_improvement,
    pipeline_speedup,
)
from repro.pipeline.queries import (
    CANONICAL_QUERIES,
    build_query,
    fk_join_aggregate,
    make_fk_tables,
    skewed_partition_join,
    sort_then_scan,
)
from repro.pipeline.report import (
    bottleneck_report,
    comparison_table,
    stage_breakdown_table,
)
from repro.pipeline.stage import (
    FilterStage,
    GroupByStage,
    JoinStage,
    PartitionStage,
    PipelineStage,
    PlanContext,
    ScanStage,
    SortStage,
    StagePlan,
)

__all__ = [
    "CANONICAL_QUERIES",
    "FilterStage",
    "GroupByStage",
    "JoinStage",
    "PartitionStage",
    "PipelinePerf",
    "PipelineRun",
    "PipelineStage",
    "PlanContext",
    "QueryPlan",
    "ScanStage",
    "SortStage",
    "StagePerf",
    "StagePlan",
    "bottleneck_report",
    "build_query",
    "comparison_table",
    "evaluate_pipeline",
    "fk_join_aggregate",
    "linear_plan",
    "make_fk_tables",
    "pipeline_efficiency_improvement",
    "pipeline_speedup",
    "skewed_partition_join",
    "sort_then_scan",
    "stage_breakdown_table",
]
