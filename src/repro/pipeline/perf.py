"""Pipeline performance: per-stage time/energy aggregation + bottleneck.

``evaluate_pipeline`` costs a :class:`~repro.pipeline.plan.PipelineRun`
on one machine by feeding every stage through the machine's existing
``evaluate_run`` path (the same :class:`~repro.perf.model.PhaseEvaluator`
and :class:`~repro.energy.model.EnergyModel` standalone operators use),
so pipeline numbers are exactly the sum of their parts -- there is no
separate pipeline cost model to drift out of sync.

The result is a :class:`PipelinePerf`: per-stage
:class:`~repro.perf.result.SystemResult` records plus pipeline-level
totals, stage time/energy fractions and a bottleneck report naming the
stage and the resource (core, network, destination DRAM) that paces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.energy.model import EnergyBreakdown
from repro.perf.result import SystemResult
from repro.pipeline.plan import PipelineRun

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard cycle
    from repro.systems.machine import Machine


@dataclass
class StagePerf:
    """One pipeline stage costed on one machine."""

    stage: str
    operator: str
    output_table: str
    result: SystemResult

    @property
    def runtime_s(self) -> float:
        return self.result.runtime_s

    @property
    def energy_j(self) -> float:
        return self.result.energy.total_j

    @property
    def dominant_limit(self) -> str:
        """The resource pacing this stage: the limiter of its slowest
        phase (``core`` when the core model is the floor, ``network`` or
        ``dest_dram`` when a system-level cap is)."""
        slowest = max(self.result.phase_perfs, key=lambda p: p.time_ns)
        return max(slowest.limits, key=slowest.limits.get)


@dataclass
class PipelinePerf:
    """A whole query pipeline costed on one machine."""

    system: str
    plan: str
    stages: List[StagePerf]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def runtime_s(self) -> float:
        return sum(s.runtime_s for s in self.stages)

    @property
    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for s in self.stages:
            total.accumulate(s.result.energy)
        return total

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    def stage(self, name: str) -> StagePerf:
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(
            f"no stage named {name!r}; stages: {[s.stage for s in self.stages]}"
        )

    def time_fractions(self) -> Dict[str, float]:
        """Share of pipeline runtime per stage."""
        total = self.runtime_s
        if total <= 0:
            return {s.stage: 0.0 for s in self.stages}
        return {s.stage: s.runtime_s / total for s in self.stages}

    def bottleneck(self) -> StagePerf:
        """The stage that dominates end-to-end runtime."""
        return max(self.stages, key=lambda s: s.runtime_s)

    def summary(self) -> Dict[str, float]:
        return {
            "runtime_s": self.runtime_s,
            "energy_j": self.energy_j,
            "stages": len(self.stages),
            "bottleneck": self.bottleneck().stage,
        }


def evaluate_pipeline(machine: "Machine", run: PipelineRun) -> PipelinePerf:
    """Cost an executed pipeline on ``machine``, stage by stage."""
    stage_perfs = [
        StagePerf(
            stage=stage.name,
            operator=stage.operator,
            output_table=stage.output_table,
            result=machine.evaluate_run(stage.as_operator_run()),
        )
        for stage in run.stages
    ]
    return PipelinePerf(
        system=machine.name,
        plan=run.plan,
        stages=stage_perfs,
        metadata={"variant": run.variant, "model_scale": run.model_scale},
    )


def pipeline_speedup(baseline: PipelinePerf, candidate: PipelinePerf) -> float:
    """End-to-end runtime speedup of ``candidate`` over ``baseline``."""
    if candidate.runtime_s <= 0:
        raise ValueError("candidate runtime must be positive")
    return baseline.runtime_s / candidate.runtime_s


def pipeline_efficiency_improvement(
    baseline: PipelinePerf, candidate: PipelinePerf
) -> float:
    """Performance-per-watt improvement, figure 9's metric lifted to
    whole pipelines (perf/W reduces to 1/energy for identical work)."""
    if baseline.energy_j <= 0 or candidate.energy_j <= 0:
        raise ValueError("energies must be positive")
    return baseline.energy_j / candidate.energy_j
