"""Canonical multi-operator query shapes.

Three plans, chosen to stress the three behaviours a single-operator
evaluation (the paper's) never composes:

- **fk-join-aggregate** -- Join then Group by then Sort: the Spark
  "join facts to dimensions, aggregate, rank" backbone.  The join's
  output feeds the group-by directly, so partitioning work appears twice
  and random-vs-sequential probe choices compound.
- **sort-then-scan** -- Sort then key-lookup Scan: index-build-then-probe.
  Sorting dominates; the scan shows how cheap a streaming pass is after
  the expensive reorganization.
- **skewed-partition-join** -- skew-aware repartition (two-round
  protocol, section 5.4) ahead of an FK join over a Zipf-popular fact
  table: the pipeline the paper's uniform-data evaluation deliberately
  deferred.  The partition stage contributes the rebalancing shuffle's
  cost and metadata (imbalance before/after, buckets split); the join
  then pays its own partitioning as always, so the query measures what
  skew management *adds* to an end-to-end plan.

Payloads are drawn below 2**32 so every chained aggregate stays exact in
float64 and fits the 8-byte payload of downstream stages.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.analytics.tuples import Relation
from repro.pipeline.plan import QueryPlan
from repro.pipeline.stage import (
    FilterStage,
    GroupByStage,
    JoinStage,
    PartitionStage,
    ScanStage,
    SortStage,
)

#: Keys fit in 48 bits (matches the workload generators' default).
KEY_SPACE_BITS = 48
#: Payloads < 2**32 keep chained sums exact (see module docstring).
PAYLOAD_BITS = 32

#: Default functional sizes: small enough for pure-Python execution,
#: extrapolated by ``model_scale`` exactly like the standalone operators.
DEFAULT_N_R = 4_000
DEFAULT_N_S = 16_000


def _unique_keys(rng: np.random.Generator, n: int, bits: int) -> np.ndarray:
    candidates = np.unique(rng.integers(0, 1 << bits, size=n * 2 + 16, dtype=np.uint64))
    if len(candidates) < n:
        raise ValueError("key space too small for the requested unique keys")
    return rng.permutation(candidates)[:n].astype(np.uint64)


def _payloads(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, 1 << PAYLOAD_BITS, size=n, dtype=np.uint64)


def make_fk_tables(
    n_r: int,
    n_s: int,
    seed: int = 17,
    zipf_alpha: Optional[float] = None,
) -> Tuple[Relation, Relation]:
    """``users`` (unique keys) and ``events`` (FK into users).

    Event popularity is uniform over the users by default; with
    ``zipf_alpha`` set, events follow Zipf(``zipf_alpha``) popularity --
    the skew regime that overloads low-order-bit bucketing.  The one
    generator serves the canonical queries and the examples so the FK
    invariants (unique R keys, payloads < 2**PAYLOAD_BITS) live in one
    place.
    """
    rng = np.random.default_rng(seed)
    user_keys = _unique_keys(rng, n_r, KEY_SPACE_BITS)
    users = Relation.from_arrays(user_keys, _payloads(rng, n_r), "users")
    if zipf_alpha is None:
        event_keys = rng.choice(user_keys, size=n_s).astype(np.uint64)
    else:
        ranks = np.arange(1, n_r + 1, dtype=np.float64)
        weights = ranks ** (-zipf_alpha)
        weights /= weights.sum()
        event_keys = rng.choice(user_keys, size=n_s, p=weights).astype(np.uint64)
    events = Relation.from_arrays(event_keys, _payloads(rng, n_s), "events")
    return users, events


def fk_join_aggregate(
    n_r: int = DEFAULT_N_R,
    n_s: int = DEFAULT_N_S,
    num_partitions: int = 64,
    seed: int = 17,
) -> QueryPlan:
    """Join(users, events) -> GroupBy(sum) -> Sort: the headline pipeline.

    ``users`` holds unique keys (the FK target); every ``events`` tuple
    references one user.  The aggregate sums event spend per user and the
    sort ranks the totals.
    """
    users, events = make_fk_tables(n_r, n_s, seed=seed)
    return QueryPlan(
        name="fk-join-aggregate",
        tables={"users": users, "events": events},
        stages=[
            JoinStage("users", "events", "enriched"),
            GroupByStage("enriched", "spend_per_user", aggregate="sum"),
            SortStage("spend_per_user", "ranked"),
        ],
        num_partitions=num_partitions,
        key_space_bits=KEY_SPACE_BITS,
        description="FK join, per-key sum, rank (Spark join+aggregate+sort)",
    )


def sort_then_scan(
    n: int = DEFAULT_N_S,
    num_partitions: int = 64,
    seed: int = 17,
) -> QueryPlan:
    """Sort(events) -> Scan(sorted, key): index build then point lookup."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << KEY_SPACE_BITS, size=n, dtype=np.uint64)
    events = Relation.from_arrays(keys, _payloads(rng, n), "events")
    search_key = int(keys[int(rng.integers(0, n))])
    return QueryPlan(
        name="sort-then-scan",
        tables={"events": events},
        stages=[
            SortStage("events", "sorted_events"),
            ScanStage("sorted_events", "hits", key=search_key),
        ],
        num_partitions=num_partitions,
        key_space_bits=KEY_SPACE_BITS,
        description="global sort followed by a streaming key lookup",
    )


def skewed_partition_join(
    n_r: int = DEFAULT_N_R,
    n_s: int = DEFAULT_N_S,
    num_partitions: int = 64,
    seed: int = 17,
    alpha: float = 1.2,
) -> QueryPlan:
    """Skew-aware repartition of a Zipf fact table, then FK join.

    Event keys follow Zipf(``alpha``) popularity over the user keys, the
    regime where low-order-bit bucketing overflows hot vaults.  The
    partition stage charges the two-round rebalance (section 5.4) --
    histogram, rebalance retry, distribution -- as an explicit shuffle
    stage ahead of the join; the join still performs its own
    partitioning over the redistributed table (see
    :class:`~repro.pipeline.stage.PartitionStage`), so the pipeline
    totals show the *added* cost of managing skew end-to-end.
    """
    users, events = make_fk_tables(n_r, n_s, seed=seed, zipf_alpha=alpha)
    return QueryPlan(
        name="skewed-partition-join",
        tables={"users": users, "events": events},
        stages=[
            PartitionStage("events", "events_balanced", skew_aware=True),
            JoinStage("users", "events_balanced", "enriched"),
        ],
        num_partitions=num_partitions,
        key_space_bits=KEY_SPACE_BITS,
        description="two-round skew rebalance, then FK join",
    )


#: Name -> builder, the registry the experiments layer iterates.
CANONICAL_QUERIES: Dict[str, Callable[..., QueryPlan]] = {
    "fk-join-aggregate": fk_join_aggregate,
    "sort-then-scan": sort_then_scan,
    "skewed-partition-join": skewed_partition_join,
}

#: Default functional sizes per canonical query, kept below the
#: single-operator defaults because a pipeline executes several
#: operators per machine.  Shared by the ``pipeline_queries`` experiment
#: and the scenario API's query scenarios, so both evaluate the same
#: points.
CANONICAL_QUERY_SIZES: Dict[str, Dict[str, int]] = {
    "fk-join-aggregate": {"n_r": 4_000, "n_s": 16_000},
    "sort-then-scan": {"n": 16_000},
    "skewed-partition-join": {"n_r": 4_000, "n_s": 16_000},
}


def build_query(name: str, **kwargs) -> QueryPlan:
    """Build a canonical query by name (see :data:`CANONICAL_QUERIES`)."""
    try:
        builder = CANONICAL_QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; choose from {sorted(CANONICAL_QUERIES)}"
        ) from None
    return builder(**kwargs)
