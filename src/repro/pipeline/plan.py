"""Query plans: chained operator stages evaluated end-to-end.

A :class:`QueryPlan` is the pipeline subsystem's unit of work -- named
input tables plus an ordered list of stages whose intermediate relations
flow from one stage's functional output into the next (a linearized
Spark-style physical plan).  Executing a plan against an
:class:`~repro.operators.base.OperatorVariant` produces a
:class:`PipelineRun`: every stage's output relation and
:class:`~repro.operators.base.PhaseCost` list, concatenated in stage
order, ready for any machine's phase evaluator.

The plan is machine-agnostic; the same object runs on the CPU baseline
and on Mondrian (see :meth:`repro.systems.machine.Machine.run_pipeline`),
which is what makes cross-machine pipeline comparisons one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analytics.tuples import Relation
from repro.operators.base import OperatorVariant, PhaseCost
from repro.pipeline.stage import PipelineStage, PlanContext, StagePlan
from repro.telemetry import span as _span


@dataclass
class QueryPlan:
    """Named input tables + ordered stages = one executable query."""

    name: str
    tables: Dict[str, Relation]
    stages: List[PipelineStage]
    num_partitions: int = 64
    key_space_bits: int = 48
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a query plan needs at least one stage")
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")
        self.validate()

    def validate(self) -> None:
        """Check the dataflow statically: every stage's inputs must exist
        when it runs, and no two producers may publish the same table."""
        available = set(self.tables)
        for stage in self.stages:
            missing = [t for t in stage.inputs if t not in available]
            if missing:
                raise ValueError(
                    f"plan {self.name!r}: stage {stage.name!r} reads "
                    f"{missing} before any stage (or input table) produces them"
                )
            if stage.output in available:
                raise ValueError(
                    f"plan {self.name!r}: table {stage.output!r} is produced "
                    "twice; give each stage a unique output name"
                )
            available.add(stage.output)

    @property
    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]

    def execute(
        self, variant: OperatorVariant, model_scale: float = 1.0
    ) -> "PipelineRun":
        """Run every stage functionally, threading relations through.

        ``model_scale`` plays the same role as for standalone operators:
        tuples that really move stay small, while each stage's PhaseCost
        records describe a dataset ``model_scale`` times larger.
        """
        ctx = PlanContext(
            variant=variant,
            model_scale=model_scale,
            key_space_bits=self.key_space_bits,
        )
        env: Dict[str, Relation] = dict(self.tables)
        stage_plans: List[StagePlan] = []
        with _span(
            "plan", category="pipeline", plan=self.name, variant=variant.label
        ):
            for stage in self.stages:
                with _span(
                    "stage", category="pipeline", stage=stage.name
                ) as sp:
                    plan = stage.plan(env, ctx)
                    sp.set(output_rows=len(plan.relation))
                env[plan.output_table] = plan.relation
                stage_plans.append(plan)
        return PipelineRun(
            plan=self.name,
            variant=variant.label,
            stages=stage_plans,
            tables=env,
            model_scale=model_scale,
        )


@dataclass
class PipelineRun:
    """The outcome of executing a QueryPlan under one variant."""

    plan: str
    variant: str
    stages: List[StagePlan]
    tables: Dict[str, Relation]
    model_scale: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def phases(self) -> List[PhaseCost]:
        """All stages' phase costs, concatenated in stage order."""
        return [p for stage in self.stages for p in stage.phases]

    @property
    def output(self) -> Relation:
        """The final stage's relation -- the query's result."""
        return self.stages[-1].relation

    def stage(self, name: str) -> StagePlan:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(
            f"no stage named {name!r}; stages: {[s.name for s in self.stages]}"
        )

    @property
    def total_instructions(self) -> float:
        return sum(s.total_instructions for s in self.stages)


def linear_plan(
    name: str,
    tables: Dict[str, Relation],
    stages: Sequence[PipelineStage],
    num_partitions: int = 64,
    key_space_bits: int = 48,
    description: str = "",
) -> QueryPlan:
    """Convenience constructor mirroring the QueryPlan dataclass."""
    return QueryPlan(
        name=name,
        tables=dict(tables),
        stages=list(stages),
        num_partitions=num_partitions,
        key_space_bits=key_space_bits,
        description=description,
    )
