"""Human-readable pipeline reports: per-stage breakdowns + comparisons.

Formatting lives here (not on :class:`~repro.pipeline.perf.PipelinePerf`)
so the perf aggregates stay plain data and experiments/examples share one
table style with the rest of the repo
(:func:`repro.experiments.common.format_table`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import format_table
from repro.pipeline.perf import PipelinePerf, pipeline_speedup


def stage_breakdown_table(perf: PipelinePerf) -> str:
    """Per-stage time/energy table for one (pipeline, machine) pair."""
    fractions = perf.time_fractions()
    rows: List[List[str]] = []
    for s in perf.stages:
        rows.append(
            [
                s.stage,
                s.operator,
                f"{s.runtime_s * 1e3:.3f}",
                f"{fractions[s.stage] * 100:.1f}%",
                f"{s.energy_j:.4f}",
                s.dominant_limit,
            ]
        )
    rows.append(
        [
            "TOTAL",
            "",
            f"{perf.runtime_s * 1e3:.3f}",
            "100.0%",
            f"{perf.energy_j:.4f}",
            "",
        ]
    )
    return format_table(
        ["Stage", "Operator", "Time (ms)", "Share", "Energy (J)", "Paced by"], rows
    )


def bottleneck_report(perf: PipelinePerf) -> str:
    """One line naming the pipeline's pacing stage and resource."""
    b = perf.bottleneck()
    share = perf.time_fractions()[b.stage]
    return (
        f"{perf.system}/{perf.plan}: bottleneck is {b.stage} "
        f"({b.operator}) at {share * 100:.0f}% of runtime, paced by "
        f"{b.dominant_limit}"
    )


def comparison_table(perfs: Dict[str, PipelinePerf], baseline: str = "cpu") -> str:
    """Cross-machine totals for one pipeline, with speedups vs a baseline.

    ``perfs`` maps system name -> PipelinePerf of the *same* plan.
    """
    if baseline not in perfs:
        raise KeyError(f"baseline {baseline!r} not among {sorted(perfs)}")
    base = perfs[baseline]
    rows = []
    for name, perf in perfs.items():
        rows.append(
            [
                name,
                f"{perf.runtime_s * 1e3:.3f}",
                f"{perf.energy_j:.4f}",
                f"{pipeline_speedup(base, perf):.1f}x",
                perf.bottleneck().stage,
            ]
        )
    return format_table(
        ["System", "Time (ms)", "Energy (J)", "Speedup", "Bottleneck"], rows
    )
