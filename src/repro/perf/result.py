"""System-level run results and the paper's comparison metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.energy.model import EnergyBreakdown
from repro.perf.model import PhasePerf


@dataclass
class SystemResult:
    """One operator executed on one system configuration."""

    system: str
    operator: str
    variant: str
    phase_perfs: List[PhasePerf]
    energy: EnergyBreakdown
    output: Any
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def runtime_s(self) -> float:
        return sum(p.time_s for p in self.phase_perfs)

    @property
    def partition_time_s(self) -> float:
        return sum(p.time_s for p in self.phase_perfs if p.phase.is_partitioning)

    @property
    def probe_time_s(self) -> float:
        return sum(p.time_s for p in self.phase_perfs if not p.phase.is_partitioning)

    @property
    def avg_power_w(self) -> float:
        runtime = self.runtime_s
        return self.energy.total_j / runtime if runtime > 0 else 0.0

    @property
    def perf_per_watt(self) -> float:
        """Performance per watt (figure 9's metric).

        Performance is 1/runtime and average power is energy/runtime, so
        perf/W reduces to 1/energy: the system that spends fewer joules
        on the same work is the more efficient one.
        """
        if self.energy.total_j <= 0:
            return 0.0
        return 1.0 / self.energy.total_j

    def phase(self, name: str) -> PhasePerf:
        for p in self.phase_perfs:
            if p.phase.name == name:
                return p
        raise KeyError(f"no phase named {name!r}")

    def summary(self) -> Dict[str, float]:
        return {
            "runtime_s": self.runtime_s,
            "partition_s": self.partition_time_s,
            "probe_s": self.probe_time_s,
            "energy_j": self.energy.total_j,
            "avg_power_w": self.avg_power_w,
        }


def speedup(baseline: SystemResult, candidate: SystemResult) -> float:
    """Runtime speedup of ``candidate`` over ``baseline``."""
    if candidate.runtime_s <= 0:
        raise ValueError("candidate runtime must be positive")
    return baseline.runtime_s / candidate.runtime_s


def partition_speedup(baseline: SystemResult, candidate: SystemResult) -> float:
    if candidate.partition_time_s <= 0:
        raise ValueError("candidate partition time must be positive")
    return baseline.partition_time_s / candidate.partition_time_s


def probe_speedup(baseline: SystemResult, candidate: SystemResult) -> float:
    if candidate.probe_time_s <= 0:
        raise ValueError("candidate probe time must be positive")
    return baseline.probe_time_s / candidate.probe_time_s


def efficiency_improvement(baseline: SystemResult, candidate: SystemResult) -> float:
    """Performance-per-watt improvement (figure 9's metric)."""
    if candidate.perf_per_watt <= 0:
        raise ValueError("candidate efficiency must be positive")
    if baseline.perf_per_watt <= 0:
        raise ValueError("baseline efficiency must be positive")
    return candidate.perf_per_watt / baseline.perf_per_watt
