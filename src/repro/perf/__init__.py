"""Performance pipeline: PhaseCost -> per-unit WorkProfile -> core model
-> phase runtime, with network and DRAM device-side caps applied, per the
paper's methodology of combining measured IPC with functional
instruction counts (section 6).
"""

from repro.perf.memenv import derive_mem_environment
from repro.perf.model import PhaseEvaluator, PhasePerf
from repro.perf.result import (
    SystemResult,
    efficiency_improvement,
    partition_speedup,
    probe_speedup,
    speedup,
)

__all__ = [
    "PhaseEvaluator",
    "PhasePerf",
    "SystemResult",
    "derive_mem_environment",
    "efficiency_improvement",
    "partition_speedup",
    "probe_speedup",
    "speedup",
]
