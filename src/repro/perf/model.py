"""Phase evaluation: one PhaseCost on one machine.

For each phase the evaluator:

1. divides the aggregate work over the machine's compute units and runs
   the matching core model (OoO or in-order SIMD);
2. applies system-level caps the per-unit model cannot see -- the
   all-to-all shuffle's SerDes egress limit and the destination vaults'
   sustainable write rate for interleaved (addressed vs permutable)
   traffic;
3. produces the DRAM/network event counts the energy model charges.

Phase time is the max of the core time and the system-level caps: the
units run the same uniform work in parallel, and whichever resource
saturates first paces the phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.system import SystemConfig
from repro.cores import build_core_model
from repro.cores.base import CoreEstimate
from repro.cores.profile import WorkProfile
from repro.dram.analytic import (
    InterleavedWrites,
    RandomAccesses,
    SequentialStream,
    estimate_pattern,
)
from repro.energy.model import EnergyEvents
from repro.interconnect.topology import Topology
from repro.operators.base import PhaseCost
from repro.perf.memenv import derive_mem_environment, rand_region_cache_level


@dataclass
class PhasePerf:
    """Evaluated performance of one phase on one machine."""

    phase: PhaseCost
    time_ns: float
    core: CoreEstimate
    events: EnergyEvents
    core_utilization: float
    limits: Dict[str, float]

    @property
    def time_s(self) -> float:
        return self.time_ns * 1e-9

    @property
    def achieved_bw_bps(self) -> float:
        """System-wide bytes moved per second during this phase."""
        if self.time_ns <= 0:
            return 0.0
        return self.phase.total_bytes / (self.time_ns * 1e-9)


class PhaseEvaluator:
    """Evaluates phases for one (config, topology) machine."""

    def __init__(self, config: SystemConfig, topology: Topology) -> None:
        self._config = config
        self._topology = topology
        self._core_model = build_core_model(config.core)

    @property
    def config(self) -> SystemConfig:
        return self._config

    def _unit_profile(self, phase: PhaseCost) -> WorkProfile:
        """Divide a phase over the units and express its memory behaviour
        the way this machine's cores experience it.

        Shuffle-phase writes diverge by machine: NMP units inject posted
        write messages straight into the memory network (fire-and-forget,
        so the core sees them as streamed output), while CPU cores push
        them through the coherent cache hierarchy -- each tuple write
        allocates its destination line (RFO), a dependent remote access.
        Permutable shuffles stream on every machine.
        """
        cfg = self._config
        units = cfg.num_cores
        remote_fraction = 0.0
        rand_reads = phase.rand_reads
        rand_writes = phase.rand_writes
        rand_access_b = phase.rand_access_b
        seq_write_b = phase.seq_write_b

        if phase.shuffle_b:
            remote_fraction = (units - 1) / units if units > 1 else 0.0
            if cfg.is_near_memory or phase.permutable_writes:
                # Posted/permutable: the shuffle bytes stream out.
                seq_write_b += phase.shuffle_b
                rand_writes = 0.0
            # else: the CPU's addressed writes stay in rand_writes (the
            # RFO path); the bytes are accounted there, not as streams.

        # Machines with caches move cache blocks on random DRAM misses.
        if cfg.has_cache_hierarchy and phase.rand_region_b > cfg.core.l1d_b:
            rand_access_b = max(rand_access_b, cfg.core.cache_block_b)

        return WorkProfile(
            name=phase.name,
            instructions=phase.instructions / units,
            simd_ops=phase.simd_ops / units,
            dep_ilp=phase.dep_ilp,
            mem_parallelism=phase.mem_parallelism,
            rand_reads=rand_reads / units,
            rand_writes=rand_writes / units,
            rand_access_b=rand_access_b,
            seq_read_b=phase.seq_read_b / units,
            seq_write_b=seq_write_b / units,
            remote_fraction=remote_fraction,
            simd_vectorizable=phase.simd_vectorizable,
        )

    def _system_caps(self, phase: PhaseCost) -> Dict[str, float]:
        """System-level time floors (ns) beyond the per-unit core model."""
        caps: Dict[str, float] = {}
        geo = self._config.geometry
        if phase.shuffle_b:
            # SerDes egress across all stacks.  Fault-injection retries
            # re-cross the wire and backoff/straggler stalls hold it idle
            # (both expressed in bytes at this bandwidth), so the egress
            # cap prices the whole disrupted critical path.
            network_bw = self._topology.shuffle_egress_bw_bps() * geo.num_stacks
            wire_b = phase.shuffle_b + phase.retry_shuffle_b + phase.backoff_stall_b
            caps["network"] = wire_b / network_bw * 1e9
            # Destination vaults absorbing interleaved writes.
            per_vault_b = phase.shuffle_b / geo.total_vaults
            pattern = InterleavedWrites(
                total_b=int(per_vault_b),
                object_b=phase.object_b,
                num_sources=max(1, self._config.num_cores - 1),
                permutable=phase.permutable_writes,
            )
            est = estimate_pattern(pattern, geo, self._config.timing)
            caps["dest_dram"] = per_vault_b / est.sustainable_bw_bps * 1e9
        return caps

    def _events(self, phase: PhaseCost, time_ns: float) -> EnergyEvents:
        """DRAM/LLC/network event counts of one phase, system-wide."""
        geo = self._config.geometry
        cfg = self._config
        activations = 0.0
        dram_bytes = 0.0
        llc_accesses = 0.0
        serdes_bytes = 0.0
        noc_bit_mm = 0.0
        mean_hops = self._topology.mesh.mean_hops()

        # Sequential streams: one activation per row.
        seq_bytes = phase.seq_read_b + phase.seq_write_b
        if seq_bytes:
            activations += seq_bytes / geo.row_size_b
            dram_bytes += seq_bytes

        # Random accesses: depends on which level captures the region.
        # Shuffle-phase writes are charged once, as interleaved writes at
        # the destinations (below), never as plain random traffic.
        level = rand_region_cache_level(cfg, phase.rand_region_b)
        rand_count = phase.rand_reads + (0 if phase.shuffle_b else phase.rand_writes)
        if rand_count:
            if level == "memory":
                access_b = (
                    cfg.core.cache_block_b
                    if cfg.has_cache_hierarchy
                    else max(phase.rand_access_b, geo.min_access_b)
                )
                pattern = RandomAccesses(
                    count=int(rand_count),
                    access_b=access_b,
                    region_b=phase.rand_region_b,
                )
                est = estimate_pattern(pattern, geo, cfg.timing)
                activations += est.activations
                dram_bytes += est.bytes
            elif level == "llc":
                llc_accesses += rand_count

        # Shuffle traffic: interleaved writes at the destinations.
        if phase.shuffle_b:
            per_vault_b = phase.shuffle_b / geo.total_vaults
            pattern = InterleavedWrites(
                total_b=int(per_vault_b),
                object_b=phase.object_b,
                num_sources=max(1, cfg.num_cores - 1),
                permutable=phase.permutable_writes,
            )
            est = estimate_pattern(pattern, geo, cfg.timing)
            activations += est.activations * geo.total_vaults
            dram_bytes += phase.shuffle_b
            remote = phase.shuffle_b * (geo.num_stacks - 1) / geo.num_stacks
            if cfg.is_near_memory:
                serdes_bytes += remote
            else:
                serdes_bytes += phase.shuffle_b * 2  # up to the hub, back down
            noc_bit_mm += phase.shuffle_b * 8 * mean_hops

        # Fault-injection retries: re-sent and duplicated deliveries burn
        # SerDes and NoC energy like shuffle traffic, but never commit to
        # destination DRAM (drops are lost in flight, duplicates are
        # discarded at the controller).  Backoff stall is idle time --
        # no dynamic events; leakage scales with phase time as usual.
        if phase.retry_shuffle_b:
            if cfg.is_near_memory:
                serdes_bytes += (
                    phase.retry_shuffle_b * (geo.num_stacks - 1) / geo.num_stacks
                )
            else:
                serdes_bytes += phase.retry_shuffle_b * 2
            noc_bit_mm += phase.retry_shuffle_b * 8 * mean_hops

        # CPU-centric: *all* DRAM traffic crosses a SerDes link and the
        # mesh, and every cache-block demand touches the LLC.
        if not cfg.is_near_memory:
            serdes_bytes += seq_bytes
            noc_bit_mm += seq_bytes * 8 * mean_hops
            llc_accesses += seq_bytes / cfg.core.cache_block_b
            if rand_count and level == "memory":
                serdes_bytes += rand_count * cfg.core.cache_block_b
                noc_bit_mm += rand_count * cfg.core.cache_block_b * 8 * mean_hops

        return EnergyEvents(
            dram_activations=activations,
            dram_bytes=dram_bytes,
            llc_accesses=llc_accesses,
            noc_bit_mm=noc_bit_mm,
            serdes_bytes=serdes_bytes,
        )

    def evaluate(self, phase: PhaseCost) -> PhasePerf:
        """Time, events and utilization of one phase on this machine."""
        profile = self._unit_profile(phase)
        env = derive_mem_environment(self._config, self._topology, phase)
        core = self._core_model.estimate(profile, env)
        limits = {"core": core.time_ns}
        limits.update(self._system_caps(phase))
        time_ns = max(limits.values())
        events = self._events(phase, time_ns)
        utilization = _core_utilization(core, time_ns)
        return PhasePerf(
            phase=phase,
            time_ns=time_ns,
            core=core,
            events=events,
            core_utilization=utilization,
            limits=limits,
        )


#: Floor utilization: a stalled core still burns leakage + clock power.
MIN_CORE_UTILIZATION = 0.3


def _core_utilization(core: CoreEstimate, phase_time_ns: float) -> float:
    """Fraction of peak core power drawn during the phase.

    Utilization follows the share of time the pipeline is doing useful
    work (compute time over total phase time), floored by idle power.
    """
    if phase_time_ns <= 0:
        return MIN_CORE_UTILIZATION
    busy = min(1.0, core.compute_time_ns / phase_time_ns)
    return max(MIN_CORE_UTILIZATION, busy)
