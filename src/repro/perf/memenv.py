"""Derive the per-unit memory environment a phase sees on a machine.

This is the middle step of the ``PhaseCost -> PhaseEvaluator ->
PhasePerf`` path (see ``docs/ARCHITECTURE.md``): before the core model
can estimate a phase's time, it needs to know what memory looks like
*from one compute unit's seat* on this machine.  The returned
:class:`~repro.cores.profile.MemEnvironment` bundles exactly that --
average random-access latency (``rand_latency_ns``), device-side
sustainable bandwidths for the phase's sequential and random patterns
(``seq_bw_bps`` / ``rand_bw_bps``), and the extra latency of crossing
the memory network (``remote_extra_latency_ns``).

Latency composition:

- NMP/Mondrian units access their local vault: row-miss DRAM time plus a
  small vault-controller overhead.
- CPU cores reach memory through the LLC, the mesh to the link tile, one
  SerDes crossing, and the vault; loaded latency gets a queueing uplift
  (16 cores share 4 links), calibrated so the CPU baseline's measured
  per-core scan bandwidth lands near the paper's 4.3 GB/s.
- Phases whose random-access region fits in a cache level (the CPU's
  16-bit histogram fits the LLC; the NMP machines' 6-bit one fits L1)
  see that level's latency instead and produce no DRAM traffic.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.cores.profile import MemEnvironment
from repro.dram.analytic import RandomAccesses, estimate_pattern
from repro.interconnect.topology import Topology
from repro.operators.base import PhaseCost

#: Vault-controller / on-logic-layer overhead added to raw DRAM timing.
VAULT_CTRL_OVERHEAD_NS = 4.0
#: L1 and LLC load-to-use latencies (Table 3: 2-cycle L1, 4-cycle LLC
#: bank at the respective frequencies, plus interconnect slack).
L1_LATENCY_NS = 1.5
LLC_LATENCY_NS = 8.0
#: Queueing uplift on the CPU's loaded remote-access path (16 cores
#: share four SerDes links; calibrated against the paper's measured
#: per-core CPU bandwidths in section 7.1).
CPU_QUEUE_FACTOR = 2.0


def _local_dram_latency_ns(config: SystemConfig) -> float:
    return config.timing.row_miss_latency_ns + VAULT_CTRL_OVERHEAD_NS


def _cpu_remote_latency_ns(config: SystemConfig, topology: Topology) -> float:
    """CPU load miss: mesh to hub, SerDes crossing, vault access."""
    route = topology.route(0, 0)  # star: every access crosses once; use
    # the explicit single-crossing accessor when available.
    if hasattr(topology, "cpu_access_route"):
        route = topology.cpu_access_route(0)
    network_ns = topology.message_latency_ns(route, config.core.cache_block_b)
    raw = _local_dram_latency_ns(config) + network_ns + LLC_LATENCY_NS
    return raw * CPU_QUEUE_FACTOR


def rand_region_cache_level(config: SystemConfig, region_b: int) -> str:
    """Which level captures a phase's random-access working set.

    The LLC is shared: with every core walking its own region, a region
    only stays resident when all the per-core regions fit together.
    """
    if region_b <= config.core.l1d_b:
        return "l1"
    if config.has_cache_hierarchy and config.llc_b:
        llc_share = config.llc_b / config.num_cores
        if region_b <= llc_share:
            return "llc"
    return "memory"


def derive_mem_environment(
    config: SystemConfig, topology: Topology, phase: PhaseCost
) -> MemEnvironment:
    """The memory environment one compute unit sees during ``phase``."""
    geo = config.geometry
    vaults_per_unit = max(1.0, geo.total_vaults / config.num_cores)

    level = rand_region_cache_level(config, phase.rand_region_b)
    if level == "l1":
        rand_latency = L1_LATENCY_NS
        rand_bw = 64e9  # L1-resident: effectively unconstrained
    elif level == "llc":
        rand_latency = LLC_LATENCY_NS
        rand_bw = 32e9
    elif config.is_near_memory:
        rand_latency = _local_dram_latency_ns(config)
        access_b = max(phase.rand_access_b, geo.min_access_b)
        pattern = RandomAccesses(
            count=1024, access_b=access_b, region_b=phase.rand_region_b
        )
        est = estimate_pattern(pattern, geo, config.timing)
        rand_bw = est.sustainable_bw_bps * vaults_per_unit
    else:
        rand_latency = _cpu_remote_latency_ns(config, topology)
        # CPU random accesses move cache blocks; device-side rate per core
        # is its share of the vaults' miss throughput, further capped by
        # its share of the star's SerDes links.
        pattern = RandomAccesses(
            count=1024, access_b=config.core.cache_block_b, region_b=phase.rand_region_b
        )
        est = estimate_pattern(pattern, geo, config.timing)
        device_share = est.sustainable_bw_bps * geo.total_vaults / config.num_cores
        link_share = (
            topology.link.bw_bps_per_dir * geo.num_stacks / config.num_cores
        )
        rand_bw = min(device_share, link_share)

    if config.is_near_memory:
        seq_bw = geo.vault_peak_bw_bps * vaults_per_unit
        if not config.core.has_stream_buffers:
            # The NMP baseline streams through its L1 with the next-line
            # prefetcher; depth bounds the in-flight blocks.
            prefetch_blocks = 1 + config.core.next_line_prefetch_depth
            prefetch_bw = (
                prefetch_blocks
                * config.core.cache_block_b
                / (_local_dram_latency_ns(config) * 1e-9)
            )
            seq_bw = min(seq_bw, prefetch_bw)
        remote_extra = topology.message_latency_ns(
            topology.route(0, geo.vaults_per_stack), phase.object_b
        )
    else:
        # The star's links cap streaming; each core gets its share.  The
        # next-line prefetcher's depth bounds streaming too, at the
        # *unloaded* remote latency (prefetches are independent, so the
        # queueing uplift of dependent accesses does not apply).
        link_bw = topology.link.bw_bps_per_dir * geo.num_stacks
        unloaded_ns = _cpu_remote_latency_ns(config, topology) / CPU_QUEUE_FACTOR
        prefetch_blocks = 1 + config.core.next_line_prefetch_depth
        prefetch_bw = (
            prefetch_blocks * config.core.cache_block_b / (unloaded_ns * 1e-9)
        )
        seq_bw = min(
            geo.vault_peak_bw_bps * vaults_per_unit,
            link_bw / config.num_cores,
            prefetch_bw,
        )
        remote_extra = 0.0  # CPU latency above is already end-to-end

    return MemEnvironment(
        rand_latency_ns=rand_latency,
        seq_bw_bps=seq_bw,
        rand_bw_bps=max(rand_bw, 1e6),
        remote_extra_latency_ns=remote_extra,
    )
