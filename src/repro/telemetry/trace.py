"""Span tracing with deterministic ids and Chrome trace_event export.

The design center is "free when disabled": every instrumentation site
in the stack calls the module-level :func:`span`, which returns a shared
inert singleton unless a :class:`Tracer` has been installed -- one
global read and one attribute call, nothing allocated.  When tracing is
on, each span records wall-clock epoch time (``time.time_ns``, so spans
from different processes land on one timeline), a monotonic duration
(``perf_counter_ns``) and process CPU time (``process_time_ns``).

Span ids are small sequential integers handed out in start order under
a lock, so a single-threaded run numbers its spans deterministically.
Worker processes run their own tracer from id 1 and ship finished spans
back as plain dicts (the process pools and the resilience fleet's
JSON-lines protocol both carry them); :meth:`Tracer.adopt` renumbers
them into the parent's id space and re-parents the orphan roots under
the span that spawned the worker.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "span",
    "tracing",
    "uninstall_tracer",
]


class Span:
    """One timed operation; also the ``with`` context manager."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "category",
        "attrs",
        "start_wall_ns",
        "duration_ns",
        "cpu_ns",
        "pid",
        "tid",
        "_start_perf_ns",
        "_start_cpu_ns",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.start_wall_ns = 0
        self.duration_ns = 0
        self.cpu_ns = 0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._start_perf_ns = 0
        self._start_cpu_ns = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach structured attributes to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_wall_ns = time.time_ns()
        self._start_cpu_ns = time.process_time_ns()
        self._start_perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = time.perf_counter_ns() - self._start_perf_ns
        self.cpu_ns = time.process_time_ns() - self._start_cpu_ns
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the cross-process side channels."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "attrs": dict(self.attrs),
            "start_wall_ns": self.start_wall_ns,
            "duration_ns": self.duration_ns,
            "cpu_ns": self.cpu_ns,
            "pid": self.pid,
            "tid": self.tid,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, dur={self.duration_ns}ns)"
        )


class _NoopSpan:
    """The disabled-tracing singleton: every operation is inert."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; thread-safe; ids are start-ordered."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._spans: List[Span] = []

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "repro", **attrs: Any) -> Span:
        """A new span nested under this thread's innermost open span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        sp = Span(self, span_id, parent_id, name, category, attrs)
        stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # pragma: no cover - misnested exit
            stack.remove(sp)
        with self._lock:
            self._spans.append(sp)

    def current_span_id(self) -> Optional[int]:
        """This thread's innermost open span id (adoption parent)."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- inspection -----------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in finish order (a copy)."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        return [sp for sp in self.spans if sp.name == name]

    def children_of(self, parent: Span) -> List[Span]:
        return [sp for sp in self.spans if sp.parent_id == parent.span_id]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [sp.to_dict() for sp in self.spans]

    # -- cross-process re-parenting ------------------------------------

    def adopt(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        parent_id: Optional[int] = None,
    ) -> int:
        """Renumber worker spans into this tracer and attach their roots.

        ``span_dicts`` is a child tracer's ``to_dicts()`` output (ids
        from the child's private sequence).  Each span gets a fresh id
        here; intra-batch parent links are remapped and spans whose
        parent is unknown (the worker's roots) are attached to
        ``parent_id``.  Returns the number of spans adopted.
        """
        batch = list(span_dicts)
        if not batch:
            return 0
        with self._lock:
            mapping = {}
            for d in batch:
                mapping[d["span_id"]] = self._next_id
                self._next_id += 1
            for d in batch:
                sp = Span(
                    self,
                    mapping[d["span_id"]],
                    mapping.get(d.get("parent_id"), parent_id),
                    d["name"],
                    d.get("category", "repro"),
                    dict(d.get("attrs") or {}),
                )
                sp.start_wall_ns = int(d.get("start_wall_ns", 0))
                sp.duration_ns = int(d.get("duration_ns", 0))
                sp.cpu_ns = int(d.get("cpu_ns", 0))
                sp.pid = int(d.get("pid", 0))
                sp.tid = int(d.get("tid", 0))
                self._spans.append(sp)
        return len(batch)

    # -- Chrome trace_event export -------------------------------------

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """Complete ("X") trace events, start-ordered for stable output.

        Timestamps are wall-clock microseconds since the Unix epoch, so
        spans adopted from other processes share one timeline; Perfetto
        and ``chrome://tracing`` normalize to the earliest event.
        """
        events = []
        for sp in sorted(
            self.spans, key=lambda s: (s.start_wall_ns, s.span_id)
        ):
            args: Dict[str, Any] = {
                "span_id": sp.span_id,
                "cpu_us": sp.cpu_ns // 1000,
            }
            if sp.parent_id is not None:
                args["parent_id"] = sp.parent_id
            for key in sorted(sp.attrs):
                args[key] = sp.attrs[key]
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.category,
                    "ph": "X",
                    "ts": sp.start_wall_ns // 1000,
                    "dur": max(sp.duration_ns // 1000, 1),
                    "pid": sp.pid,
                    "tid": sp.tid,
                    "args": args,
                }
            )
        return events

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON document; returns the event count."""
        events = self.chrome_trace_events()
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": "telemetry/v1", "source": "repro"},
        }
        with open(path, "w") as fh:
            json.dump(document, fh, sort_keys=True)
            fh.write("\n")
        return len(events)


#: The installed tracer, or None -- the whole enable/disable switch.
_TRACER: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer; tracing is now on."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall_tracer() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active, if any."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def active_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, category: str = "repro", **attrs: Any):
    """The guarded entry point every instrumentation site uses.

    With no tracer installed this returns the shared no-op singleton
    without allocating -- the disabled cost is one global read.
    """
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, category, **attrs)


class tracing:
    """``with tracing() as tracer:`` -- scoped install/uninstall."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        global _TRACER
        self._previous = _TRACER
        _TRACER = self._tracer if self._tracer is not None else Tracer()
        return _TRACER

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _TRACER
        _TRACER = self._previous
        return False
