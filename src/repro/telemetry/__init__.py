"""Zero-dependency tracing + metrics for the whole reproduction stack.

Three small modules, stdlib only:

``trace``
    Context-manager spans with deterministic ids, wall/CPU time and
    structured attributes, a module-level no-op guard (``span(...)`` is
    a shared inert singleton until a :class:`Tracer` is installed), a
    re-parenting ``adopt`` for spans shipped back from worker processes,
    and a Chrome ``trace_event`` exporter (``chrome://tracing`` /
    Perfetto load the output directly).

``metrics``
    Typed counters / gauges / histograms in one process-wide registry,
    unifying the ad-hoc stats the subsystems already keep (store
    hit/miss/evict, scheduler dedup, circuit-breaker flips, fault
    retry/backoff totals, cache tiers) behind one ``snapshot()``.

``codec``
    The canonical-JSON ``telemetry/v1`` envelope (sorted keys, no
    whitespace) used by ``repro.service stats --json`` and the
    determinism tests, plus a Chrome trace-event validator.

The instrumentation threaded through ``pipeline``, ``shuffle``,
``faults``, ``service`` and ``suites`` sits at stage / round / task
granularity (never per tuple) and costs one guarded call when no tracer
is installed -- the bench suite holds that disabled path to a <2%
overhead budget on the fig6 experiment.
"""

from repro.telemetry.codec import (
    SCHEMA,
    canonical_json,
    decode_snapshot,
    encode_snapshot,
    validate_trace_events,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    runtime_snapshot,
)
from repro.telemetry.trace import (
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "canonical_json",
    "decode_snapshot",
    "encode_snapshot",
    "install_tracer",
    "registry",
    "runtime_snapshot",
    "span",
    "tracing",
    "uninstall_tracer",
    "validate_trace_events",
]
