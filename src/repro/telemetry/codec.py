"""The ``telemetry/v1`` canonical-JSON codec and trace validation.

Canonical form: UTF-8 JSON with sorted keys and no whitespace, so two
interpreters (or two runs) that measured the same events emit
byte-identical documents -- the property the determinism tests pin.
Snapshots travel in a versioned envelope::

    {"schema": "telemetry/v1", "snapshot": {...}}

``validate_trace_events`` checks the structural contract Chrome's
``trace_event`` importer (and Perfetto) require of the complete events
the tracer emits; the telemetry tests run every export through it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = [
    "SCHEMA",
    "canonical_json",
    "decode_snapshot",
    "encode_snapshot",
    "validate_trace_events",
]

SCHEMA = "telemetry/v1"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, ASCII-safe."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def encode_snapshot(snapshot: Dict[str, Any]) -> str:
    """Wrap a metrics snapshot in the versioned envelope, canonically."""
    return canonical_json({"schema": SCHEMA, "snapshot": snapshot})


def decode_snapshot(text: str) -> Dict[str, Any]:
    """Parse and version-check an :func:`encode_snapshot` document."""
    document = json.loads(text)
    if not isinstance(document, dict):
        raise ValueError("telemetry document must be a JSON object")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"unsupported telemetry schema {schema!r} (expected {SCHEMA!r})"
        )
    snapshot = document.get("snapshot")
    if not isinstance(snapshot, dict):
        raise ValueError('telemetry document needs a "snapshot" object')
    return snapshot


#: Required key -> type for a complete ("X") trace event.
_EVENT_FIELDS = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": int,
    "dur": int,
    "pid": int,
    "tid": int,
}


def validate_trace_events(document: Any) -> List[Dict[str, Any]]:
    """Validate a Chrome trace document; returns its event list.

    Accepts either the object form (``{"traceEvents": [...]}``) or a
    bare event array, mirroring what the Chrome importer accepts.
    Raises ``ValueError`` naming the first offending event otherwise.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
    else:
        events = document
    if not isinstance(events, list):
        raise ValueError('trace document needs a "traceEvents" array')
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key, expected in _EVENT_FIELDS.items():
            value = event.get(key)
            if not isinstance(value, expected) or isinstance(value, bool):
                raise ValueError(
                    f"traceEvents[{index}].{key}: expected "
                    f"{expected.__name__}, got {value!r}"
                )
        if event["ph"] != "X":
            raise ValueError(
                f"traceEvents[{index}].ph: tracer emits complete events "
                f"('X'), got {event['ph']!r}"
            )
        if event["ts"] < 0 or event["dur"] < 1:
            raise ValueError(
                f"traceEvents[{index}]: ts must be >= 0 and dur >= 1"
            )
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"traceEvents[{index}].args is not an object")
    return events
