"""Typed metrics -- counters, gauges, histograms -- in one registry.

The subsystems already keep ad-hoc stats dicts (the result store's
hit/miss/evict counters, the scheduler's dedup tallies, the circuit
breaker's state, the fault protocol's retry totals, the in-memory cache
tiers).  This module gives them one vocabulary and one export:
instrumented code mirrors its totals into the process-wide
:func:`registry` at cheap chokepoints (batch boundaries, session
finalize, breaker flips -- never inner loops), and
:func:`runtime_snapshot` folds the live cache/store stats in on demand
so a single ``snapshot()`` answers "what has this process done".

Everything is deterministic: snapshots are plain dicts with sorted
iteration order downstream (the ``telemetry/v1`` codec sorts keys), and
histogram buckets are fixed powers of ten so two interpreters counting
the same events produce byte-identical encodings.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "runtime_snapshot",
]

#: Default histogram bucket upper bounds (powers of ten; +inf implied).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    ) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name -> instrument, one namespace per process.

    ``counter``/``gauge``/``histogram`` are get-or-create and
    type-checked: asking for ``"x"`` as a counter after it was created
    as a gauge is a bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, *args)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments, grouped by type, names sorted."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name, instrument in items:
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.snapshot()
            else:
                out["histograms"][name] = instrument.snapshot()
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and fresh service runs)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide registry all instrumentation writes to.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def runtime_snapshot() -> Dict[str, Any]:
    """Registry snapshot plus the live cache/store stats, one document.

    The in-memory cache tiers and the persistent result store keep
    their own counters (they predate this registry and their tests pin
    the shapes); rather than double-count, this folds their current
    stats in at read time under ``cache`` / ``store`` keys next to the
    registry's ``metrics``.
    """
    from repro.experiments import common

    return {
        "cache": common.cache_stats(),
        "metrics": _REGISTRY.snapshot(),
        "store": common.store_stats(),
    }
