"""Relations as numpy structured arrays of 16-byte key/payload tuples."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

KEY_B = 8
PAYLOAD_B = 8
TUPLE_B = KEY_B + PAYLOAD_B

#: dtype of one tuple: 8-byte unsigned key, 8-byte unsigned payload.
TUPLE_DTYPE = np.dtype([("key", np.uint64), ("payload", np.uint64)])


class Relation:
    """A columnar relation of (key, payload) tuples.

    Thin, explicit wrapper over a structured array; all operators consume
    and produce Relations so data provenance stays obvious.
    """

    def __init__(self, data: np.ndarray, name: str = "relation") -> None:
        if data.dtype != TUPLE_DTYPE:
            raise TypeError(f"relation data must have dtype {TUPLE_DTYPE}, got {data.dtype}")
        if data.ndim != 1:
            raise ValueError("relation data must be one-dimensional")
        self._data = data
        self.name = name

    # -- construction ---------------------------------------------------

    @classmethod
    def from_arrays(
        cls, keys: np.ndarray, payloads: np.ndarray, name: str = "relation"
    ) -> "Relation":
        keys = np.asarray(keys, dtype=np.uint64)
        payloads = np.asarray(payloads, dtype=np.uint64)
        if keys.shape != payloads.shape:
            raise ValueError("keys and payloads must have equal length")
        data = np.empty(keys.shape[0], dtype=TUPLE_DTYPE)
        data["key"] = keys
        data["payload"] = payloads
        return cls(data, name)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]], name: str = "relation") -> "Relation":
        pairs = list(pairs)
        keys = np.array([k for k, _ in pairs], dtype=np.uint64)
        payloads = np.array([p for _, p in pairs], dtype=np.uint64)
        return cls.from_arrays(keys, payloads, name)

    @classmethod
    def empty(cls, name: str = "relation") -> "Relation":
        return cls(np.empty(0, dtype=TUPLE_DTYPE), name)

    # -- views ------------------------------------------------------------

    @property
    def keys(self) -> np.ndarray:
        return self._data["key"]

    @property
    def payloads(self) -> np.ndarray:
        return self._data["payload"]

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def size_b(self) -> int:
        return len(self._data) * TUPLE_B

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return np.array_equal(self._data, other._data)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, n={len(self)})"

    # -- transformations --------------------------------------------------

    def take(self, indices: np.ndarray, name: Optional[str] = None) -> "Relation":
        return Relation(self._data[indices], name or self.name)

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Relation":
        return Relation(self._data[start:stop], name or self.name)

    def concat(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        return Relation(
            np.concatenate([self._data, other._data]), name or self.name
        )

    def sorted_by_key(self, name: Optional[str] = None) -> "Relation":
        order = np.argsort(self.keys, kind="stable")
        return self.take(order, name or self.name)

    def is_sorted(self) -> bool:
        keys = self.keys
        return bool(np.all(keys[:-1] <= keys[1:])) if len(keys) > 1 else True

    def multiset_equal(self, other: "Relation") -> bool:
        """Order-insensitive equality -- the permutability correctness
        criterion (same tuples, any arrangement).

        Both sides are brought to (key, payload) order by sorting the
        columns (a structured-dtype ``np.sort(order=...)`` would
        re-promote the tuple dtype on every call) and compared
        column-wise.
        """
        if len(self) != len(other):
            return False
        mine = np.lexsort((self.payloads, self.keys))
        theirs = np.lexsort((other.payloads, other.keys))
        return np.array_equal(self.keys[mine], other.keys[theirs]) and np.array_equal(
            self.payloads[mine], other.payloads[theirs]
        )
