"""Histogram build and prefix sums -- the first step of partitioning.

Every operator with a partitioning phase starts by counting, per source
partition, how many tuples hash to each destination (Table 2's
"Histogram build"), then prefix-sums those counts into exact destination
offsets for the data-distribution step.  The same machinery computes the
per-destination totals that ``shuffle_begin`` announces.
"""

from __future__ import annotations

from typing import List

import numpy as np


def build_histogram(buckets: np.ndarray, num_buckets: int) -> np.ndarray:
    """Tuple count per destination bucket."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    buckets = np.asarray(buckets)
    if len(buckets) and (buckets.min() < 0 or buckets.max() >= num_buckets):
        raise ValueError("bucket ids out of range")
    return np.bincount(buckets, minlength=num_buckets).astype(np.int64)


def prefix_sum(histogram: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: the first write offset of each bucket."""
    histogram = np.asarray(histogram, dtype=np.int64)
    offsets = np.zeros_like(histogram)
    np.cumsum(histogram[:-1], out=offsets[1:])
    return offsets


def combine_histograms(per_source: List[np.ndarray]) -> np.ndarray:
    """Total inbound tuples per destination across all sources.

    This is the sum every NMP unit computes during shuffle_begin to learn
    the size of its inbound data (paper section 5.4).
    """
    if not per_source:
        raise ValueError("need at least one source histogram")
    totals = np.zeros_like(np.asarray(per_source[0], dtype=np.int64))
    for hist in per_source:
        hist = np.asarray(hist, dtype=np.int64)
        if hist.shape != totals.shape:
            raise ValueError("histograms must have equal bucket counts")
        totals += hist
    return totals


def source_write_offsets(per_source: List[np.ndarray]) -> List[np.ndarray]:
    """Exact write offset of each (source, destination) pair.

    Source ``s`` writes its tuples for destination ``d`` at
    ``sum over earlier sources of their d-counts`` plus the destination's
    base -- the addressed (non-permutable) partitioning needs these exact
    addresses, which is precisely the dependency-heavy bookkeeping the
    permutable path eliminates.
    """
    if not per_source:
        raise ValueError("need at least one source histogram")
    num_buckets = len(per_source[0])
    running = np.zeros(num_buckets, dtype=np.int64)
    offsets = []
    for hist in per_source:
        hist = np.asarray(hist, dtype=np.int64)
        if len(hist) != num_buckets:
            raise ValueError("histograms must have equal bucket counts")
        offsets.append(running.copy())
        running += hist
    return offsets
