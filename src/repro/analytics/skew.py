"""Skewed-key workload generation (the paper's deferred future work).

Section 5.4: a vault that learns during shuffle_begin that its inbound
data overflows the destination buffer raises an exception, and "the
histogram build of the partitioning phase should be retried with a
second round of partitioning in order to balance the resulting
partitions' sizes.  We focus on uniform data distributions ... and defer
support for skewed datasets to future work."

This module provides the workloads that trigger the problem: Zipf-like
key popularity, under which low-order-bit bucketing concentrates tuples
on few vaults.  :mod:`repro.operators.skew` implements the two-round
rebalancing fix.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.tuples import Relation
from repro.analytics.workload import (
    DEFAULT_KEY_SPACE_BITS,
    GroupByWorkload,
    SortWorkload,
    _payloads,
    _split,
)


def zipf_keys(
    rng: np.random.Generator,
    n: int,
    num_distinct: int,
    alpha: float,
    key_space_bits: int,
) -> np.ndarray:
    """Draw ``n`` keys from ``num_distinct`` values with Zipf(alpha)
    popularity.

    The distinct key *values* are uniform over the key space (so range
    partitioning stays balanced); only their *frequencies* are skewed --
    the regime that breaks hash partitioning.
    """
    if n < 1 or num_distinct < 1:
        raise ValueError("need at least one tuple and one distinct key")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    values = rng.integers(0, 1 << key_space_bits, num_distinct, dtype=np.uint64)
    values = np.unique(values)
    weights = weights[: len(values)]
    weights /= weights.sum()
    return rng.choice(values, size=n, p=weights).astype(np.uint64)


def make_skewed_groupby_workload(
    n: int,
    num_partitions: int = 64,
    alpha: float = 1.2,
    num_distinct: int = None,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> GroupByWorkload:
    """Group-by workload with Zipf(alpha) key popularity.

    With alpha around 1, a handful of hot keys hold a large fraction of
    the tuples, so the hash shuffle funnels them into few partitions.
    """
    rng = np.random.default_rng(seed)
    if num_distinct is None:
        num_distinct = max(1, n // 4)
    keys = zipf_keys(rng, n, num_distinct, alpha, key_space_bits)
    relation = Relation.from_arrays(keys, _payloads(rng, n), "skewed_groupby_input")
    avg_group = n / max(1, len(np.unique(keys)))
    return GroupByWorkload(
        partitions=_split(relation, num_partitions),
        key_space_bits=key_space_bits,
        avg_group_size=avg_group,
    )


def make_skewed_sort_workload(
    n: int,
    num_partitions: int = 64,
    alpha: float = 1.2,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> SortWorkload:
    """Sort workload whose key *values* cluster (hot key ranges).

    Unlike the group-by skew, here the clustering is in value space:
    keys concentrate in a narrow band, which breaks *range* (high-bit)
    partitioning instead of hash partitioning.
    """
    rng = np.random.default_rng(seed)
    # Concentrate most keys in 1/64th of the space, spread the rest.
    n_hot = int(n * 0.8)
    band = 1 << max(1, key_space_bits - 6)
    base = rng.integers(0, (1 << key_space_bits) - band, dtype=np.uint64)
    hot = base + rng.integers(0, band, n_hot, dtype=np.uint64)
    cold = rng.integers(0, 1 << key_space_bits, n - n_hot, dtype=np.uint64)
    keys = rng.permutation(np.concatenate([hot, cold])).astype(np.uint64)
    relation = Relation.from_arrays(keys, _payloads(rng, n), "skewed_sort_input")
    return SortWorkload(
        partitions=_split(relation, num_partitions), key_space_bits=key_space_bits
    )


def partition_imbalance(sizes) -> float:
    """Max-to-mean partition size ratio (1.0 = perfectly balanced)."""
    sizes = np.asarray(list(sizes), dtype=np.float64)
    if len(sizes) == 0 or sizes.sum() == 0:
        raise ValueError("need non-empty partitions")
    return float(sizes.max() / sizes.mean())
