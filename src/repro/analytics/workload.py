"""Workload generators matching the paper's evaluation setup.

- 16-byte tuples (8 B key / 8 B payload), uniform key distribution.
- Join: foreign-key relationship -- every tuple of the large relation S
  finds exactly one match in R.
- Group by: average group size of four tuples.
- Input data "initially randomly distributed across multiple memory
  partitions": generators return per-partition slices.

Keys are drawn from a bounded key space (``key_space_bits``) so that
high-order-bit range partitioning (Sort) has a known universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, List

import numpy as np

from repro.analytics.tuples import Relation

if TYPE_CHECKING:  # pragma: no cover -- see _flat_columns
    from repro.columnar.soa import SegmentedColumns


def _flat_columns(partitions: List[Relation]) -> "SegmentedColumns":
    """Flatten partitions into a zero-copy SoA view.

    Imported lazily: ``repro.columnar.soa`` imports this package's
    ``tuples`` module, so a top-level import here would close an import
    cycle for any process whose *first* import is ``repro.columnar``.
    """
    from repro.columnar.soa import SegmentedColumns

    return SegmentedColumns.from_relations(partitions)

#: Keys fit in 48 bits by default, leaving high bits predictably zero-free.
DEFAULT_KEY_SPACE_BITS = 48


def _uniform_keys(rng: np.random.Generator, n: int, key_space_bits: int) -> np.ndarray:
    if not 1 <= key_space_bits <= 63:
        raise ValueError("key_space_bits must be in [1, 63]")
    return rng.integers(0, 1 << key_space_bits, size=n, dtype=np.uint64)


def _payloads(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, 1 << 63, size=n, dtype=np.uint64)


def split_relation(relation: Relation, num_partitions: int) -> List[Relation]:
    """Split a relation into near-equal contiguous partition slices.

    This is the paper's initial data placement: input relations start
    "randomly distributed across multiple memory partitions", one slice
    per vault.  Workload constructors and the pipeline subsystem both use
    it to turn a whole relation into the per-partition lists operators
    consume.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    bounds = np.linspace(0, len(relation), num_partitions + 1).astype(int)
    return [
        relation.slice(bounds[i], bounds[i + 1], f"{relation.name}/p{i}")
        for i in range(num_partitions)
    ]


#: Backwards-compatible private alias (pre-pipeline callers).
_split = split_relation


@dataclass(frozen=True)
class ScanWorkload:
    """Scan for one key over a partitioned relation."""

    partitions: List[Relation]
    search_key: int
    key_space_bits: int

    @property
    def num_partitions(self) -> int:
        """Memory partitions this workload was generated across."""
        return len(self.partitions)

    @cached_property
    def total_tuples(self) -> int:
        """Total tuples, summed once and cached (partition lists are
        frozen with the dataclass, so the sum can never go stale)."""
        return sum(len(p) for p in self.partitions)

    @cached_property
    def flat(self) -> "SegmentedColumns":
        """Zero-copy SoA view over all partitions (one segment each).

        Workload partitions come from :func:`split_relation`, i.e. they
        are consecutive slices of one backing array, so flattening them
        copies nothing; segmented operators consume this view instead of
        looping the partition list.
        """
        return _flat_columns(self.partitions)


@dataclass(frozen=True)
class SortWorkload:
    """Sort a partitioned relation by key."""

    partitions: List[Relation]
    key_space_bits: int

    @property
    def num_partitions(self) -> int:
        """Memory partitions this workload was generated across."""
        return len(self.partitions)

    @cached_property
    def total_tuples(self) -> int:
        """Total tuples, summed once and cached (partition lists are
        frozen with the dataclass, so the sum can never go stale)."""
        return sum(len(p) for p in self.partitions)

    @cached_property
    def flat(self) -> "SegmentedColumns":
        """Zero-copy SoA view over all partitions (one segment each)."""
        return _flat_columns(self.partitions)


@dataclass(frozen=True)
class GroupByWorkload:
    """Group a relation by key and aggregate payloads.

    ``avg_group_size`` tuples share each key on average (the paper's
    modeled query has groups of four).
    """

    partitions: List[Relation]
    key_space_bits: int
    avg_group_size: float

    @property
    def num_partitions(self) -> int:
        """Memory partitions this workload was generated across."""
        return len(self.partitions)

    @cached_property
    def total_tuples(self) -> int:
        """Total tuples, summed once and cached (partition lists are
        frozen with the dataclass, so the sum can never go stale)."""
        return sum(len(p) for p in self.partitions)

    @cached_property
    def flat(self) -> "SegmentedColumns":
        """Zero-copy SoA view over all partitions (one segment each)."""
        return _flat_columns(self.partitions)


@dataclass(frozen=True)
class JoinWorkload:
    """R join S under a foreign-key constraint."""

    r_partitions: List[Relation]
    s_partitions: List[Relation]
    key_space_bits: int

    @property
    def num_partitions(self) -> int:
        """Memory partitions this workload was generated across (both
        relations are split the same way)."""
        return len(self.r_partitions)

    @cached_property
    def total_tuples(self) -> int:
        """Cached: see the note on :attr:`ScanWorkload.total_tuples`."""
        return self.n_r + self.n_s

    @cached_property
    def r_flat(self) -> "SegmentedColumns":
        """Zero-copy SoA view over R's partitions (one segment each)."""
        return _flat_columns(self.r_partitions)

    @cached_property
    def s_flat(self) -> "SegmentedColumns":
        """Zero-copy SoA view over S's partitions (one segment each)."""
        return _flat_columns(self.s_partitions)

    @cached_property
    def n_r(self) -> int:
        return sum(len(p) for p in self.r_partitions)

    @cached_property
    def n_s(self) -> int:
        return sum(len(p) for p in self.s_partitions)


def make_scan_workload(
    n: int,
    num_partitions: int = 64,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> ScanWorkload:
    """Uniform relation plus a key known to occur at least once."""
    if n < 1:
        raise ValueError("need at least one tuple")
    rng = np.random.default_rng(seed)
    keys = _uniform_keys(rng, n, key_space_bits)
    relation = Relation.from_arrays(keys, _payloads(rng, n), "scan_input")
    search_key = int(keys[rng.integers(0, n)])
    return ScanWorkload(
        partitions=_split(relation, num_partitions),
        search_key=search_key,
        key_space_bits=key_space_bits,
    )


def make_sort_workload(
    n: int,
    num_partitions: int = 64,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> SortWorkload:
    rng = np.random.default_rng(seed)
    relation = Relation.from_arrays(
        _uniform_keys(rng, n, key_space_bits), _payloads(rng, n), "sort_input"
    )
    return SortWorkload(
        partitions=_split(relation, num_partitions), key_space_bits=key_space_bits
    )


def make_groupby_workload(
    n: int,
    num_partitions: int = 64,
    avg_group_size: float = 4.0,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> GroupByWorkload:
    """Uniform keys drawn from ``n / avg_group_size`` distinct values."""
    if avg_group_size < 1:
        raise ValueError("average group size must be >= 1")
    rng = np.random.default_rng(seed)
    num_groups = max(1, int(round(n / avg_group_size)))
    group_keys = np.unique(_uniform_keys(rng, num_groups, key_space_bits))
    keys = rng.choice(group_keys, size=n).astype(np.uint64)
    relation = Relation.from_arrays(keys, _payloads(rng, n), "groupby_input")
    return GroupByWorkload(
        partitions=_split(relation, num_partitions),
        key_space_bits=key_space_bits,
        avg_group_size=avg_group_size,
    )


def make_join_workload(
    n_r: int,
    n_s: int,
    num_partitions: int = 64,
    seed: int = 0,
    key_space_bits: int = DEFAULT_KEY_SPACE_BITS,
) -> JoinWorkload:
    """Foreign-key join inputs: R has unique keys, S draws from R's keys."""
    if n_r < 1 or n_s < 1:
        raise ValueError("both relations need at least one tuple")
    rng = np.random.default_rng(seed)
    # Draw extra candidates to survive deduplication, then trim.
    candidates = np.unique(_uniform_keys(rng, n_r * 2 + 16, key_space_bits))
    if len(candidates) < n_r:
        raise ValueError("key space too small for the requested unique keys")
    r_keys = rng.permutation(candidates)[:n_r].astype(np.uint64)
    s_keys = rng.choice(r_keys, size=n_s).astype(np.uint64)
    r_rel = Relation.from_arrays(r_keys, _payloads(rng, n_r), "R")
    s_rel = Relation.from_arrays(s_keys, _payloads(rng, n_s), "S")
    return JoinWorkload(
        r_partitions=_split(r_rel, num_partitions),
        s_partitions=_split(s_rel, num_partitions),
        key_space_bits=key_space_bits,
    )
