"""In-memory columnar data model and workload generators.

All evaluation uses 16-byte tuples -- an 8-byte integer key plus an
8-byte integer payload -- "representing an in-memory columnar database"
(paper section 6), with uniformly distributed keys, and a foreign-key
relationship between join relations (every S tuple matches exactly one R
tuple).
"""

from repro.analytics.hashing import (
    bucket_of_high_bits,
    bucket_of_low_bits,
    hash_table_slot,
    multiplicative_hash,
)
from repro.analytics.histogram import build_histogram, prefix_sum
from repro.analytics.skew import (
    make_skewed_groupby_workload,
    make_skewed_sort_workload,
    partition_imbalance,
    zipf_keys,
)
from repro.analytics.tuples import KEY_B, PAYLOAD_B, TUPLE_B, Relation
from repro.analytics.workload import (
    GroupByWorkload,
    JoinWorkload,
    ScanWorkload,
    SortWorkload,
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
    split_relation,
)

__all__ = [
    "GroupByWorkload",
    "JoinWorkload",
    "KEY_B",
    "PAYLOAD_B",
    "Relation",
    "ScanWorkload",
    "SortWorkload",
    "TUPLE_B",
    "bucket_of_high_bits",
    "bucket_of_low_bits",
    "build_histogram",
    "hash_table_slot",
    "make_groupby_workload",
    "make_join_workload",
    "make_scan_workload",
    "make_skewed_groupby_workload",
    "make_skewed_sort_workload",
    "make_sort_workload",
    "multiplicative_hash",
    "partition_imbalance",
    "prefix_sum",
    "split_relation",
    "zipf_keys",
]
