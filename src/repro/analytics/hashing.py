"""Key hashing used by the operators.

Three functions matching the paper's descriptions (section 6):

- **Low-order-bit bucketing** for Join/Group-by partitioning ("the hash
  function uses a number of the key's bits to determine each tuple's
  destination partition"; the CPU code uses 16 low bits, the NMP systems
  six bits matching the 64 vaults).
- **High-order-bit bucketing** for Sort partitioning, producing range
  partitions whose keys are strictly ordered across partitions.
- **Multiplicative hashing** for the probe phase's hash-table build.
"""

from __future__ import annotations

import numpy as np

#: Knuth's multiplicative constant (golden-ratio) for 64-bit keys.
_MULT_CONST = np.uint64(0x9E3779B97F4A7C15)
_KEY_BITS = 64


def bucket_of_low_bits(keys: np.ndarray, num_bits: int) -> np.ndarray:
    """Partition id from the ``num_bits`` low-order key bits."""
    if not 1 <= num_bits < _KEY_BITS:
        raise ValueError("num_bits must be in [1, 63]")
    keys = np.asarray(keys, dtype=np.uint64)
    mask = np.uint64((1 << num_bits) - 1)
    return (keys & mask).astype(np.int64)


def bucket_of_high_bits(
    keys: np.ndarray, num_bits: int, key_space_bits: int = _KEY_BITS
) -> np.ndarray:
    """Range-partition id from the high-order bits of the key.

    ``key_space_bits`` bounds the keys actually used (workloads draw keys
    below ``2**key_space_bits``); taking the top ``num_bits`` of that
    space yields partitions holding strictly disjoint key ranges -- the
    property the Sort operator's partitioning needs.
    """
    if not 1 <= num_bits <= key_space_bits <= _KEY_BITS:
        raise ValueError("need 1 <= num_bits <= key_space_bits <= 64")
    keys = np.asarray(keys, dtype=np.uint64)
    shift = np.uint64(key_space_bits - num_bits)
    return (keys >> shift).astype(np.int64)


def multiplicative_hash(keys: np.ndarray, num_bits: int) -> np.ndarray:
    """Knuth multiplicative hash to ``num_bits``-bit slot indices."""
    if not 1 <= num_bits < _KEY_BITS:
        raise ValueError("num_bits must be in [1, 63]")
    keys = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = keys * _MULT_CONST
    shift = np.uint64(_KEY_BITS - num_bits)
    return (mixed >> shift).astype(np.int64)


def hash_table_slot(keys: np.ndarray, table_size: int) -> np.ndarray:
    """Slot index in a power-of-two hash table."""
    if table_size <= 0 or table_size & (table_size - 1):
        raise ValueError("table_size must be a positive power of two")
    num_bits = table_size.bit_length() - 1
    if num_bits == 0:
        return np.zeros(len(np.atleast_1d(keys)), dtype=np.int64)
    return multiplicative_hash(keys, num_bits)
