"""Fault sweep: shuffle resilience under adversarial delivery schedules.

Sweeps the fault intensity (scaling straggler/drop/duplicate/timeout
probabilities together) over a skewed workload and compares the naive
one-round partitioner against the skew-aware two-round protocol.  For
every point the retry/backoff protocol must leave the functional
partitions byte-identical to the fault-free run -- the sweep checks the
digests and reports the price paid: retries, duplicates discarded,
destinations degraded off the batched fast path, and the straggler
critical-path share.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, List

from repro.analytics.skew import make_skewed_groupby_workload
from repro.analytics.tuples import Relation
from repro.api import format_table
from repro.faults.plan import NULL_FAULTS, FaultSpec
from repro.operators.base import OperatorVariant
from repro.operators.partition import PartitionOutcome, run_partitioning
from repro.operators.skew import run_partitioning_skew_aware

#: Fault intensity levels; each scales every fault probability together
#: (1.0 = the full adversarial mix below).
INTENSITIES = (0.0, 0.1, 0.25, 0.5, 1.0)

#: The full-intensity fault mix (scaled by each sweep level).
FULL_MIX = {
    "straggler_prob": 0.3,
    "drop_prob": 0.4,
    "duplicate_prob": 0.2,
    "timeout_prob": 0.25,
}


def fault_spec(intensity: float, seed: int) -> FaultSpec:
    """The swept :class:`FaultSpec` at one intensity level."""
    if intensity <= 0.0:
        return NULL_FAULTS
    return FaultSpec(
        seed=seed,
        **{name: prob * intensity for name, prob in FULL_MIX.items()},
    )


def partitions_digest(partitions: List[Relation]) -> str:
    """Order-sensitive digest of the materialized partition bytes."""
    h = hashlib.sha256()
    for part in partitions:
        h.update(part.name.encode("utf-8"))
        h.update(part.data.tobytes())
    return h.hexdigest()


def _point(outcome: PartitionOutcome, baseline_digest: str) -> Dict[str, object]:
    digest = partitions_digest(outcome.partitions)
    res = outcome.resilience
    return {
        "identical": digest == baseline_digest,
        "retries": res.retries if res else 0,
        "duplicates_discarded": res.duplicates_discarded if res else 0,
        "degraded_destinations": res.degraded_destinations if res else 0,
        "timeout_rounds": res.timeout_rounds if res else 0,
        "overhead_b": float(res.overhead_b) if res else 0.0,
        "straggler_share": float(res.straggler_share) if res else 0.0,
    }


def run(
    n: int = 8000,
    num_partitions: int = 16,
    alpha: float = 1.2,
    capacity_factor: float = 1.5,
    seed: int = 21,
    fault_seed: int = 7,
) -> Dict[str, object]:
    variant = OperatorVariant(
        radix_bits=8, probe_algorithm="sort", permutable=True, simd=True,
        num_partitions=num_partitions,
    )
    workload = make_skewed_groupby_workload(
        n, num_partitions, alpha=alpha, num_distinct=max(256, n // 4), seed=seed
    )

    def naive(v: OperatorVariant) -> PartitionOutcome:
        return run_partitioning(
            workload.partitions, v, "low", workload.key_space_bits
        )

    def skew_aware(v: OperatorVariant) -> PartitionOutcome:
        outcome, _ = run_partitioning_skew_aware(
            workload.partitions, v, workload.key_space_bits,
            capacity_factor=capacity_factor, seed=seed,
        )
        return outcome

    partitioners = (("naive", naive), ("skew-aware", skew_aware))
    baselines = {
        name: partitions_digest(runner(variant).partitions)
        for name, runner in partitioners
    }

    rows = []
    points: Dict[str, Dict[str, object]] = {}
    for intensity in INTENSITIES:
        spec = fault_spec(intensity, fault_seed)
        for name, runner in partitioners:
            outcome = runner(replace(variant, faults=spec))
            point = _point(outcome, baselines[name])
            points[f"{intensity:g}:{name}"] = point
            rows.append(
                [
                    f"{intensity:.2f}",
                    name,
                    str(point["retries"]),
                    str(point["duplicates_discarded"]),
                    str(point["degraded_destinations"]),
                    f"{point['straggler_share']:.3f}",
                    "yes" if point["identical"] else "NO",
                ]
            )
    return {
        "points": points,
        "alpha": alpha,
        "table": format_table(
            ["Intensity", "Partitioner", "Retries", "Dups discarded",
             "Degraded dests", "Straggler share", "Output identical"],
            rows,
        ),
    }


def main() -> None:
    out = run()
    print("Shuffle resilience under seeded fault schedules "
          f"(Zipf alpha {out['alpha']})\n")
    print(out["table"])


if __name__ == "__main__":
    main()
