"""Table 1: characterization of Spark operators by basic data operator.

The table is a taxonomy; the experiment reproduces it as data and
additionally *verifies* the mapping is implementable: every basic
operator the table references exists in :mod:`repro.operators` and
executes correctly on a workload (checked against its oracle).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.operators import OperatorVariant, run_groupby, run_join, run_scan, run_sort
from repro.operators.oracle import oracle_groupby, oracle_join, oracle_scan, oracle_sort
from repro.api import format_table

#: Table 1, verbatim.
SPARK_OPERATOR_MAP: Dict[str, List[str]] = {
    "scan": ["Filter", "Union", "LookupKey", "Map", "FlatMap", "MapValues"],
    "groupby": [
        "GroupByKey",
        "Cogroup",
        "ReduceByKey",
        "Reduce",
        "CountByKey",
        "AggregateByKey",
    ],
    "join": ["Join"],
    "sort": ["SortByKey"],
}


def _default_variant(num_partitions: int) -> OperatorVariant:
    return OperatorVariant(
        radix_bits=6,
        probe_algorithm="sort",
        permutable=True,
        simd=True,
        num_partitions=num_partitions,
    )


def verify_basic_operators(num_partitions: int = 8, seed: int = 5) -> Dict[str, bool]:
    """Run each basic operator and compare against its oracle."""
    variant = _default_variant(num_partitions)
    results = {}

    scan_w = make_scan_workload(3000, num_partitions, seed)
    scan_r = run_scan(scan_w, variant)
    results["scan"] = (scan_r.output.matches, scan_r.output.payload_sum) == oracle_scan(
        scan_w
    )

    join_w = make_join_workload(1500, 6000, num_partitions, seed)
    join_r = run_join(join_w, variant)
    results["join"] = (join_r.output.matches, join_r.output.checksum) == oracle_join(
        join_w
    )

    group_w = make_groupby_workload(4000, num_partitions, seed=seed)
    group_r = run_groupby(group_w, variant)
    oracle_groups = oracle_groupby(group_w)
    results["groupby"] = set(group_r.output.groups) == set(oracle_groups) and all(
        abs(group_r.output.groups[k]["sum"] - oracle_groups[k]["sum"])
        <= 1e-6 * max(1.0, abs(oracle_groups[k]["sum"]))
        for k in oracle_groups
    )

    sort_w = make_sort_workload(4000, num_partitions, seed)
    sort_r = run_sort(sort_w, variant)
    results["sort"] = sort_r.output.is_sorted() and sort_r.output.multiset_equal(
        oracle_sort(sort_w)
    )
    return results


def run(num_partitions: int = 8, seed: int = 5) -> Dict[str, object]:
    """Reproduce Table 1 and verify each basic operator."""
    verified = verify_basic_operators(num_partitions, seed)
    rows = [
        [basic, ", ".join(spark_ops), "ok" if verified[basic] else "FAIL"]
        for basic, spark_ops in SPARK_OPERATOR_MAP.items()
    ]
    return {
        "map": SPARK_OPERATOR_MAP,
        "verified": verified,
        "table": format_table(["Basic operator", "Spark operators", "Verified"], rows),
    }


def main() -> None:
    print("Table 1: characterization of Spark operators\n")
    print(run()["table"])


if __name__ == "__main__":
    main()
