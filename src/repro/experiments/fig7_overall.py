"""Figure 7: overall (partition + probe) speedup over the CPU baseline.

The paper combines each NMP configuration's partitioning phase with the
*best-performing* probe algorithm, NMP-rand ("For NMP and NMP-perm, we
combine their corresponding partition phase with the best performing
probe algorithm, NMP-rand").  Series: NMP, NMP-perm, Mondrian.

Paper headline: Mondrian peaks at 49x over the CPU and 5x over the best
NMP baseline (NMP-perm partitioning + NMP-rand probe).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.api import Scenario, format_table
from repro.experiments.common import MODEL_SCALE, OPERATORS

SERIES = ("nmp", "nmp-perm", "mondrian")


def _overall_time(result: Callable, series: str, operator: str) -> float:
    """Composite runtime per the paper's figure 7 rules."""
    if series == "mondrian":
        return result("mondrian", operator).runtime_s
    probe = result("nmp-rand", operator).probe_time_s
    if series == "nmp":
        partition = result("nmp-rand", operator).partition_time_s
    elif series == "nmp-perm":
        partition = result("nmp-perm", operator).partition_time_s
    else:
        raise ValueError(f"unknown series {series!r}")
    return partition + probe


def run(scale: float = MODEL_SCALE, seed: int = 17) -> Dict[str, object]:
    def result(system: str, operator: str):
        return Scenario(system, operator, model_scale=scale, seed=seed).result()

    speedups: Dict[str, Dict[str, float]] = {}
    for operator in OPERATORS:
        cpu_time = result("cpu", operator).runtime_s
        speedups[operator] = {
            series: cpu_time / _overall_time(result, series, operator)
            for series in SERIES
        }
    rows = [
        [operator] + [f"{speedups[operator][s]:.1f}x" for s in SERIES]
        for operator in OPERATORS
    ]
    peak = max(speedups[op]["mondrian"] for op in OPERATORS)
    best_nmp_gap = max(
        speedups[op]["mondrian"] / speedups[op]["nmp-perm"] for op in OPERATORS
    )
    return {
        "speedups": speedups,
        "mondrian_peak": peak,
        "mondrian_vs_best_nmp_peak": best_nmp_gap,
        "table": format_table(["Operator", "NMP", "NMP-perm", "Mondrian"], rows),
    }


def main() -> None:
    out = run()
    print("Figure 7: overall speedup vs CPU\n")
    print(out["table"])
    print(
        f"\nMondrian peak: {out['mondrian_peak']:.1f}x (paper: up to 49x); "
        f"vs best NMP: {out['mondrian_vs_best_nmp_peak']:.1f}x (paper: up to 5x)"
    )


if __name__ == "__main__":
    main()
