"""Figure 6: probe-phase speedup over the CPU baseline (log scale).

Series: NMP-rand, NMP-seq, Mondrian over Scan, Sort, Group by, Join.

Paper shape to reproduce:

- Scan: NMP-rand == NMP-seq (same code), ~2.4x over CPU; Mondrian ~2.6x
  over the NMP baselines.
- Sort: like Scan with larger gaps (both NMP systems run mergesort).
- Group by / Join: NMP-rand *outperforms* NMP-seq -- sequential accesses
  do not pay for the extra log n passes on scalar hardware -- while
  Mondrian's wide SIMD absorbs the complexity bump and wins overall
  (paper: 22x over CPU).
"""

from __future__ import annotations

from typing import Dict

from repro.api import Scenario, format_table
from repro.experiments.common import MODEL_SCALE, OPERATORS
from repro.perf.result import probe_speedup

SYSTEMS = ("nmp-rand", "nmp-seq", "mondrian")

#: Approximate values read off the paper's log-scale figure, for
#: side-by-side reporting (not asserted numerically).
PAPER_APPROX = {
    ("scan", "nmp-rand"): 2.4,
    ("scan", "nmp-seq"): 2.4,
    ("scan", "mondrian"): 6.2,
    ("sort", "nmp-rand"): 3.5,
    ("sort", "nmp-seq"): 3.5,
    ("sort", "mondrian"): 10.0,
    ("groupby", "nmp-rand"): 4.5,
    ("groupby", "nmp-seq"): 2.5,
    ("groupby", "mondrian"): 22.0,
    ("join", "nmp-rand"): 4.4,
    ("join", "nmp-seq"): 2.5,
    ("join", "mondrian"): 22.0,
}


def run(scale: float = MODEL_SCALE, seed: int = 17) -> Dict[str, object]:
    def result(system: str, operator: str):
        return Scenario(system, operator, model_scale=scale, seed=seed).result()

    speedups: Dict[str, Dict[str, float]] = {}
    for operator in OPERATORS:
        cpu = result("cpu", operator)
        speedups[operator] = {
            system: probe_speedup(cpu, result(system, operator))
            for system in SYSTEMS
        }
    rows = []
    for operator in OPERATORS:
        for system in SYSTEMS:
            rows.append(
                [
                    operator,
                    system,
                    f"{speedups[operator][system]:.1f}x",
                    f"~{PAPER_APPROX[(operator, system)]:.1f}x",
                ]
            )
    return {
        "speedups": speedups,
        "paper_approx": PAPER_APPROX,
        "table": format_table(["Operator", "System", "Measured", "Paper (approx)"], rows),
    }


def main() -> None:
    print("Figure 6: probe speedup vs CPU\n")
    print(run()["table"])


if __name__ == "__main__":
    main()
