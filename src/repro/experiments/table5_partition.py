"""Table 5: partitioning-phase speedup over the CPU baseline.

Paper values: NMP 58x, NMP-perm 98x, Mondrian-noperm 142x, Mondrian
273x.  The partitioning phase is near-identical across operators (the
paper shows Join's); we measure Join's partitioning phases.

Expected shape: strictly increasing NMP < NMP-perm < Mondrian-noperm <
Mondrian, with NMP-perm/NMP around 1.7x and Mondrian/Mondrian-noperm
around 1.9x (the paper's step ratios).
"""

from __future__ import annotations

from typing import Dict

from repro.api import Scenario, format_table
from repro.experiments.common import MODEL_SCALE
from repro.perf.result import partition_speedup

PAPER_SPEEDUPS = {
    "nmp-rand": 58.0,
    "nmp-perm": 98.0,
    "mondrian-noperm": 142.0,
    "mondrian": 273.0,
}

#: Display aliases: Table 5 calls the nmp-rand configuration "NMP"
#: because partitioning does not depend on the probe algorithm.
DISPLAY = {
    "nmp-rand": "NMP",
    "nmp-perm": "NMP-perm",
    "mondrian-noperm": "Mondrian-noperm",
    "mondrian": "Mondrian",
}


def run(scale: float = MODEL_SCALE, seed: int = 17) -> Dict[str, object]:
    def result(system: str):
        return Scenario(system, "join", model_scale=scale, seed=seed).result()

    cpu = result("cpu")
    speedups = {
        name: partition_speedup(cpu, result(name)) for name in PAPER_SPEEDUPS
    }
    rows = [
        [DISPLAY[name], f"{speedups[name]:.1f}x", f"{PAPER_SPEEDUPS[name]:.0f}x"]
        for name in PAPER_SPEEDUPS
    ]
    return {
        "speedups": speedups,
        "paper": PAPER_SPEEDUPS,
        "cpu_partition_s": cpu.partition_time_s,
        "table": format_table(["System", "Measured", "Paper"], rows),
    }


def main() -> None:
    print("Table 5: partition speedup vs CPU\n")
    print(run()["table"])


if __name__ == "__main__":
    main()
