"""Table 2: phases of the basic data operators.

Reproduced *empirically*: each operator is executed in its Mondrian and
CPU variants and the phase records it emitted are classified into
Table 2's columns (histogram build, data distribution, hash-table
build, operation).  The assertions the benchmarks make: Scan has no
partitioning phases; Join/Group by/Sort all have histogram + distribute;
the hash variants add a probe-side hash step while sort variants do not.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api import format_table
from repro.experiments.common import make_workload
from repro.operators import OPERATOR_RUNNERS, OperatorVariant
from repro.operators.base import PHASE_DISTRIBUTE, PHASE_HISTOGRAM, PHASE_PROBE


def _variant(probe: str, num_partitions: int) -> OperatorVariant:
    return OperatorVariant(
        radix_bits=6,
        probe_algorithm=probe,
        permutable=False,
        simd=False,
        num_partitions=num_partitions,
        local_sort="mergesort",
    )


def phase_structure(operator: str, probe: str, num_partitions: int = 8) -> Dict[str, List[str]]:
    """Names of the phases one operator/variant executes, by category."""
    workload = make_workload(operator, seed=11, num_partitions=num_partitions)
    run = OPERATOR_RUNNERS[operator](workload, _variant(probe, num_partitions))
    structure: Dict[str, List[str]] = {
        PHASE_HISTOGRAM: [],
        PHASE_DISTRIBUTE: [],
        PHASE_PROBE: [],
    }
    for phase in run.phases:
        structure[phase.category].append(phase.name)
    return structure


def run(num_partitions: int = 8) -> Dict[str, object]:
    """Reproduce Table 2 from the executed phase records."""
    rows = []
    details = {}
    for operator in ("scan", "join", "groupby", "sort"):
        probe = "hash" if operator in ("join", "groupby") else "sort"
        structure = phase_structure(operator, probe, num_partitions)
        details[operator] = structure
        rows.append(
            [
                operator,
                ", ".join(structure[PHASE_HISTOGRAM]) or "-",
                ", ".join(structure[PHASE_DISTRIBUTE]) or "-",
                ", ".join(structure[PHASE_PROBE]) or "-",
            ]
        )
    table = format_table(
        ["Operator", "Histogram build", "Data distribution", "Probe"], rows
    )
    return {"structure": details, "table": table}


def main() -> None:
    print("Table 2: phases of basic data operators (measured)\n")
    print(run()["table"])


if __name__ == "__main__":
    main()
