"""Shared experiment plumbing: default workloads, scale, result caching.

Two dataset sizes are in play everywhere:

- **Functional size** (``FUNCTIONAL_N``): the tuples Python actually
  moves through partitioning and probing -- kept in the tens of
  thousands so the whole suite runs in seconds and outputs stay
  exactly verifiable.
- **Modeled size** = functional size x ``MODEL_SCALE``: the dataset the
  ``PhaseCost`` records *describe*.  Every operator runner takes the
  factor as ``model_scale`` (machines pass it as ``scale_factor``) and
  emits costs for the larger dataset: per-tuple-linear quantities scale
  exactly, and size-dependent structure -- mergesort pass counts,
  hash-table region sizes -- is recomputed at modeled size, not scaled.

The default ``MODEL_SCALE`` of 2000x turns the ~20k-tuple functional
runs into a ~40M-tuple (~0.6 GB) modeled dataset: a mid-size slice of
the paper's 32 GB machine (512 MB vaults filled with 16 B tuples) that
keeps per-partition working sets far beyond every cache level, as in the
paper.  ``run_all --fast`` and the test suite use 500x, which preserves
all qualitative orderings.

**Shared experiment runtime.**  Workload generation and functional
operator runs are memoized in module-level, *content-keyed* caches: the
key spells out everything that determines the result bytes (operator,
functional tuple count, seed, partition count; plus system preset and
model scale for results), so fig6/fig7/fig8/fig9/table5 -- which all
evaluate overlapping (system, operator) pairs -- compute each pair once
per process instead of once per figure.  ``run_all --no-cache`` (or
:func:`set_cache_enabled`) restores the recompute-everything behaviour,
and ``run_all --jobs N`` runs experiment sections in a process pool
(each worker holds its own cache).

The caches are addressed either by preset name *or* by any
:class:`~repro.api.spec.SystemSpec`-like object exposing ``cache_key``
and ``to_config()`` -- which is how the scenario API (:mod:`repro.api`)
evaluates hardware points the paper never measured through the same
memoization.

:class:`ResultMatrix` is retained as a deprecated shim over the
scenario API; :func:`format_table` forwards to its new home in
:mod:`repro.api.results`.  New code should use
:class:`repro.api.Scenario` / :class:`repro.api.Sweep` directly.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.config.system import EVALUATED_PRESETS
from repro.perf.result import SystemResult
from repro.systems import build_system

#: Functional dataset sizes (tuples actually moved in Python).
FUNCTIONAL_N = {
    "scan": 20_000,
    "sort": 16_000,
    "groupby": 16_000,
    "join": (4_000, 16_000),
}

#: Cost-model scale: functional tuples x MODEL_SCALE = modeled tuples.
#: 2000x turns the 20k-tuple functional runs into a ~40M-tuple modeled
#: dataset (~0.6 GB of 16 B tuples), a mid-size slice of the paper's
#: 32 GB machine that keeps per-partition working sets far beyond every
#: cache level, as in the paper.
MODEL_SCALE = 2000.0

#: Memory partitions = vaults in the paper's machine.
NUM_PARTITIONS = 64

#: All evaluated configurations, evaluation order (one shared constant:
#: ``repro.config.system.EVALUATED_PRESETS``).
ALL_SYSTEMS = EVALUATED_PRESETS

OPERATORS = ("scan", "sort", "groupby", "join")


# ---------------------------------------------------------------------------
# Shared, content-keyed caches (per process).
# ---------------------------------------------------------------------------

_WORKLOAD_CACHE: Dict[Tuple, Any] = {}
_RESULT_CACHE: Dict[Tuple, SystemResult] = {}
_CACHE_ENABLED = True
_CACHE_STATS = {"hits": 0, "misses": 0}


def set_cache_enabled(enabled: bool) -> bool:
    """Toggle the shared caches; returns the previous setting."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def cache_enabled() -> bool:
    return _CACHE_ENABLED


def clear_caches() -> None:
    """Drop all memoized workloads, results and machine singletons."""
    from repro.systems.machine import clear_machine_cache

    _WORKLOAD_CACHE.clear()
    _RESULT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0
    _spec_machine.cache_clear()
    clear_machine_cache()


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters across both caches (for reports and tests)."""
    return dict(_CACHE_STATS)


def _cache_get(cache: Dict[Tuple, Any], key: Tuple, build):
    if not _CACHE_ENABLED:
        return build()
    if key in cache:
        _CACHE_STATS["hits"] += 1
    else:
        _CACHE_STATS["misses"] += 1
        cache[key] = build()
    return cache[key]


def _build_workload(operator: str, seed: int, num_partitions: int):
    if operator == "scan":
        return make_scan_workload(FUNCTIONAL_N["scan"], num_partitions, seed)
    if operator == "sort":
        return make_sort_workload(FUNCTIONAL_N["sort"], num_partitions, seed)
    if operator == "groupby":
        return make_groupby_workload(FUNCTIONAL_N["groupby"], num_partitions, seed=seed)
    if operator == "join":
        n_r, n_s = FUNCTIONAL_N["join"]
        return make_join_workload(n_r, n_s, num_partitions, seed)
    raise ValueError(f"unknown operator {operator!r}")


def make_workload(operator: str, seed: int = 17, num_partitions: int = NUM_PARTITIONS):
    """Default workload for one operator, memoized by content key.

    The key covers everything the generated bytes depend on -- operator,
    functional size, seed, partition count -- so every experiment module
    asking for the same relation shares one materialization.  Workloads
    are frozen dataclasses and operators never mutate their inputs
    (property-tested), which is what makes the sharing sound.
    """
    if operator not in FUNCTIONAL_N:
        raise ValueError(f"unknown operator {operator!r}")
    key = ("workload", operator, FUNCTIONAL_N[operator], seed, num_partitions)
    return _cache_get(
        _WORKLOAD_CACHE, key, lambda: _build_workload(operator, seed, num_partitions)
    )


@functools.lru_cache(maxsize=None)
def _spec_machine(spec) -> Any:
    """Machine singleton per custom (non-preset) system spec."""
    from repro.systems.machine import Machine

    return Machine(spec.to_config())


def machine_for(system) -> Any:
    """The machine singleton for a preset name or a SystemSpec.

    Preset names (and specs that add nothing to their base preset) share
    the per-preset singletons of :func:`repro.systems.build_system`;
    custom specs get their own memoized machine.  Specs are duck-typed:
    anything hashable with ``to_config()`` (plus optionally
    ``is_preset``/``base``) works.
    """
    if isinstance(system, str):
        return build_system(system)
    if getattr(system, "is_preset", False):
        return build_system(system.base)
    return _spec_machine(system)


def _system_token(system) -> Any:
    """The hashable cache-key component naming a system.

    Preset strings key exactly as they always have (so scenario-API
    callers share entries with the figure modules); specs key by their
    full content.
    """
    return system if isinstance(system, str) else system.cache_key


def run_cached_result(
    system: Any,
    operator: str,
    scale: float,
    seed: int = 17,
    num_partitions: int = NUM_PARTITIONS,
    workload: Any = None,
) -> SystemResult:
    """Functionally run + cost one (system, operator) pair, memoized.

    ``system`` is a preset name or a SystemSpec-like object (see
    :func:`machine_for`).  The content key adds the system token and the
    model scale to the workload key; results are immutable to their
    consumers (the figure modules only read them), so sharing one
    :class:`~repro.perf.result.SystemResult` across figures is safe.

    ``workload`` lets a caller that already holds the (seed,
    num_partitions) workload -- e.g. a :class:`ResultMatrix` running
    with the shared caches disabled -- supply it instead of having
    :func:`make_workload` rebuild it per system.
    """
    key = (
        "result",
        _system_token(system),
        operator,
        FUNCTIONAL_N.get(operator),
        float(scale),
        seed,
        num_partitions,
    )

    def build() -> SystemResult:
        machine = machine_for(system)
        return machine.run_operator(
            operator,
            workload if workload is not None
            else make_workload(operator, seed, num_partitions),
            scale_factor=scale,
        )

    return _cache_get(_RESULT_CACHE, key, build)


class ResultMatrix:
    """Deprecated: runs and caches (system, operator) -> SystemResult.

    The pre-scenario-API front door, retained as a thin shim so old
    call sites keep working.  New code should use
    :class:`repro.api.Scenario` (one point) or :class:`repro.api.Sweep`
    (a grid); both share the same content-keyed caches, so mixing old
    and new callers costs nothing.
    """

    def __init__(
        self,
        systems: Iterable[str] = ALL_SYSTEMS,
        operators: Iterable[str] = OPERATORS,
        scale: float = MODEL_SCALE,
        seed: int = 17,
        num_partitions: int = NUM_PARTITIONS,
    ) -> None:
        warnings.warn(
            "ResultMatrix is deprecated; use repro.api.Scenario / "
            "repro.api.Sweep instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._systems = tuple(systems)
        self._operators = tuple(operators)
        self._scale = scale
        self._seed = seed
        self._num_partitions = num_partitions
        self._cache: Dict[tuple, SystemResult] = {}
        self._workloads: Dict[str, Any] = {}

    @property
    def systems(self) -> tuple:
        return self._systems

    @property
    def operators(self) -> tuple:
        return self._operators

    def workload(self, operator: str):
        if operator not in self._workloads:
            self._workloads[operator] = make_workload(
                operator, self._seed, self._num_partitions
            )
        return self._workloads[operator]

    def result(self, system: str, operator: str) -> SystemResult:
        key = (system, operator)
        if key not in self._cache:
            self._cache[key] = run_cached_result(
                system,
                operator,
                self._scale,
                self._seed,
                self._num_partitions,
                workload=self.workload(operator),
            )
        return self._cache[key]

    def all_results(self) -> Dict[tuple, SystemResult]:
        for system in self._systems:
            for operator in self._operators:
                self.result(system, operator)
        return dict(self._cache)


def format_table(headers: List[str], rows: List[List[Any]]) -> str:
    """Fixed-width ASCII table for experiment output.

    Back-compat forwarder: the implementation now lives with the
    scenario API's result container (:mod:`repro.api.results`).  The
    import is deferred so ``repro.api`` (which imports this module) can
    finish initializing first.
    """
    from repro.api.results import format_table as _format_table

    return _format_table(headers, rows)
