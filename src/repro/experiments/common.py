"""Shared experiment plumbing: default workloads, scale, result caching.

Two dataset sizes are in play everywhere:

- **Functional size** (``FUNCTIONAL_N``): the tuples Python actually
  moves through partitioning and probing -- kept in the tens of
  thousands so the whole suite runs in seconds and outputs stay
  exactly verifiable.
- **Modeled size** = functional size x ``MODEL_SCALE``: the dataset the
  ``PhaseCost`` records *describe*.  Every operator runner takes the
  factor as ``model_scale`` (machines pass it as ``scale_factor``) and
  emits costs for the larger dataset: per-tuple-linear quantities scale
  exactly, and size-dependent structure -- mergesort pass counts,
  hash-table region sizes -- is recomputed at modeled size, not scaled.

The default ``MODEL_SCALE`` of 2000x turns the ~20k-tuple functional
runs into a ~40M-tuple (~0.6 GB) modeled dataset: a mid-size slice of
the paper's 32 GB machine (512 MB vaults filled with 16 B tuples) that
keeps per-partition working sets far beyond every cache level, as in the
paper.  ``run_all --fast`` and the test suite use 500x, which preserves
all qualitative orderings.

**Shared experiment runtime.**  Workload generation and functional
operator runs are memoized in module-level, *content-keyed* caches: the
key spells out everything that determines the result bytes (operator,
functional tuple count, seed, partition count; plus system preset and
model scale for results), so fig6/fig7/fig8/fig9/table5 -- which all
evaluate overlapping (system, operator) pairs -- compute each pair once
per process instead of once per figure.  ``run_all --no-cache`` (or
:func:`set_cache_enabled`) restores the recompute-everything behaviour,
and ``run_all --jobs N`` runs experiment sections in a process pool
(each worker holds its own cache).

The caches are addressed either by preset name *or* by any
:class:`~repro.api.spec.SystemSpec`-like object exposing ``cache_key``
and ``to_config()`` -- which is how the scenario API (:mod:`repro.api`)
evaluates hardware points the paper never measured through the same
memoization.

Below the in-memory tiers sits an optional **persistent, content-
addressed result store** (``REPRO_STORE=dir`` or the CLIs' ``--store``
flag; :mod:`repro.service.store`): evaluated results are written as
JSON documents keyed by a digest of the full content key, so fresh
processes -- repeated CLI invocations, CI runs, the serving daemon's
clients -- replay warm scenarios with zero simulation executions.
:func:`cache_stats` reports every tier's hits/misses/evictions.

:class:`ResultMatrix` is retained as a deprecated shim over the
scenario API; :func:`format_table` forwards to its new home in
:mod:`repro.api.results`.  New code should use
:class:`repro.api.Scenario` / :class:`repro.api.Sweep` directly.
"""

from __future__ import annotations

import functools
import os
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.config.system import EVALUATED_PRESETS
from repro.perf.result import SystemResult
from repro.systems import build_system
from repro.telemetry import trace as _trace

#: Functional dataset sizes (tuples actually moved in Python).
FUNCTIONAL_N = {
    "scan": 20_000,
    "sort": 16_000,
    "groupby": 16_000,
    "join": (4_000, 16_000),
}

#: Cost-model scale: functional tuples x MODEL_SCALE = modeled tuples.
#: 2000x turns the 20k-tuple functional runs into a ~40M-tuple modeled
#: dataset (~0.6 GB of 16 B tuples), a mid-size slice of the paper's
#: 32 GB machine that keeps per-partition working sets far beyond every
#: cache level, as in the paper.
MODEL_SCALE = 2000.0

#: Memory partitions = vaults in the paper's machine.
NUM_PARTITIONS = 64

#: All evaluated configurations, evaluation order (one shared constant:
#: ``repro.config.system.EVALUATED_PRESETS``).
ALL_SYSTEMS = EVALUATED_PRESETS

OPERATORS = ("scan", "sort", "groupby", "join")


# ---------------------------------------------------------------------------
# Cache tiers: in-process memory tiers + an optional persistent store.
# ---------------------------------------------------------------------------

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()


class CacheTier:
    """One named get/put cache tier with hit/miss/eviction counters.

    The memory tiers below wrap plain dicts (unbounded, so their
    eviction count stays 0); the persistent disk tier
    (:class:`repro.service.store.ResultStore`) exposes the same
    ``stats()`` shape, which is what lets :func:`cache_stats` report
    every tier uniformly.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: Dict[Tuple, Any] = {}
        self._stats = {"hits": 0, "misses": 0, "evictions": 0}

    def get(self, key: Tuple) -> Any:
        """The cached value, or the module sentinel ``_MISS``."""
        value = self._data.get(key, _MISS)
        self._stats["hits" if value is not _MISS else "misses"] += 1
        return value

    def put(self, key: Tuple, value: Any) -> Any:
        self._data[key] = value
        return value

    def get_or_build(self, key: Tuple, build):
        value = self.get(key)
        if value is _MISS:
            value = self.put(key, build())
        return value

    def clear(self) -> None:
        self._data.clear()
        self._stats.update(hits=0, misses=0, evictions=0)

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return dict(self._stats, entries=len(self._data))


_WORKLOADS = CacheTier("workload")
_RESULTS = CacheTier("result")
_CACHE_ENABLED = True

#: Tiers registered by higher layers (the suite subsystem's result
#: memo), so ``clear_caches``/``cache_stats`` stay the one switchboard
#: without this module importing upward.
_EXTRA_TIERS: List[CacheTier] = []


def register_cache_tier(tier: CacheTier) -> CacheTier:
    """Enroll a higher layer's tier in clear/stats handling (idempotent)."""
    if tier not in _EXTRA_TIERS:
        _EXTRA_TIERS.append(tier)
    return tier

#: (store root, result key) pairs already confirmed on disk, so the
#: memory-hit write-through below costs one digest + stat per key per
#: process instead of per hit.
_PERSISTED: set = set()


def set_cache_enabled(enabled: bool) -> bool:
    """Toggle the shared in-memory caches; returns the previous setting.

    Only the memory tiers are affected: the persistent store (see
    :func:`configure_store`) is an independent tier, so ``--no-cache``
    still measures cold in-process runs while a warm store keeps
    serving across processes.
    """
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def cache_enabled() -> bool:
    return _CACHE_ENABLED


def clear_caches() -> None:
    """Drop all memoized workloads, results and machine singletons.

    The persistent store is *not* cleared (it is durable by design);
    only the handle's in-process state survives via
    :func:`configure_store`.
    """
    from repro.systems.machine import clear_machine_cache

    _WORKLOADS.clear()
    _RESULTS.clear()
    for tier in _EXTRA_TIERS:
        tier.clear()
    _PERSISTED.clear()
    _spec_machine.cache_clear()
    clear_machine_cache()


#: Times this process fell back from the evaluation daemon to local
#: in-process evaluation (the client's ``degrade="local"`` path).
_DEGRADED = 0


def note_degraded() -> int:
    """Count one degradation to local evaluation; returns the total."""
    global _DEGRADED
    _DEGRADED += 1
    return _DEGRADED


def degraded_count() -> int:
    """How many service calls this process served locally after failure."""
    return _DEGRADED


def cache_stats() -> Dict[str, Any]:
    """Per-tier hit/miss/eviction counters, plus legacy aggregates.

    The top-level ``hits``/``misses`` keys sum the in-memory tiers
    (the pre-service shape); ``tiers`` breaks them down per tier and
    adds the persistent store when one is active.  ``degraded`` counts
    service calls this process answered locally after daemon failure.
    """
    tiers: Dict[str, Any] = {
        _WORKLOADS.name: _WORKLOADS.stats(),
        _RESULTS.name: _RESULTS.stats(),
    }
    for tier in _EXTRA_TIERS:
        tiers[tier.name] = tier.stats()
    store = active_store()
    if store is not None:
        tiers["store"] = store.stats()
    return {
        "hits": _WORKLOADS.stats()["hits"] + _RESULTS.stats()["hits"],
        "misses": _WORKLOADS.stats()["misses"] + _RESULTS.stats()["misses"],
        "degraded": _DEGRADED,
        "tiers": tiers,
    }


# ---------------------------------------------------------------------------
# The persistent store tier (REPRO_STORE / --store).
# ---------------------------------------------------------------------------

#: Environment variables configuring the default persistent tier.
STORE_ENV = "REPRO_STORE"
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"

_STORE: Optional[Any] = None  # ResultStore handle (lazy import)
_STORE_PATH: Optional[str] = None
_STORE_EXPLICIT = False


def configure_store(path: Optional[Any], max_bytes: Optional[int] = None):
    """Select the persistent result-store for this process.

    ``path`` is a store directory, an already-open
    :class:`~repro.service.store.ResultStore` handle (its counters then
    stay continuous across reconfigurations -- how the scheduler scopes
    its store to one batch at a time), or ``None`` to revert to the
    environment default (``REPRO_STORE``).  Returns the active handle
    (or ``None``).  The CLIs' ``--store`` flag lands here.
    """
    global _STORE, _STORE_PATH, _STORE_EXPLICIT
    if path is None:
        _STORE, _STORE_PATH, _STORE_EXPLICIT = None, None, False
        return active_store()
    if isinstance(path, (str, os.PathLike)):
        # Fleet-aware: a directory carrying a fleet.json manifest opens
        # as a sharded, replicated store (see repro.service.fleet).
        from repro.service.store import open_store

        _STORE = open_store(path, max_bytes=max_bytes or _env_max_bytes())
    else:
        _STORE = path  # an already-open store handle (any store protocol)
    _STORE_PATH = str(_STORE.root)
    _STORE_EXPLICIT = True
    return _STORE


def store_selection() -> Tuple:
    """Opaque snapshot of the store selection, for save/restore.

    Lets a scoped user (the batch scheduler, tests) install its own
    store for a window and put the process back exactly as it was:
    ``previous = store_selection(); ...; restore_store_selection(previous)``.
    """
    return (_STORE_EXPLICIT, _STORE, _STORE_PATH)


def restore_store_selection(selection: Tuple) -> None:
    """Undo a :func:`configure_store` using a prior snapshot."""
    global _STORE, _STORE_PATH, _STORE_EXPLICIT
    _STORE_EXPLICIT, _STORE, _STORE_PATH = selection


def _env_max_bytes() -> Optional[int]:
    import os

    raw = os.environ.get(STORE_MAX_BYTES_ENV)
    return int(raw) if raw else None


def active_store():
    """The persistent tier in effect: explicit ``--store`` beats env.

    Reads ``REPRO_STORE`` on every call (not at import), so a caller or
    test that sets the variable mid-process still gets the tier; the
    handle is cached per path to keep its stats continuous.
    """
    global _STORE, _STORE_PATH
    if _STORE_EXPLICIT:
        return _STORE
    import os

    env = os.environ.get(STORE_ENV)
    if not env:
        return None
    if _STORE is None or _STORE_PATH != env:
        from repro.service.store import open_store

        _STORE = open_store(env, max_bytes=_env_max_bytes())
        _STORE_PATH = env
    return _STORE


def store_path() -> Optional[str]:
    """The active store's directory (for worker-process propagation)."""
    store = active_store()
    return str(store.root) if store is not None else None


def store_stats() -> Optional[Dict[str, int]]:
    """The active store's counters, or ``None`` without a store."""
    store = active_store()
    return store.stats() if store is not None else None


def result_store_payload(
    system: Any,
    operator: str,
    scale: float,
    seed: int,
    num_partitions: int,
) -> Dict[str, Any]:
    """The canonical key payload naming one (system, operator) result.

    This is the persistent twin of :func:`run_cached_result`'s tuple
    key: systems normalize to ``{"preset": name}`` (a no-override spec
    digests identically to its bare preset name) or the spec's
    ``to_dict`` form, and the functional size rides along because the
    stored numbers describe those exact bytes.  The digest additionally
    folds in :data:`repro.service.store.CODE_VERSION`.
    """
    if isinstance(system, str):
        system_desc: Dict[str, Any] = {"preset": system}
    elif getattr(system, "is_preset", False):
        system_desc = {"preset": system.base}
    else:
        system_desc = {"spec": system.to_dict()}
    functional_n = FUNCTIONAL_N.get(operator)
    return {
        "kind": "operator-result",
        "system": system_desc,
        "operator": operator,
        "functional_n": list(functional_n)
        if isinstance(functional_n, tuple)
        else functional_n,
        "scale": float(scale),
        "seed": int(seed),
        "num_partitions": int(num_partitions),
    }


def _store_lookup(store, payload: Dict[str, Any]) -> Tuple[str, Any]:
    """(digest, restored result or ``_MISS``) for one store probe."""
    from repro.service.codec import result_from_document
    from repro.service.store import digest_payload

    digest = digest_payload(payload)
    document = store.get(digest)
    if document is None:
        return digest, _MISS
    try:
        return digest, result_from_document(document)
    except (KeyError, TypeError, ValueError):
        # Schema drift or a hand-edited entry: treat as a miss.
        return digest, _MISS


def _build_workload(operator: str, seed: int, num_partitions: int):
    if operator == "scan":
        return make_scan_workload(FUNCTIONAL_N["scan"], num_partitions, seed)
    if operator == "sort":
        return make_sort_workload(FUNCTIONAL_N["sort"], num_partitions, seed)
    if operator == "groupby":
        return make_groupby_workload(FUNCTIONAL_N["groupby"], num_partitions, seed=seed)
    if operator == "join":
        n_r, n_s = FUNCTIONAL_N["join"]
        return make_join_workload(n_r, n_s, num_partitions, seed)
    raise ValueError(f"unknown operator {operator!r}")


def make_workload(operator: str, seed: int = 17, num_partitions: int = NUM_PARTITIONS):
    """Default workload for one operator, memoized by content key.

    The key covers everything the generated bytes depend on -- operator,
    functional size, seed, partition count -- so every experiment module
    asking for the same relation shares one materialization.  Workloads
    are frozen dataclasses and operators never mutate their inputs
    (property-tested), which is what makes the sharing sound.
    """
    if operator not in FUNCTIONAL_N:
        raise ValueError(f"unknown operator {operator!r}")
    if not _CACHE_ENABLED:
        return _build_workload(operator, seed, num_partitions)
    key = ("workload", operator, FUNCTIONAL_N[operator], seed, num_partitions)
    return _WORKLOADS.get_or_build(
        key, lambda: _build_workload(operator, seed, num_partitions)
    )


@functools.lru_cache(maxsize=None)
def _spec_machine(spec) -> Any:
    """Machine singleton per custom (non-preset) system spec."""
    from repro.systems.machine import Machine

    return Machine(spec.to_config())


def machine_for(system) -> Any:
    """The machine singleton for a preset name or a SystemSpec.

    Preset names (and specs that add nothing to their base preset) share
    the per-preset singletons of :func:`repro.systems.build_system`;
    custom specs get their own memoized machine.  Specs are duck-typed:
    anything hashable with ``to_config()`` (plus optionally
    ``is_preset``/``base``) works.
    """
    if isinstance(system, str):
        return build_system(system)
    if getattr(system, "is_preset", False):
        return build_system(system.base)
    return _spec_machine(system)


def _system_token(system) -> Any:
    """The hashable cache-key component naming a system.

    Preset strings key exactly as they always have (so scenario-API
    callers share entries with the figure modules); specs key by their
    full content.
    """
    return system if isinstance(system, str) else system.cache_key


def run_cached_result(
    system: Any,
    operator: str,
    scale: float,
    seed: int = 17,
    num_partitions: int = NUM_PARTITIONS,
    workload: Any = None,
) -> SystemResult:
    """Functionally run + cost one (system, operator) pair, memoized.

    ``system`` is a preset name or a SystemSpec-like object (see
    :func:`machine_for`).  The content key adds the system token and the
    model scale to the workload key; results are immutable to their
    consumers (the figure modules only read them), so sharing one
    :class:`~repro.perf.result.SystemResult` across figures is safe.

    ``workload`` lets a caller that already holds the (seed,
    num_partitions) workload -- e.g. a :class:`ResultMatrix` running
    with the shared caches disabled -- supply it instead of having
    :func:`make_workload` rebuild it per system.

    When a persistent store is active (``REPRO_STORE`` / ``--store``,
    see :func:`configure_store`), it acts as the second cache tier:
    memory miss -> store probe -> simulate on a store miss and write the
    evaluated result back, so a *fresh process* replays warm sweeps with
    zero simulation executions.  Store-restored results carry
    ``output=None`` (the functional payload is not persisted; see
    :mod:`repro.service.codec`).
    """
    tracer = _trace.active_tracer()
    if tracer is not None:
        with tracer.span(
            "task",
            category="service",
            operator=operator,
            system=_system_token(system),
            scale=float(scale),
        ):
            return _run_cached_result(
                system, operator, scale, seed, num_partitions, workload
            )
    return _run_cached_result(
        system, operator, scale, seed, num_partitions, workload
    )


def _run_cached_result(
    system: Any,
    operator: str,
    scale: float,
    seed: int,
    num_partitions: int,
    workload: Any,
) -> SystemResult:
    key = (
        "result",
        _system_token(system),
        operator,
        FUNCTIONAL_N.get(operator),
        float(scale),
        seed,
        num_partitions,
    )

    def build() -> SystemResult:
        machine = machine_for(system)
        return machine.run_operator(
            operator,
            workload if workload is not None
            else make_workload(operator, seed, num_partitions),
            scale_factor=scale,
        )

    store = active_store()

    if _CACHE_ENABLED:
        cached = _RESULTS.get(key)
        if cached is not _MISS:
            marker = (str(store.root), key) if store is not None else None
            if marker is not None and marker not in _PERSISTED:
                # Write-through: a memory-tier hit still lands on disk
                # (covers results computed before the store was
                # configured, and heals evicted entries) without
                # re-simulating anything.  Confirmed keys are memoized
                # so repeated hits stay free of hashing and stat calls.
                from repro.service.codec import result_to_document
                from repro.service.store import digest_payload

                digest = digest_payload(
                    result_store_payload(
                        system, operator, scale, seed, num_partitions
                    )
                )
                if not store.contains(digest):
                    store.put(digest, result_to_document(cached))
                _PERSISTED.add(marker)
            return cached

    if store is not None:
        digest, restored = _store_lookup(
            store,
            result_store_payload(system, operator, scale, seed, num_partitions),
        )
        if restored is _MISS:
            from repro.service.codec import result_to_document

            restored = build()
            store.put(digest, result_to_document(restored))
        _PERSISTED.add((str(store.root), key))
        result = restored
    else:
        result = build()

    if _CACHE_ENABLED:
        _RESULTS.put(key, result)
    return result


class ResultMatrix:
    """Deprecated: runs and caches (system, operator) -> SystemResult.

    The pre-scenario-API front door, retained as a thin shim so old
    call sites keep working.  New code should use
    :class:`repro.api.Scenario` (one point) or :class:`repro.api.Sweep`
    (a grid); both share the same content-keyed caches, so mixing old
    and new callers costs nothing.
    """

    def __init__(
        self,
        systems: Iterable[str] = ALL_SYSTEMS,
        operators: Iterable[str] = OPERATORS,
        scale: float = MODEL_SCALE,
        seed: int = 17,
        num_partitions: int = NUM_PARTITIONS,
    ) -> None:
        warnings.warn(
            "ResultMatrix is deprecated; use repro.api.Scenario / "
            "repro.api.Sweep instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._systems = tuple(systems)
        self._operators = tuple(operators)
        self._scale = scale
        self._seed = seed
        self._num_partitions = num_partitions
        self._cache: Dict[tuple, SystemResult] = {}
        self._workloads: Dict[str, Any] = {}

    @property
    def systems(self) -> tuple:
        return self._systems

    @property
    def operators(self) -> tuple:
        return self._operators

    def workload(self, operator: str):
        if operator not in self._workloads:
            self._workloads[operator] = make_workload(
                operator, self._seed, self._num_partitions
            )
        return self._workloads[operator]

    def result(self, system: str, operator: str) -> SystemResult:
        key = (system, operator)
        if key not in self._cache:
            self._cache[key] = run_cached_result(
                system,
                operator,
                self._scale,
                self._seed,
                self._num_partitions,
                workload=self.workload(operator),
            )
        return self._cache[key]

    def all_results(self) -> Dict[tuple, SystemResult]:
        for system in self._systems:
            for operator in self._operators:
                self.result(system, operator)
        return dict(self._cache)


def format_table(headers: List[str], rows: List[List[Any]]) -> str:
    """Fixed-width ASCII table for experiment output.

    Back-compat forwarder: the implementation now lives with the
    scenario API's result container (:mod:`repro.api.results`).  The
    import is deferred so ``repro.api`` (which imports this module) can
    finish initializing first.
    """
    from repro.api.results import format_table as _format_table

    return _format_table(headers, rows)
