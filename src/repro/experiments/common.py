"""Shared experiment plumbing: default workloads, scale, result caching.

Two dataset sizes are in play everywhere:

- **Functional size** (``FUNCTIONAL_N``): the tuples Python actually
  moves through partitioning and probing -- kept in the tens of
  thousands so the whole suite runs in seconds and outputs stay
  exactly verifiable.
- **Modeled size** = functional size x ``MODEL_SCALE``: the dataset the
  ``PhaseCost`` records *describe*.  Every operator runner takes the
  factor as ``model_scale`` (machines pass it as ``scale_factor``) and
  emits costs for the larger dataset: per-tuple-linear quantities scale
  exactly, and size-dependent structure -- mergesort pass counts,
  hash-table region sizes -- is recomputed at modeled size, not scaled.

The default ``MODEL_SCALE`` of 2000x turns the ~20k-tuple functional
runs into a ~40M-tuple (~0.6 GB) modeled dataset: a mid-size slice of
the paper's 32 GB machine (512 MB vaults filled with 16 B tuples) that
keeps per-partition working sets far beyond every cache level, as in the
paper.  ``run_all --fast`` and the test suite use 500x, which preserves
all qualitative orderings.

:class:`ResultMatrix` memoizes (system, operator) -> result so the
experiment modules can share runs; :func:`format_table` is the one ASCII
table style used by every report, including the pipeline subsystem's.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.perf.result import SystemResult
from repro.systems import build_system

#: Functional dataset sizes (tuples actually moved in Python).
FUNCTIONAL_N = {
    "scan": 20_000,
    "sort": 16_000,
    "groupby": 16_000,
    "join": (4_000, 16_000),
}

#: Cost-model scale: functional tuples x MODEL_SCALE = modeled tuples.
#: 2000x turns the 20k-tuple functional runs into a ~40M-tuple modeled
#: dataset (~0.6 GB of 16 B tuples), a mid-size slice of the paper's
#: 32 GB machine that keeps per-partition working sets far beyond every
#: cache level, as in the paper.
MODEL_SCALE = 2000.0

#: Memory partitions = vaults in the paper's machine.
NUM_PARTITIONS = 64

#: All evaluated configurations, evaluation order.
ALL_SYSTEMS = (
    "cpu",
    "nmp-rand",
    "nmp-seq",
    "nmp-perm",
    "mondrian-noperm",
    "mondrian",
)

OPERATORS = ("scan", "sort", "groupby", "join")


def make_workload(operator: str, seed: int = 17, num_partitions: int = NUM_PARTITIONS):
    """Default workload for one operator."""
    if operator == "scan":
        return make_scan_workload(FUNCTIONAL_N["scan"], num_partitions, seed)
    if operator == "sort":
        return make_sort_workload(FUNCTIONAL_N["sort"], num_partitions, seed)
    if operator == "groupby":
        return make_groupby_workload(FUNCTIONAL_N["groupby"], num_partitions, seed=seed)
    if operator == "join":
        n_r, n_s = FUNCTIONAL_N["join"]
        return make_join_workload(n_r, n_s, num_partitions, seed)
    raise ValueError(f"unknown operator {operator!r}")


class ResultMatrix:
    """Runs and caches (system, operator) -> SystemResult."""

    def __init__(
        self,
        systems: Iterable[str] = ALL_SYSTEMS,
        operators: Iterable[str] = OPERATORS,
        scale: float = MODEL_SCALE,
        seed: int = 17,
        num_partitions: int = NUM_PARTITIONS,
    ) -> None:
        self._systems = tuple(systems)
        self._operators = tuple(operators)
        self._scale = scale
        self._seed = seed
        self._num_partitions = num_partitions
        self._cache: Dict[tuple, SystemResult] = {}
        self._workloads: Dict[str, Any] = {}

    @property
    def systems(self) -> tuple:
        return self._systems

    @property
    def operators(self) -> tuple:
        return self._operators

    def workload(self, operator: str):
        if operator not in self._workloads:
            self._workloads[operator] = make_workload(
                operator, self._seed, self._num_partitions
            )
        return self._workloads[operator]

    def result(self, system: str, operator: str) -> SystemResult:
        key = (system, operator)
        if key not in self._cache:
            machine = build_system(system)
            self._cache[key] = machine.run_operator(
                operator, self.workload(operator), scale_factor=self._scale
            )
        return self._cache[key]

    def all_results(self) -> Dict[tuple, SystemResult]:
        for system in self._systems:
            for operator in self._operators:
                self.result(system, operator)
        return dict(self._cache)


def format_table(headers: List[str], rows: List[List[Any]]) -> str:
    """Fixed-width ASCII table for experiment output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
