"""Skew sweep: two-round partitioning vs naive hashing (future work of
paper section 5.4, implemented).

Sweeps the Zipf skew parameter and reports, for each point, the
partition imbalance of naive one-round hashing vs the skew-aware
two-round protocol, whether the overflow exception fired, and the extra
cost the retry charged.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analytics.skew import make_skewed_groupby_workload, partition_imbalance
from repro.api import format_table
from repro.operators.base import OperatorVariant
from repro.operators.partition import destination_map
from repro.operators.skew import run_partitioning_skew_aware

ALPHAS = (0.0, 0.6, 1.0, 1.4, 1.8)


def run(
    n: int = 8000,
    num_partitions: int = 16,
    capacity_factor: float = 1.5,
    seed: int = 21,
) -> Dict[str, object]:
    variant = OperatorVariant(
        radix_bits=8, probe_algorithm="sort", permutable=True, simd=True,
        num_partitions=num_partitions,
    )
    rows = []
    points = {}
    for alpha in ALPHAS:
        workload = make_skewed_groupby_workload(
            n, num_partitions, alpha=alpha, num_distinct=max(256, n // 4), seed=seed
        )
        naive_sizes = np.zeros(num_partitions, dtype=np.int64)
        for part in workload.partitions:
            dests = destination_map(part, variant, "low", workload.key_space_bits)
            naive_sizes += np.bincount(dests, minlength=num_partitions)
        naive_imb = partition_imbalance(naive_sizes)

        outcome, plan = run_partitioning_skew_aware(
            workload.partitions, variant, workload.key_space_bits,
            capacity_factor=capacity_factor, seed=seed,
        )
        final_imb = partition_imbalance([len(p) for p in outcome.partitions])
        retried = any(p.name == "rebalance" for p in outcome.phases)
        points[alpha] = {
            "naive_imbalance": naive_imb,
            "final_imbalance": final_imb,
            "retried": retried,
            "split_buckets": len(plan.split_buckets),
        }
        rows.append(
            [
                f"{alpha:.1f}",
                f"{naive_imb:.2f}x",
                "yes" if retried else "no",
                f"{final_imb:.2f}x",
                str(len(plan.split_buckets)),
            ]
        )
    return {
        "points": points,
        "capacity_factor": capacity_factor,
        "table": format_table(
            ["Zipf alpha", "Naive imbalance", "Retry fired", "Final imbalance",
             "Split buckets"],
            rows,
        ),
    }


def main() -> None:
    out = run()
    print("Two-round partitioning under key skew "
          f"(capacity {out['capacity_factor']}x fair share)\n")
    print(out["table"])


if __name__ == "__main__":
    main()
