"""End-to-end query pipelines across machines (beyond the paper).

The paper measures each operator in isolation (Tables 2/5, Figures 6-9);
its motivating workloads, however, are multi-operator Spark queries
(Table 1).  This experiment runs the three canonical query shapes of
:mod:`repro.pipeline.queries` end-to-end on the CPU baseline, the best
NMP baseline (NMP-perm) and Mondrian, reporting per-stage time/energy
breakdowns, the pipeline bottleneck, and whole-pipeline speedups.

Expected qualitative outcome: Mondrian's single-operator wins compound --
every pipeline keeps a positive end-to-end speedup, and the bottleneck
stage shifts with the machine (the CPU pays for partitioning shuffles the
NMP machines absorb locally).

Run:  python -m repro.experiments.pipeline_queries
      python -m repro.experiments.run_all --pipelines
"""

from __future__ import annotations

from typing import Dict

from repro.api import format_table, run_plan
from repro.experiments.common import MODEL_SCALE
from repro.pipeline.perf import PipelinePerf, pipeline_speedup
from repro.pipeline.queries import CANONICAL_QUERIES, CANONICAL_QUERY_SIZES
from repro.pipeline.report import (
    bottleneck_report,
    comparison_table,
    stage_breakdown_table,
)

#: Machines compared end-to-end: CPU baseline, best NMP baseline, Mondrian.
SYSTEMS = ("cpu", "nmp-perm", "mondrian")

#: Functional sizes shared with the scenario API's query scenarios
#: (one constant: ``repro.pipeline.queries.CANONICAL_QUERY_SIZES``).
QUERY_SIZES = CANONICAL_QUERY_SIZES


def run(scale: float = MODEL_SCALE, seed: int = 17, num_partitions: int = 64) -> Dict:
    """Run every canonical query on every machine.

    Returns per-(query, system) :class:`PipelinePerf` objects, speedups
    vs the CPU, the formatted per-stage/breakdown tables, and a summary
    comparison table.
    """
    perfs: Dict[str, Dict[str, PipelinePerf]] = {}
    sections = []
    for query, builder in CANONICAL_QUERIES.items():
        plan = builder(
            num_partitions=num_partitions, seed=seed, **QUERY_SIZES.get(query, {})
        )
        perfs[query] = {}
        lines = [f"-- {query}: {plan.description} --"]
        for system in SYSTEMS:
            perf = run_plan(system, plan, model_scale=scale)
            perfs[query][system] = perf
            lines.append(f"\n[{system}]")
            lines.append(stage_breakdown_table(perf))
            lines.append(bottleneck_report(perf))
        lines.append("")
        lines.append(comparison_table(perfs[query], baseline="cpu"))
        sections.append("\n".join(lines))

    speedups = {
        query: {
            system: pipeline_speedup(series["cpu"], series[system])
            for system in SYSTEMS
        }
        for query, series in perfs.items()
    }
    rows = [
        [query] + [f"{speedups[query][s]:.1f}x" for s in SYSTEMS]
        for query in CANONICAL_QUERIES
    ]
    summary = format_table(["Query"] + [s.upper() for s in SYSTEMS], rows)
    return {
        "perfs": perfs,
        "speedups": speedups,
        "sections": sections,
        "summary": summary,
        "table": "\n\n".join(sections + ["Pipeline speedup vs CPU:\n" + summary]),
    }


def main() -> None:
    out = run()
    print("Query pipelines: per-stage breakdowns and end-to-end speedups\n")
    print(out["table"])


if __name__ == "__main__":
    main()
