"""Section 3.1: row-activation energy share vs access granularity.

The paper (using CACTI-3DD-derived constants): accessing a whole 256 B
HMC row makes activation ~14% of the access energy; an 8 B access makes
it ~80%.  The experiment sweeps access granularity with the Table 4
constants and also reports the larger row buffers of HBM (2 KB) and
Wide I/O 2 (4 KB), where the gap grows further.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.energy import default_energy_config
from repro.api import format_table

GRANULARITIES_B = (8, 16, 32, 64, 128, 256)
ROW_SIZES = {"HMC": 256, "HBM": 2048, "WideIO2": 4096}


def run() -> Dict[str, object]:
    energy = default_energy_config()
    fractions: Dict[str, Dict[int, float]] = {}
    for device, row_b in ROW_SIZES.items():
        fractions[device] = {
            g: energy.activation_fraction(g, row_b) for g in GRANULARITIES_B
        }
    rows: List[List[str]] = []
    for device in ROW_SIZES:
        rows.append(
            [device]
            + [f"{fractions[device][g] * 100:.0f}%" for g in GRANULARITIES_B]
        )
    return {
        "fractions": fractions,
        "hmc_8b": fractions["HMC"][8],
        "hmc_full_row": fractions["HMC"][256],
        "table": format_table(
            ["Device"] + [f"{g}B" for g in GRANULARITIES_B], rows
        ),
    }


def main() -> None:
    out = run()
    print("Section 3.1: activation share of DRAM access energy\n")
    print(out["table"])
    print(
        f"\nHMC: {out['hmc_full_row'] * 100:.0f}% at full row (paper ~14%), "
        f"{out['hmc_8b'] * 100:.0f}% at 8B (paper ~80%)"
    )


if __name__ == "__main__":
    main()
