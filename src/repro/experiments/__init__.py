"""Experiment drivers -- one per table/figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning plain data
structures (dicts/lists) that print the same rows/series the paper
reports, plus a ``main()`` for command-line use.  The benchmark harness
under ``benchmarks/`` wraps these drivers and asserts the paper's
qualitative shape (orderings, crossovers, rough factors).

==================  ==========================================
Module              Paper artifact
==================  ==========================================
table1_operators    Table 1 (Spark-operator characterization)
table2_phases       Table 2 (operator phase decomposition)
table5_partition    Table 5 (partitioning speedup vs CPU)
fig6_probe          Figure 6 (probe speedup vs CPU)
fig7_overall        Figure 7 (overall speedup vs CPU)
fig8_energy         Figure 8 (energy breakdown)
fig9_efficiency     Figure 9 (performance/watt improvement)
sec31_activation    Section 3.1 (activation-energy fraction)
sec32_mlp           Section 3.2 (MLP-limited bandwidth)
ablations           Design-choice sweeps (SIMD width, row size,
                    scheduler window, merge fan-in)
==================  ==========================================
"""

from repro.experiments import common

__all__ = ["common"]
