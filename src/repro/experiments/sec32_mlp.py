"""Section 3.2: memory-level parallelism vs NMP bandwidth and power.

The paper's worked example: a Cortex-A57-class OoO core (128-entry ROB,
one memory access per 6 instructions) sustains ~20 outstanding
accesses; at 30 ns latency and cache-block transfers that approaches
5.3 GB/s of the vault's 8 GB/s -- but the core's 1.5 W dwarfs the
312 mW per-vault budget.  Streaming with stream buffers reaches the full
8 GB/s within 180 mW.
"""

from __future__ import annotations

from typing import Dict

from repro.config.cores import cortex_a35_mondrian, cortex_a57_cpu, krait400_nmp
from repro.config.dram import default_hmc_geometry
from repro.cores.mlp import mlp_limited_bandwidth_bps, outstanding_accesses
from repro.api import format_table

#: The paper's assumptions for this back-of-envelope analysis.
MEM_LATENCY_NS = 30.0
INSTRUCTIONS_PER_MEM = 6.0
#: The paper's example assumes one 8-byte access every 6 instructions,
#: with ~20 of them in flight: 20 x 8 B / 30 ns ~= 5.3 GB/s.
MEM_ACCESS_B = 8
A57_POWER_W = 1.5  # ARM Cortex-A57 at 1.8 GHz / 20 nm (paper's figure)
VAULT_POWER_BUDGET_W = 0.312


def run() -> Dict[str, object]:
    geo = default_hmc_geometry()
    cores = {
        "cortex-a57 (OoO)": (cortex_a57_cpu(), A57_POWER_W),
        "krait400 (OoO)": (krait400_nmp(), krait400_nmp().peak_power_w),
        "mondrian A35+SIMD": (cortex_a35_mondrian(), cortex_a35_mondrian().peak_power_w),
    }
    rows = []
    details = {}
    for name, (core, power_w) in cores.items():
        mlp = core.max_outstanding_mem(INSTRUCTIONS_PER_MEM)
        if core.has_stream_buffers:
            # Streaming saturates the vault's peak (section 5.2).
            bw = geo.vault_peak_bw_bps
        else:
            # Little's law on the 8 B accesses, exactly as the paper does
            # (20 in flight x 8 B / 30 ns ~= 5.3 GB/s).
            bw = mlp_limited_bandwidth_bps(mlp, MEM_LATENCY_NS, MEM_ACCESS_B)
            bw = min(bw, geo.vault_peak_bw_bps)
        within_budget = power_w <= VAULT_POWER_BUDGET_W
        details[name] = {
            "mlp": mlp,
            "bw_gbps": bw / 1e9,
            "power_w": power_w,
            "fits_vault_budget": within_budget,
        }
        rows.append(
            [
                name,
                f"{mlp:.1f}",
                f"{bw / 1e9:.1f} GB/s",
                f"{power_w * 1000:.0f} mW",
                "yes" if within_budget else "NO",
            ]
        )
    a57 = details["cortex-a57 (OoO)"]
    return {
        "details": details,
        "a57_mlp": a57["mlp"],
        "a57_bw_gbps": a57["bw_gbps"],
        "table": format_table(
            ["Core", "MLP", "Bandwidth", "Power", "Fits 312mW budget"], rows
        ),
    }


def main() -> None:
    out = run()
    print("Section 3.2: MLP-limited bandwidth under the vault power budget\n")
    print(out["table"])
    print(
        f"\nA57: ~{out['a57_mlp']:.0f} outstanding accesses -> "
        f"{out['a57_bw_gbps']:.1f} GB/s (paper: ~20 -> 5.3 GB/s of 8 GB/s peak)"
    )


if __name__ == "__main__":
    main()
