"""Run the complete reproduction: every table, figure and ablation.

Usage::

    python -m repro.experiments.run_all            # full report
    python -m repro.experiments.run_all --fast     # reduced model scale

Prints each artifact's table in paper order, with the paper's values
alongside where the experiment reports them.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ablations,
    fig6_probe,
    fig7_overall,
    fig8_energy,
    fig9_efficiency,
    sec31_activation,
    sec32_mlp,
    skew_partitioning,
    table1_operators,
    table2_phases,
    table5_partition,
)
from repro.experiments.common import MODEL_SCALE

SCALED = (
    ("Table 5: partition speedup vs CPU", table5_partition),
    ("Figure 6: probe speedup vs CPU", fig6_probe),
    ("Figure 7: overall speedup vs CPU", fig7_overall),
    ("Figure 8: energy breakdown", fig8_energy),
    ("Figure 9: efficiency improvement vs CPU", fig9_efficiency),
)

UNSCALED = (
    ("Table 1: Spark operator characterization", table1_operators),
    ("Table 2: operator phases (measured)", table2_phases),
    ("Section 3.1: activation energy share", sec31_activation),
    ("Section 3.2: MLP-limited bandwidth", sec32_mlp),
    ("Two-round partitioning under skew (future work)", skew_partitioning),
)


def _banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="use a reduced model scale (500x instead of 2000x)",
    )
    args = parser.parse_args()
    scale = 500.0 if args.fast else MODEL_SCALE

    start = time.time()
    print(f"Mondrian Data Engine reproduction -- full report (scale {scale:.0f}x)")

    for title, module in UNSCALED:
        _banner(title)
        print(module.run()["table"])

    for title, module in SCALED:
        _banner(title)
        out = module.run(scale=scale)
        print(out["table"])
        if "mondrian_peak" in out:
            print(f"\nMondrian peak: {out['mondrian_peak']:.1f}x")

    _banner("Ablations: SIMD width / row buffer / FR-FCFS window")
    out = ablations.run(scale=scale)
    print(out["simd_table"])
    print()
    print(out["row_buffer_table"])
    print()
    print(out["window_table"])

    print(f"\nDone in {time.time() - start:.1f}s.")


if __name__ == "__main__":
    main()
