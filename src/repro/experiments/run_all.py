"""Run the complete reproduction: every table, figure and ablation.

Usage::

    python -m repro.experiments.run_all               # full paper report
    python -m repro.experiments.run_all --fast        # reduced model scale
    python -m repro.experiments.run_all --pipelines   # query pipelines only
    python -m repro.experiments.run_all --fast --pipelines

Without flags, prints each paper artifact's table in paper order, with
the paper's values alongside where the experiment reports them.
``--pipelines`` runs the multi-operator query-pipeline suite instead
(per-stage time/energy breakdowns on CPU, NMP-perm and Mondrian); see
``docs/USAGE.md`` for the full flag reference.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ablations,
    fig6_probe,
    fig7_overall,
    fig8_energy,
    fig9_efficiency,
    pipeline_queries,
    sec31_activation,
    sec32_mlp,
    skew_partitioning,
    table1_operators,
    table2_phases,
    table5_partition,
)
from repro.experiments.common import MODEL_SCALE

#: Model scale used by ``--fast`` (full runs use ``MODEL_SCALE``).
FAST_SCALE = 500.0

SCALED = (
    ("Table 5: partition speedup vs CPU", table5_partition),
    ("Figure 6: probe speedup vs CPU", fig6_probe),
    ("Figure 7: overall speedup vs CPU", fig7_overall),
    ("Figure 8: energy breakdown", fig8_energy),
    ("Figure 9: efficiency improvement vs CPU", fig9_efficiency),
)

UNSCALED = (
    ("Table 1: Spark operator characterization", table1_operators),
    ("Table 2: operator phases (measured)", table2_phases),
    ("Section 3.1: activation energy share", sec31_activation),
    ("Section 3.2: MLP-limited bandwidth", sec32_mlp),
    ("Two-round partitioning under skew (future work)", skew_partitioning),
)


def build_parser() -> argparse.ArgumentParser:
    """The run_all CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--fast", action="store_true",
        help=f"use a reduced model scale ({FAST_SCALE:.0f}x instead of "
             f"{MODEL_SCALE:.0f}x)",
    )
    parser.add_argument(
        "--pipelines", action="store_true",
        help="run the multi-operator query-pipeline suite (per-stage "
             "time/energy breakdowns on CPU, NMP-perm and Mondrian) "
             "instead of the paper-artifact report",
    )
    return parser


def _banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def run_paper_report(scale: float) -> None:
    """The paper-artifact report (default mode)."""
    for title, module in UNSCALED:
        _banner(title)
        print(module.run()["table"])

    for title, module in SCALED:
        _banner(title)
        out = module.run(scale=scale)
        print(out["table"])
        if "mondrian_peak" in out:
            print(f"\nMondrian peak: {out['mondrian_peak']:.1f}x")

    _banner("Ablations: SIMD width / row buffer / FR-FCFS window")
    out = ablations.run(scale=scale)
    print(out["simd_table"])
    print()
    print(out["row_buffer_table"])
    print()
    print(out["window_table"])


def run_pipeline_report(scale: float) -> None:
    """The query-pipeline suite (``--pipelines``)."""
    _banner("Query pipelines: per-stage breakdowns, CPU vs NMP vs Mondrian")
    print(pipeline_queries.run(scale=scale)["table"])


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    scale = FAST_SCALE if args.fast else MODEL_SCALE

    start = time.time()
    mode = "query-pipeline suite" if args.pipelines else "full report"
    print(f"Mondrian Data Engine reproduction -- {mode} (scale {scale:.0f}x)")

    if args.pipelines:
        run_pipeline_report(scale)
    else:
        run_paper_report(scale)

    print(f"\nDone in {time.time() - start:.1f}s.")


if __name__ == "__main__":
    main()
