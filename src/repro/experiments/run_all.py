"""Run the complete reproduction: every table, figure and ablation.

Usage::

    python -m repro.experiments.run_all               # full paper report
    python -m repro.experiments.run_all --fast        # reduced model scale
    python -m repro.experiments.run_all --jobs 4      # sections in parallel
    python -m repro.experiments.run_all --no-cache    # recompute everything
    python -m repro.experiments.run_all --pipelines   # query pipelines only
    python -m repro.experiments.run_all --fast --pipelines
    python -m repro.experiments.run_all --sweep SPEC.json  # scenario sweep

Without flags, prints each paper artifact's table in paper order, with
the paper's values alongside where the experiment reports them.
``--jobs N`` renders independent experiment sections in a process pool;
the output is byte-identical to a sequential run (sections are collected
and printed in paper order).  ``--no-cache`` disables the shared
workload/result memoization (see ``repro.experiments.common``).
``--pipelines`` runs the multi-operator query-pipeline suite instead
(per-stage time/energy breakdowns on CPU, NMP-perm and Mondrian).
``--sweep SPEC.json`` runs an arbitrary scenario grid through the
scenario API (``repro.api``) and prints its ResultSet as JSON records;
``python -m repro.api`` is the richer front end (CSV export, inline
grids).  See ``docs/USAGE.md`` for the full flag reference.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments import (
    ablations,
    fault_sweep,
    fig6_probe,
    fig7_overall,
    fig8_energy,
    fig9_efficiency,
    pipeline_queries,
    sec31_activation,
    sec32_mlp,
    skew_partitioning,
    table1_operators,
    table2_phases,
    table5_partition,
)
from repro.experiments import common
from repro.experiments.common import MODEL_SCALE
from repro.telemetry import span as _span
from repro.telemetry import trace as _trace

#: Model scale used by ``--fast`` (full runs use ``MODEL_SCALE``).
FAST_SCALE = 500.0

#: Section kinds: how a module's ``run()`` output is rendered.
_UNSCALED = "unscaled"
_SCALED = "scaled"
_ABLATIONS = "ablations"

#: The paper report, in paper order: (key, title, module, kind).
SECTIONS = (
    ("table1", "Table 1: Spark operator characterization", table1_operators, _UNSCALED),
    ("table2", "Table 2: operator phases (measured)", table2_phases, _UNSCALED),
    ("sec31", "Section 3.1: activation energy share", sec31_activation, _UNSCALED),
    ("sec32", "Section 3.2: MLP-limited bandwidth", sec32_mlp, _UNSCALED),
    (
        "skew",
        "Two-round partitioning under skew (future work)",
        skew_partitioning,
        _UNSCALED,
    ),
    (
        "faults",
        "Fault injection: shuffle resilience under adversarial schedules",
        fault_sweep,
        _UNSCALED,
    ),
    ("table5", "Table 5: partition speedup vs CPU", table5_partition, _SCALED),
    ("fig6", "Figure 6: probe speedup vs CPU", fig6_probe, _SCALED),
    ("fig7", "Figure 7: overall speedup vs CPU", fig7_overall, _SCALED),
    ("fig8", "Figure 8: energy breakdown", fig8_energy, _SCALED),
    ("fig9", "Figure 9: efficiency improvement vs CPU", fig9_efficiency, _SCALED),
    (
        "ablations",
        "Ablations: SIMD width / row buffer / FR-FCFS window",
        ablations,
        _ABLATIONS,
    ),
)

_SECTION_INDEX = {key: (title, module, kind) for key, title, module, kind in SECTIONS}


def build_parser() -> argparse.ArgumentParser:
    """The run_all CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--fast", action="store_true",
        help=f"use a reduced model scale ({FAST_SCALE:.0f}x instead of "
             f"{MODEL_SCALE:.0f}x)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent experiment sections of the paper report in "
             "a pool of N worker processes; output stays in paper order "
             "and is identical to a --jobs 1 run (no effect with "
             "--pipelines, which is a single section)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared workload/result memoization and "
             "recompute every (system, operator) pair per section",
    )
    parser.add_argument(
        "--pipelines", action="store_true",
        help="run the multi-operator query-pipeline suite (per-stage "
             "time/energy breakdowns on CPU, NMP-perm and Mondrian) "
             "instead of the paper-artifact report",
    )
    parser.add_argument(
        "--suites", action="store_true",
        help="run the benchmark-suite grid (every registered suite of "
             "repro.suites across all evaluated presets) and print the "
             "ranked cross-suite report instead of the paper-artifact "
             "report (honours --jobs/--no-cache/--store; "
             "python -m repro.suites adds exports and subset grids)",
    )
    parser.add_argument(
        "--sweep", metavar="SPEC.json",
        help="run the scenario-API sweep grid described by SPEC.json "
             "instead of the paper report, printing its ResultSet as "
             "JSON records (honours --jobs and --no-cache; "
             "python -m repro.api adds CSV export and inline grids)",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persistent content-addressed result store directory "
             "(second cache tier below the in-memory memoization; "
             "default: $REPRO_STORE if set)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record telemetry spans (pipeline stages, shuffle rounds, "
             "scheduler batches, worker tasks) and write them to FILE "
             "as Chrome trace_event JSON -- load it in chrome://tracing "
             "or https://ui.perfetto.dev (stdout is unaffected)",
    )
    return parser


def _banner(title: str) -> str:
    return f"\n{'=' * 72}\n{title}\n{'=' * 72}"


def render_section(key: str, scale: float) -> str:
    """One section's complete stdout text (banner included).

    Pure function of (key, scale) plus the seeded experiment modules, so
    sections can render in worker processes and still concatenate into
    the exact sequential report.
    """
    title, module, kind = _SECTION_INDEX[key]
    if kind == _UNSCALED:
        return f"{_banner(title)}\n{module.run()['table']}"
    if kind == _SCALED:
        out = module.run(scale=scale)
        text = f"{_banner(title)}\n{out['table']}"
        if "mondrian_peak" in out:
            text += f"\n\nMondrian peak: {out['mondrian_peak']:.1f}x"
        return text
    out = module.run(scale=scale)
    return (
        f"{_banner(title)}\n{out['simd_table']}\n\n"
        f"{out['row_buffer_table']}\n\n{out['window_table']}"
    )


def _render_worker(payload):
    """Process-pool entry point: (key, scale, use_cache, store[, trace])
    -> (text, worker spans or None)."""
    key, scale, use_cache, store = payload[:4]
    trace_on = bool(payload[4]) if len(payload) > 4 else False
    common.set_cache_enabled(use_cache)
    if store != common.store_path():
        common.configure_store(store)
    if trace_on:
        with _trace.tracing() as tracer:
            with tracer.span("section", category="experiments", section=key):
                text = render_section(key, scale)
            return text, tracer.to_dicts()
    return render_section(key, scale), None


def run_paper_report(scale: float, jobs: int = 1) -> None:
    """The paper-artifact report (default mode)."""
    keys = [key for key, _, _, _ in SECTIONS]
    tracer = _trace.active_tracer()
    if jobs > 1:
        payloads = [
            (key, scale, common.cache_enabled(), common.store_path(),
             tracer is not None)
            for key in keys
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for text, spans in pool.map(_render_worker, payloads):
                print(text)
                if tracer is not None and spans:
                    tracer.adopt(spans, parent_id=tracer.current_span_id())
    else:
        # Print as each section completes: the report streams, and a
        # mid-report failure still leaves the finished sections visible.
        for key in keys:
            with _span("section", category="experiments", section=key):
                print(render_section(key, scale))


def run_pipeline_report(scale: float) -> None:
    """The query-pipeline suite (``--pipelines``)."""
    print(_banner("Query pipelines: per-stage breakdowns, CPU vs NMP vs Mondrian"))
    print(pipeline_queries.run(scale=scale)["table"])


def run_suites_report(jobs: int = 1) -> None:
    """The benchmark-suite grid + ranked report (``--suites``)."""
    from repro.suites import SuiteRun, render_report, score_records

    grid = SuiteRun()
    results = grid.run(jobs=jobs)
    print(_banner(
        f"Benchmark suites: {len(grid.suites)} suites x "
        f"{len(grid.systems)} presets"
    ))
    print(render_report(score_records(results)))


def run_sweep_report(spec_path: str, jobs: int = 1) -> None:
    """An arbitrary scenario grid (``--sweep SPEC.json``)."""
    from pathlib import Path

    from repro.api import Sweep

    sweep = Sweep.from_json(Path(spec_path).read_text())
    results = sweep.run(jobs=jobs)
    print(_banner(f"Scenario sweep: {sweep.size} scenarios from {spec_path}"))
    print(results.to_json())


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.no_cache:
        common.set_cache_enabled(False)
    if args.store:
        common.configure_store(args.store)
    scale = FAST_SCALE if args.fast else MODEL_SCALE

    start = time.time()
    if args.sweep:
        # A sweep's scales come from SPEC.json, not --fast: don't print
        # a scale the grid may not use.
        mode, scale_note = "scenario sweep", ""
    elif args.suites:
        # Suite grids carry their own default scale (repro.suites).
        mode, scale_note = "benchmark-suite grid", ""
    elif args.pipelines:
        mode, scale_note = "query-pipeline suite", f" (scale {scale:.0f}x)"
    else:
        mode, scale_note = "full report", f" (scale {scale:.0f}x)"
    print(f"Mondrian Data Engine reproduction -- {mode}{scale_note}")

    tracer = _trace.install_tracer() if args.trace else None
    try:
        if args.sweep:
            run_sweep_report(args.sweep, jobs=args.jobs)
        elif args.suites:
            run_suites_report(jobs=args.jobs)
        elif args.pipelines:
            run_pipeline_report(scale)
        else:
            run_paper_report(scale, jobs=args.jobs)
    finally:
        if tracer is not None:
            _trace.uninstall_tracer()
            events = tracer.export_chrome(args.trace)
            print(f"trace: {events} events -> {args.trace}", file=sys.stderr)

    print(f"\nDone in {time.time() - start:.1f}s.")


if __name__ == "__main__":
    main()
