"""Figure 9: efficiency (performance per watt) improvement over the CPU.

Series: NMP, NMP-perm, Mondrian over the four operators (log scale in
the paper).  Paper shape: efficiency follows the performance trends with
smaller gains (Mondrian draws more dynamic power for its bandwidth);
Mondrian peaks at 28x over the CPU and ~5x over the best NMP baseline.

The composite series follow figure 7's composition rules (NMP and
NMP-perm use the NMP-rand probe).  Composite energy is approximated by
summing the corresponding phases' energies.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.api import Scenario, format_table
from repro.experiments.common import MODEL_SCALE, OPERATORS

SERIES = ("nmp", "nmp-perm", "mondrian")


def _composite(result: Callable, series: str, operator: str) -> Tuple[float, float]:
    """(runtime_s, energy_j) of a figure 7-style composite."""
    if series == "mondrian":
        r = result("mondrian", operator)
        return r.runtime_s, r.energy.total_j
    rand = result("nmp-rand", operator)
    part_sys = "nmp-rand" if series == "nmp" else "nmp-perm"
    part = result(part_sys, operator)
    # Energy split: partition share from the partition system, probe
    # share from nmp-rand.  Shares scale with the phases' runtimes.
    part_frac = part.partition_time_s / part.runtime_s if part.runtime_s else 0.0
    probe_frac = rand.probe_time_s / rand.runtime_s if rand.runtime_s else 0.0
    runtime = part.partition_time_s + rand.probe_time_s
    energy = part.energy.total_j * part_frac + rand.energy.total_j * probe_frac
    return runtime, energy


def run(scale: float = MODEL_SCALE, seed: int = 17) -> Dict[str, object]:
    def result(system: str, operator: str):
        return Scenario(system, operator, model_scale=scale, seed=seed).result()

    improvements: Dict[str, Dict[str, float]] = {}
    for operator in OPERATORS:
        cpu = result("cpu", operator)
        # perf/W = (1/runtime) / (energy/runtime) = 1/energy.
        cpu_eff = 1.0 / cpu.energy.total_j
        improvements[operator] = {}
        for series in SERIES:
            _, energy = _composite(result, series, operator)
            improvements[operator][series] = (1.0 / energy) / cpu_eff
    rows = [
        [operator] + [f"{improvements[operator][s]:.1f}x" for s in SERIES]
        for operator in OPERATORS
    ]
    peak = max(improvements[op]["mondrian"] for op in OPERATORS)
    return {
        "improvements": improvements,
        "mondrian_peak": peak,
        "table": format_table(["Operator", "NMP", "NMP-perm", "Mondrian"], rows),
    }


def main() -> None:
    out = run()
    print("Figure 9: efficiency improvement vs CPU\n")
    print(out["table"])
    print(f"\nMondrian peak: {out['mondrian_peak']:.1f}x (paper: up to 28x)")


if __name__ == "__main__":
    main()
