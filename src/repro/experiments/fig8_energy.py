"""Figure 8: per-system energy breakdown across the four operators.

Components (normalized fractions): DRAM dynamic, DRAM static, cores,
SerDes+NOC.  Paper shape:

- CPU: cores dominate (DRAM bandwidth severely underutilized, 2.1 W
  cores x 16).
- NMP / NMP-perm: near-identical profiles (probe dominates execution),
  static-heavy components (DRAM static, SerDes idle) prominent because
  runtimes are long relative to traffic.
- Mondrian: aggressive bandwidth utilization shrinks the static
  components' share relative to NMP.
"""

from __future__ import annotations

from typing import Dict

from repro.api import Scenario, format_table
from repro.experiments.common import MODEL_SCALE, OPERATORS
from repro.energy.model import EnergyBreakdown

SYSTEMS = ("cpu", "nmp-rand", "nmp-perm", "mondrian")
DISPLAY = {"cpu": "CPU", "nmp-rand": "NMP", "nmp-perm": "NMP-perm", "mondrian": "Mondrian"}
COMPONENTS = ("dram_dyn", "dram_static", "cores", "serdes_noc")


def run(scale: float = MODEL_SCALE, seed: int = 17) -> Dict[str, object]:
    def result(system: str, operator: str):
        return Scenario(system, operator, model_scale=scale, seed=seed).result()

    fractions: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, float] = {}
    for system in SYSTEMS:
        combined = EnergyBreakdown()
        for operator in OPERATORS:
            combined.accumulate(result(system, operator).energy)
        fractions[system] = combined.fractions()
        totals[system] = combined.total_j
    rows = [
        [DISPLAY[system]]
        + [f"{fractions[system][c] * 100:.1f}%" for c in COMPONENTS]
        + [f"{totals[system]:.3f} J"]
        for system in SYSTEMS
    ]
    return {
        "fractions": fractions,
        "totals_j": totals,
        "table": format_table(
            ["System", "DRAM dyn", "DRAM static", "Cores", "SerDes+NOC", "Total"], rows
        ),
    }


def main() -> None:
    print("Figure 8: energy breakdown (all four operators combined)\n")
    print(run()["table"])


if __name__ == "__main__":
    main()
