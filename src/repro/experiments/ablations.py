"""Ablation sweeps over the Mondrian design choices (DESIGN.md section 5).

1. **SIMD width** -- 128 to 1024 bits: the paper sizes the unit so eight
   16 B tuples process per instruction; narrower units leave the probe
   phase compute-bound.
2. **Row-buffer size** -- HMC 256 B vs HBM 2 KB vs Wide I/O 2 4 KB: the
   permutability energy saving grows with the row buffer (more wasted
   activation energy per random write).
3. **Scheduler window** -- how far FR-FCFS reordering alone can recover
   row locality from interleaved shuffle traffic without permutability
   (paper section 4.1.2: the distance is "typically too long for this
   scheduling window").
"""

from __future__ import annotations

from typing import Dict, List

from repro.analytics.tuples import TUPLE_B
from repro.api import Scenario, SystemSpec, format_table
from repro.config.dram import DramTiming, HmcGeometry
from repro.config.energy import default_energy_config
from repro.dram.analytic import InterleavedWrites, estimate_pattern
from repro.experiments.common import MODEL_SCALE


def simd_width_sweep(
    widths=(128, 256, 512, 1024), operator: str = "join", scale: float = MODEL_SCALE
) -> Dict[int, float]:
    """Mondrian runtime vs SIMD width (seconds).

    Each width is a one-line :class:`SystemSpec` derivation -- the
    scenario API's core use case (hardware points the paper never
    measured).
    """
    runtimes = {}
    for width in widths:
        spec = SystemSpec("mondrian").with_simd(width).named(f"mondrian-simd{width}")
        runtimes[width] = (
            Scenario(spec, operator, model_scale=scale, seed=23).result().runtime_s
        )
    return runtimes


def row_buffer_sweep(row_sizes=(256, 2048, 4096), objects: int = 1 << 20) -> Dict[int, Dict[str, float]]:
    """Shuffle-write activation energy: addressed vs permutable, per
    row-buffer size (joules per 2^20 shuffled 16 B tuples)."""
    energy = default_energy_config()
    timing = DramTiming()
    results = {}
    for row_b in row_sizes:
        geo = HmcGeometry(row_size_b=row_b)
        # Activation energy scales with the row (HBM/WideIO2 copy more
        # cells per activation), which is exactly why the paper calls the
        # small-rowed HMC "a conservative example" (section 3.1).
        activation_j = energy.activation_j_for_row(row_b)
        total_b = objects * TUPLE_B
        out = {}
        for label, permutable in (("addressed", False), ("permutable", True)):
            est = estimate_pattern(
                InterleavedWrites(
                    total_b=total_b, object_b=TUPLE_B, num_sources=63, permutable=permutable
                ),
                geo,
                timing,
            )
            out[label] = (
                est.activations * activation_j
                + est.bytes * 8 * energy.dram_access_j_per_bit
            )
        out["saving"] = out["addressed"] / out["permutable"]
        results[row_b] = out
    return results


def scheduler_window_sweep(
    windows=(4, 8, 16, 32, 64, 128), num_sources: int = 63, objects: int = 1 << 16
) -> Dict[int, float]:
    """Row-hit rate of addressed shuffle writes vs FR-FCFS window size.

    Shows that reordering alone only recovers locality once the window
    covers the source-interleave distance (~num_sources messages) --
    far larger than practical scheduling windows.
    """
    geo = HmcGeometry()
    timing = DramTiming()
    hit_rates = {}
    for window in windows:
        est = estimate_pattern(
            InterleavedWrites(
                total_b=objects * TUPLE_B,
                object_b=TUPLE_B,
                num_sources=num_sources,
                permutable=False,
            ),
            geo,
            timing,
            scheduler_window=window,
        )
        hit_rates[window] = est.row_hit_rate
    return hit_rates


def run(scale: float = MODEL_SCALE) -> Dict[str, object]:
    simd = simd_width_sweep(scale=scale)
    rows_simd = [
        [f"{w} bits", f"{t * 1e3:.2f} ms", f"{simd[128] / t:.2f}x"]
        for w, t in simd.items()
    ]
    row_buf = row_buffer_sweep()
    rows_rb = [
        [f"{rb} B", f"{v['addressed']:.4f} J", f"{v['permutable']:.4f} J", f"{v['saving']:.1f}x"]
        for rb, v in row_buf.items()
    ]
    window = scheduler_window_sweep()
    rows_win = [[str(w), f"{hr * 100:.0f}%"] for w, hr in window.items()]
    return {
        "simd": simd,
        "row_buffer": row_buf,
        "window": window,
        "simd_table": format_table(["SIMD width", "Join runtime", "vs 128b"], rows_simd),
        "row_buffer_table": format_table(
            ["Row buffer", "Addressed", "Permutable", "Saving"], rows_rb
        ),
        "window_table": format_table(["FR-FCFS window", "Row-hit rate"], rows_win),
    }


def main() -> None:
    out = run()
    print("Ablation 1: SIMD width (Mondrian, Join)\n")
    print(out["simd_table"])
    print("\nAblation 2: row-buffer size vs permutability saving\n")
    print(out["row_buffer_table"])
    print("\nAblation 3: FR-FCFS window vs shuffle row-hit rate\n")
    print(out["window_table"])


if __name__ == "__main__":
    main()
