"""Event-count based energy model (paper section 6, Table 4).

Component conventions (matching figure 8's legend):

- **DRAM dynamic** -- row activations at 0.65 nJ each plus 2 pJ/bit of
  row-buffer transfer.
- **DRAM static** -- 980 mW background power per 8 GB cube times runtime.
- **cores** -- peak core power scaled by utilization times runtime,
  summed over compute units, plus LLC access energy and leakage (the LLC
  exists only in the CPU-centric machine).
- **SerDes+NOC** -- SerDes idle slots (1 pJ/bit both directions, every
  link, all the time) plus busy bytes (3 pJ/bit), plus mesh transfer
  energy (0.04 pJ/bit/mm) and NoC leakage (30 mW per stack).

SerDes idle energy deliberately accrues whether or not traffic flows --
that is why low-bandwidth-utilization systems show a large SerDes+NOC
share in figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.system import SystemConfig


@dataclass(frozen=True)
class EnergyEvents:
    """Countable energy-bearing events of one phase."""

    dram_activations: float = 0.0
    dram_bytes: float = 0.0
    llc_accesses: float = 0.0
    noc_bit_mm: float = 0.0
    serdes_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "dram_activations",
            "dram_bytes",
            "llc_accesses",
            "noc_bit_mm",
            "serdes_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def merged(self, other: "EnergyEvents") -> "EnergyEvents":
        return EnergyEvents(
            dram_activations=self.dram_activations + other.dram_activations,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            llc_accesses=self.llc_accesses + other.llc_accesses,
            noc_bit_mm=self.noc_bit_mm + other.noc_bit_mm,
            serdes_bytes=self.serdes_bytes + other.serdes_bytes,
        )


@dataclass
class EnergyBreakdown:
    """Joules per component (figure 8's four bars + the LLC detail)."""

    dram_dynamic_j: float = 0.0
    dram_static_j: float = 0.0
    core_j: float = 0.0
    llc_j: float = 0.0
    serdes_noc_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.dram_dynamic_j
            + self.dram_static_j
            + self.core_j
            + self.llc_j
            + self.serdes_noc_j
        )

    def fractions(self) -> dict:
        """Figure 8's normalized breakdown (LLC folded into cores, as the
        paper groups cache energy with the compute side)."""
        total = self.total_j
        if total <= 0:
            return {"dram_dyn": 0.0, "dram_static": 0.0, "cores": 0.0, "serdes_noc": 0.0}
        return {
            "dram_dyn": self.dram_dynamic_j / total,
            "dram_static": self.dram_static_j / total,
            "cores": (self.core_j + self.llc_j) / total,
            "serdes_noc": self.serdes_noc_j / total,
        }

    def accumulate(self, other: "EnergyBreakdown") -> None:
        self.dram_dynamic_j += other.dram_dynamic_j
        self.dram_static_j += other.dram_static_j
        self.core_j += other.core_j
        self.llc_j += other.llc_j
        self.serdes_noc_j += other.serdes_noc_j


class EnergyModel:
    """Turns (events, runtime, utilization) into an EnergyBreakdown."""

    def __init__(self, config: SystemConfig, num_serdes_links: int) -> None:
        if num_serdes_links < 0:
            raise ValueError("link count must be non-negative")
        self._config = config
        self._links = num_serdes_links

    @property
    def config(self) -> SystemConfig:
        return self._config

    def phase_energy(
        self, events: EnergyEvents, runtime_s: float, core_utilization: float
    ) -> EnergyBreakdown:
        """Energy of one phase lasting ``runtime_s`` seconds."""
        if runtime_s < 0:
            raise ValueError("runtime must be non-negative")
        if not 0.0 <= core_utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        cfg = self._config
        e = cfg.energy

        dram_dynamic = (
            events.dram_activations * e.dram_activation_j
            + events.dram_bytes * 8 * e.dram_access_j_per_bit
        )
        dram_static = e.hmc_background_w_per_cube * cfg.geometry.num_stacks * runtime_s
        core = cfg.core.peak_power_w * cfg.num_cores * core_utilization * runtime_s

        llc = 0.0
        if cfg.has_cache_hierarchy and cfg.llc_b:
            llc = events.llc_accesses * e.llc_access_j + e.llc_leakage_w * runtime_s

        serdes_idle = (
            self._links
            * cfg.interconnect.serdes_bw_bps_per_dir
            * 8  # bytes/s -> bits/s
            * 2  # both directions
            * runtime_s
            * e.serdes_idle_j_per_bit
        )
        serdes_busy = events.serdes_bytes * 8 * e.serdes_busy_j_per_bit
        noc_dynamic = events.noc_bit_mm * e.noc_j_per_bit_mm
        noc_leak = e.noc_leakage_w * cfg.geometry.num_stacks * runtime_s

        return EnergyBreakdown(
            dram_dynamic_j=dram_dynamic,
            dram_static_j=dram_static,
            core_j=core,
            llc_j=llc,
            serdes_noc_j=serdes_idle + serdes_busy + noc_dynamic + noc_leak,
        )
