"""Energy accounting per the paper's Table 4 custom framework.

Combines event counts from the hardware models (row activations, DRAM
bytes, LLC accesses, NoC bit-millimetres, SerDes bytes) with runtime to
produce the per-component breakdown of figure 8: DRAM dynamic, DRAM
static, cores, and SerDes+NOC.
"""

from repro.energy.model import EnergyBreakdown, EnergyEvents, EnergyModel

__all__ = ["EnergyBreakdown", "EnergyEvents", "EnergyModel"]
