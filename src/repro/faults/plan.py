"""Deterministic fault schedules for the shuffle layer.

The paper's all-to-all shuffle assumes every machine delivers on time;
real NMP-style fabrics see stragglers, dropped deliveries, duplicated
deliveries (a retransmission racing its original) and transient barrier
timeouts.  This module turns a tiny frozen parameter set
(:class:`FaultSpec`) into a fully materialized, reproducible schedule
(:class:`FaultPlan`) for one shuffle: which sources straggle and by how
much, how many consecutive attempts each (source, destination) delivery
loses before one lands, which streams deliver a duplicate copy, and
which destinations time out a barrier poll.

Everything is drawn from one :class:`numpy.random.SeedSequence` keyed by
``(seed, salt, num_sources, num_destinations)``: the same spec on the
same shuffle shape always yields the same schedule (two fresh processes
produce identical plans), while the ``salt`` separates the independent
shuffles of one operator (a join's R- and S-pass see different faults).

The schedules are pure *control-plane* adversity.  The retry/backoff
protocol in :mod:`repro.faults.protocol` guarantees the functional
output of a faulted shuffle is byte-identical to the fault-free run --
the property suite pins it across randomized schedules.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping

import numpy as np

#: Probability fields that switch a fault class on when positive.
_PROB_FIELDS = (
    "straggler_prob",
    "drop_prob",
    "duplicate_prob",
    "timeout_prob",
)


@dataclass(frozen=True)
class FaultSpec:
    """Seed plus fault intensities: the declarative face of a schedule.

    The default spec is *null* (all probabilities zero): it injects
    nothing, costs nothing, and leaves every result byte-identical to a
    build without the fault layer at all.

    - ``straggler_prob`` / ``straggler_slowdown``: chance each source
      machine's shuffle egress runs ``slowdown`` times slower.
    - ``drop_prob``: chance a (source, destination) delivery attempt is
      lost in the network; lost attempts are retried with exponential
      backoff, at most ``max_retries`` times (the schedule never drops
      more than ``max_retries`` consecutive attempts, so the bounded
      protocol always converges).
    - ``duplicate_prob``: chance a completed delivery arrives twice; the
      destination controller detects and discards the copy.
    - ``timeout_prob``: chance a destination's barrier wait times out
      once and re-polls after a backoff.
    - ``backoff_base``: first-retry stall, in units of the disrupted
      delivery's own transmission time (doubling per further attempt).
    """

    seed: int = 0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    timeout_prob: float = 0.0
    max_retries: int = 3
    backoff_base: float = 0.5

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("fault seed must be non-negative")
        for attr in _PROB_FIELDS:
            p = getattr(self, attr)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{attr} must be a probability in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.0")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_base < 0.0:
            raise ValueError("backoff_base must be non-negative")

    @property
    def active(self) -> bool:
        """True when any fault class can actually fire."""
        return any(getattr(self, attr) > 0.0 for attr in _PROB_FIELDS)

    def with_overrides(self, **kwargs) -> "FaultSpec":
        """Copy with fields replaced (validated by ``__post_init__``)."""
        return replace(self, **kwargs)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: only the non-default fields."""
        default = NULL_FAULTS
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`, rejecting unknown fields."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultSpec field(s) {unknown}; valid: {sorted(known)}"
            )
        return cls(**dict(data))


#: The inactive schedule every variant/config defaults to.
NULL_FAULTS = FaultSpec()


def stream_salt(label: str) -> int:
    """Stable small salt for a named delivery stream (e.g. ``"R-"``).

    CRC32 of the label, so a join's two partitioning passes (and any
    future pass vocabulary) draw independent-but-reproducible schedules
    from one seed.
    """
    return zlib.crc32(label.encode("utf-8")) & 0x7FFFFFFF


def _geometric_failures(
    u: np.ndarray, failure_prob: float, max_retries: int
) -> np.ndarray:
    """Consecutive failed attempts before a success, capped.

    Inverse-CDF sampling of the geometric distribution from uniforms:
    ``k = floor(log(u) / log(q))`` consecutive failures under per-attempt
    failure probability ``q``.  ``q == 1`` (every attempt drops) caps at
    ``max_retries``: the bounded protocol escalates to the slow
    per-delivery path, whose final attempt always lands.
    """
    if failure_prob <= 0.0:
        return np.zeros(u.shape, dtype=np.int64)
    if failure_prob >= 1.0:
        return np.full(u.shape, max_retries, dtype=np.int64)
    k = np.floor(np.log(u) / np.log(failure_prob)).astype(np.int64)
    return np.minimum(k, max_retries)


@dataclass
class FaultPlan:
    """One shuffle's materialized fault schedule.

    Arrays are indexed by the shuffle's shape: ``straggler_factor`` per
    source, ``drop_rounds``/``duplicates`` per (source, destination)
    stream, ``timeout_rounds`` per destination.  Schedules describe the
    *whole* stream matrix; zero-byte streams simply have nothing to
    drop, so the protocol masks them at delivery time.
    """

    spec: FaultSpec
    num_sources: int
    num_destinations: int
    salt: int
    #: per source: egress slowdown factor (1.0 = healthy).
    straggler_factor: np.ndarray
    #: per (src, dest): consecutive dropped attempts before the delivery
    #: lands (each <= spec.max_retries).
    drop_rounds: np.ndarray
    #: per (src, dest): duplicate copies arriving after the real one.
    duplicates: np.ndarray
    #: per dest: transient barrier-wait timeouts before completion.
    timeout_rounds: np.ndarray

    @classmethod
    def build(
        cls, spec: FaultSpec, num_sources: int, num_destinations: int, salt: int = 0
    ) -> "FaultPlan":
        """Materialize the deterministic schedule for one shuffle shape."""
        if num_sources < 0 or num_destinations < 1:
            raise ValueError("plan needs >= 0 sources and >= 1 destination")
        if salt < 0:
            raise ValueError("salt must be non-negative")
        rng = np.random.default_rng(
            np.random.SeedSequence([spec.seed, salt, num_sources, num_destinations])
        )
        shape = (num_sources, num_destinations)
        # Fixed draw order keeps schedules stable if later fault classes
        # are toggled off: each class consumes its own block of uniforms.
        straggles = rng.random(num_sources) < spec.straggler_prob
        straggler_factor = np.where(straggles, spec.straggler_slowdown, 1.0)
        drop_rounds = _geometric_failures(
            rng.random(shape), spec.drop_prob, spec.max_retries
        )
        duplicates = (rng.random(shape) < spec.duplicate_prob).astype(np.int64)
        timeout_rounds = (
            rng.random(num_destinations) < spec.timeout_prob
        ).astype(np.int64)
        return cls(
            spec=spec,
            num_sources=num_sources,
            num_destinations=num_destinations,
            salt=salt,
            straggler_factor=straggler_factor,
            drop_rounds=drop_rounds,
            duplicates=duplicates,
            timeout_rounds=timeout_rounds,
        )

    @property
    def active(self) -> bool:
        return self.spec.active

    def disrupted_destinations(self, sizes_b: np.ndarray) -> np.ndarray:
        """Per-destination bool: any inbound stream dropped or duplicated.

        ``sizes_b`` is the (sources, destinations) byte matrix; empty
        streams cannot be disrupted (there is nothing to deliver).
        """
        sizes = np.asarray(sizes_b)
        if sizes.shape != (self.num_sources, self.num_destinations):
            raise ValueError(
                f"sizes matrix {sizes.shape} does not match the plan shape "
                f"({self.num_sources}, {self.num_destinations})"
            )
        faulty = (self.drop_rounds > 0) | (self.duplicates > 0)
        return np.any(faulty & (sizes > 0), axis=0)
