"""Deterministic fault injection for the shuffle layer.

``plan`` turns a frozen :class:`FaultSpec` into a reproducible
:class:`FaultPlan` (stragglers, drops, duplicates, timeouts) for one
shuffle; ``protocol`` replays that schedule through the barrier with
bounded retries and exponential backoff, collecting the
:class:`ResilienceStats` the cost model prices.  Functional output is
byte-identical under any schedule -- see docs/ARCHITECTURE.md.
"""

from repro.faults.plan import NULL_FAULTS, FaultPlan, FaultSpec, stream_salt
from repro.faults.protocol import (
    DeliverySession,
    FaultTolerantShuffleBarrier,
    ResilienceStats,
    combine_stats,
)

__all__ = [
    "NULL_FAULTS",
    "FaultPlan",
    "FaultSpec",
    "stream_salt",
    "DeliverySession",
    "FaultTolerantShuffleBarrier",
    "ResilienceStats",
    "combine_stats",
]
