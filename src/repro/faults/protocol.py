"""The retry/backoff protocol that absorbs a fault schedule.

Three pieces:

- :class:`FaultTolerantShuffleBarrier`: a :class:`ShuffleBarrier` whose
  vault controllers additionally keep per-destination sequence state, so
  a duplicated delivery is *detected and discarded* (exactly-once byte
  accounting -- the over-delivery guard never fires) and a transient
  barrier-wait timeout is recorded instead of wedging the protocol.
- :class:`ResilienceStats`: the aggregate the time/energy models price
  -- re-sent bytes, backoff stalls (expressed as byte-times at shuffle
  egress bandwidth, so the existing interconnect cost model prices them
  directly), straggler critical-path stall, timeout rounds, and how many
  destinations degraded off the batched fast path.
- :class:`DeliverySession`: drives one shuffle's deliveries through a
  :class:`~repro.faults.plan.FaultPlan`.  Healthy destinations keep the
  batched ``deliver_batch`` fast path; a destination with any dropped or
  duplicated inbound stream gracefully degrades to the slow per-delivery
  path, replaying each stream's bounded retries (exponential backoff,
  doubling per attempt) until the delivery lands.

The data plane is untouched: drops happen *before* bytes commit and
duplicates are discarded *at* the controller, so the materialized
destination buffers -- and therefore every operator's functional output
-- stay byte-identical to the fault-free run under any schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.memctrl.permutable import ShuffleBarrier
from repro.telemetry import registry as _registry
from repro.telemetry import span as _span


@dataclass
class ResilienceStats:
    """What the protocol paid to converge under one fault schedule."""

    #: delivery attempts that were dropped and re-sent.
    retries: int = 0
    #: bytes re-transmitted over the network for those retries.
    retried_b: float = 0.0
    #: duplicate deliveries the controllers detected and discarded.
    duplicates_discarded: int = 0
    #: bytes those duplicates burned on the wire.
    duplicate_b: float = 0.0
    #: backoff waits incurred (retry backoffs + timeout re-polls).
    backoff_stalls: int = 0
    #: backoff stall expressed as byte-time at shuffle egress bandwidth.
    backoff_stall_b: float = 0.0
    #: sources that straggled (with non-empty egress).
    stragglers: int = 0
    #: extra byte-time the slowest straggler held the barrier.
    straggler_stall_b: float = 0.0
    #: transient barrier-wait timeouts observed across destinations.
    timeout_rounds: int = 0
    #: destinations that fell back to the slow per-delivery path.
    degraded_destinations: int = 0
    #: goodput the shuffle moved (denominator for the shares).
    shuffle_b: float = 0.0

    def merge(self, other: "ResilienceStats") -> None:
        """Accumulate another session's stats (e.g. a join's two passes)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def overhead_b(self) -> float:
        """Extra wire byte-time beyond the fault-free shuffle."""
        return (
            self.retried_b
            + self.duplicate_b
            + self.backoff_stall_b
            + self.straggler_stall_b
        )

    @property
    def straggler_share(self) -> float:
        """Straggler stall as a share of the total shuffle critical path."""
        total = self.shuffle_b + self.overhead_b
        return self.straggler_stall_b / total if total > 0 else 0.0

    def to_metadata(self) -> Dict[str, float]:
        """Plain-scalar dict that survives the service codec round-trip."""
        out: Dict[str, float] = {
            f.name: float(getattr(self, f.name))
            if isinstance(getattr(self, f.name), float)
            else int(getattr(self, f.name))
            for f in fields(self)
        }
        out["overhead_b"] = float(self.overhead_b)
        out["straggler_share"] = float(self.straggler_share)
        return out


def combine_stats(*stats: Optional[ResilienceStats]) -> Optional[ResilienceStats]:
    """Merge per-shuffle stats into one; ``None`` if none were collected."""
    merged: Optional[ResilienceStats] = None
    for s in stats:
        if s is None:
            continue
        if merged is None:
            merged = ResilienceStats()
        merged.merge(s)
    return merged


class FaultTolerantShuffleBarrier(ShuffleBarrier):
    """A shuffle barrier whose controllers tolerate duplicates/timeouts.

    The base protocol is unchanged (``announce``/``announce_all``,
    ``seal``, ``deliver``, completion); on top, each vault controller
    tracks the deliveries it has already committed so a retransmitted
    copy is recognized and dropped before it corrupts the byte count,
    and transient barrier-wait timeouts are counted instead of raised.
    """

    def __init__(self, num_vaults: int) -> None:
        super().__init__(num_vaults)
        self._duplicates: list = [0] * num_vaults
        self._duplicate_b: list = [0] * num_vaults
        self._timeouts: list = [0] * num_vaults

    def discard_duplicate(self, dest: int, size_b: int) -> None:
        """A copy of an already-committed delivery arrived: drop it.

        The controller's sequence state recognizes the duplicate, so the
        delivered byte count is untouched (the over-delivery guard of
        the base barrier never fires) and only the waste is recorded.
        """
        if not self._sealed:
            raise RuntimeError("barrier must be sealed before deliveries")
        self._check_vault(dest)
        if size_b < 0:
            raise ValueError("duplicate size must be non-negative")
        self._duplicates[dest] += 1
        self._duplicate_b[dest] += size_b

    def record_timeout(self, dest: int) -> None:
        """One transient barrier-wait timeout at ``dest``; the waiter
        backs off and re-polls instead of failing the shuffle."""
        self._check_vault(dest)
        self._timeouts[dest] += 1

    @property
    def duplicates_discarded(self) -> int:
        return sum(self._duplicates)

    @property
    def duplicate_bytes(self) -> int:
        return sum(self._duplicate_b)

    @property
    def timeouts(self) -> int:
        return sum(self._timeouts)


class DeliverySession:
    """Drives one shuffle's barrier deliveries through a fault plan.

    ``sizes_b`` is the (sources, destinations) byte matrix the histogram
    exchange produced -- the same totals ``announce_all`` posted.  The
    session decides, per destination, whether the batched fast path is
    safe (no inbound stream disrupted) or the slow per-delivery path
    must replay each stream's retries.
    """

    def __init__(self, plan: FaultPlan, sizes_b: np.ndarray) -> None:
        self._plan = plan
        self._sizes = np.asarray(sizes_b, dtype=np.int64)
        if self._sizes.shape != (plan.num_sources, plan.num_destinations):
            raise ValueError(
                f"sizes matrix {self._sizes.shape} does not match the plan "
                f"shape ({plan.num_sources}, {plan.num_destinations})"
            )
        self._disrupted = plan.disrupted_destinations(self._sizes)
        self.stats = ResilienceStats(shuffle_b=float(self._sizes.sum()))

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def disrupted(self, dest: int) -> bool:
        """True when ``dest`` must take the slow per-delivery path."""
        return bool(self._disrupted[dest])

    def deliver_dest(self, barrier: ShuffleBarrier, dest: int) -> None:
        """Retire one destination's inbound traffic through the barrier.

        Healthy destinations keep the single ``deliver_batch``; disrupted
        ones degrade to per-stream deliveries with bounded retries.
        """
        sizes = self._sizes[:, dest]
        if not self.disrupted(dest):
            barrier.deliver_batch(dest, int(sizes.sum()))
            return
        self._replay_streams(barrier, dest, deliver=True)

    def record_dest_events(self, barrier: ShuffleBarrier, dest: int) -> None:
        """Fault accounting only, for callers that deliver per object.

        The scalar reference path already delivers tuple-by-tuple (it
        *is* the slow path); this records the identical retry/duplicate
        events without double-delivering, so stats and barrier state
        match the batched paths byte-for-byte.
        """
        if self.disrupted(dest):
            self._replay_streams(barrier, dest, deliver=False)

    def _replay_streams(
        self, barrier: ShuffleBarrier, dest: int, deliver: bool
    ) -> None:
        spec = self._plan.spec
        sizes = self._sizes[:, dest]
        self.stats.degraded_destinations += 1
        before = self.stats.retries
        with _span("fault_replay", category="faults", dest=int(dest)) as sp:
            self._replay_streams_inner(barrier, dest, deliver, spec, sizes)
            sp.set(retries=self.stats.retries - before)

    def _replay_streams_inner(
        self, barrier, dest, deliver, spec, sizes
    ) -> None:
        for src in np.flatnonzero(sizes):
            size_b = int(sizes[src])
            drops = int(min(self._plan.drop_rounds[src, dest], spec.max_retries))
            for attempt in range(drops):
                # Attempt ``attempt`` was lost: the bytes burned the wire
                # and the source waits an exponentially growing backoff
                # before re-sending.
                self.stats.retries += 1
                self.stats.retried_b += size_b
                self.stats.backoff_stalls += 1
                self.stats.backoff_stall_b += (
                    spec.backoff_base * (2.0 ** attempt) * size_b
                )
            if deliver:
                barrier.deliver(dest, size_b)
            for _ in range(int(self._plan.duplicates[src, dest])):
                self.stats.duplicates_discarded += 1
                self.stats.duplicate_b += size_b
                if isinstance(barrier, FaultTolerantShuffleBarrier):
                    barrier.discard_duplicate(dest, size_b)

    def finalize(self, barrier: ShuffleBarrier) -> ResilienceStats:
        """Post-delivery accounting: timeouts and straggler stall.

        A destination with inbound traffic whose barrier wait times out
        re-polls after a backoff priced like a retry of its whole
        inbound total; the straggler critical path is the slowest
        source's extra egress time (the barrier waits for the last
        delivery, so only the maximum matters).
        """
        spec = self._plan.spec
        dest_totals = self._sizes.sum(axis=0)
        with _span("fault_finalize", category="faults"):
            self._finalize_inner(barrier, spec, dest_totals)
        self._publish_metrics()
        return self.stats

    def _finalize_inner(self, barrier, spec, dest_totals) -> None:
        for dest in np.flatnonzero(self._plan.timeout_rounds):
            if dest_totals[dest] <= 0:
                continue
            rounds = int(self._plan.timeout_rounds[dest])
            for attempt in range(rounds):
                self.stats.timeout_rounds += 1
                self.stats.backoff_stalls += 1
                self.stats.backoff_stall_b += (
                    spec.backoff_base * (2.0 ** attempt) * float(dest_totals[dest])
                )
                if isinstance(barrier, FaultTolerantShuffleBarrier):
                    barrier.record_timeout(int(dest))
        egress = self._sizes.sum(axis=1).astype(np.float64)
        extra = (self._plan.straggler_factor - 1.0) * egress
        straggling = (self._plan.straggler_factor > 1.0) & (egress > 0)
        self.stats.stragglers += int(np.count_nonzero(straggling))
        if extra.size:
            self.stats.straggler_stall_b += float(extra.max())

    def _publish_metrics(self) -> None:
        """Mirror this session's totals into the telemetry registry."""
        reg = _registry()
        reg.counter("faults.sessions").inc()
        reg.counter("faults.retries").inc(self.stats.retries)
        reg.counter("faults.backoff_stalls").inc(self.stats.backoff_stalls)
        reg.counter("faults.duplicates_discarded").inc(
            self.stats.duplicates_discarded
        )
        reg.counter("faults.timeout_rounds").inc(self.stats.timeout_rounds)
        reg.counter("faults.stragglers").inc(self.stats.stragglers)
        reg.counter("faults.degraded_destinations").inc(
            self.stats.degraded_destinations
        )
        reg.histogram("faults.overhead_b").observe(self.stats.overhead_b)
