"""Command-line front end: ``python -m repro.service``.

Subcommands::

    python -m repro.service serve  --store DIR [--host H] [--port P] [--jobs N]
                                   [--workers N] [--fleet] [--shards N]
                                   [--replicas R] [--hedge-after S]
    python -m repro.service submit --sweep SPEC.json [--host H] [--port P]
                                   [--json OUT] [--degrade local|fail]
    python -m repro.service stats  [--host H] [--port P]
    python -m repro.service ping   [--host H] [--port P]
    python -m repro.service recover --store DIR
    python -m repro.service rebalance --store DIR [--shards N] [--replicas R]

``serve`` runs the daemon in the foreground and prints
``repro.service: serving on HOST:PORT`` once bound (``--port 0`` picks
an ephemeral port -- scripts parse that line to find it).  With
``--fleet`` it instead runs the whole evaluation fleet: ``--shards N``
member daemons over a sharded, ``--replicas R``-way replicated store at
``--store``, behind one router on HOST:PORT that health-checks, hedges
slow requests after ``--hedge-after`` seconds, fails over, and respawns
dead members -- same wire protocol, so every client below works
unchanged.  ``submit`` sends a sweep grid to a running daemon and
exports the returned ``ResultSet`` exactly like ``python -m repro.api``
does; ``stats`` and ``ping`` are one-line JSON reports.  ``recover``
runs the store's journal recovery + full verification scan offline and
prints the accounting (rolled forward / discarded / quarantined) --
fleet store roots are detected automatically and scrubbed shard by
shard.  ``rebalance`` re-replicates a fleet store offline after a shard
was lost, added, or removed (pass ``--shards``/``--replicas`` to change
the topology; omit them to heal in place).

Client subcommands share ``--retries N`` (transport retry budget for
idempotent verbs) and ``--deadline S`` (per-request budget, enforced by
the daemon too); ``submit --degrade local`` falls back to in-process
evaluation when the daemon stays unreachable.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.service.client import ServiceClient
from repro.service.daemon import DEFAULT_PORT, serve


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="H",
        help="daemon address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="P",
        help=f"daemon TCP port (default {DEFAULT_PORT})",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="transport retry budget for idempotent requests (default 2)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request deadline in seconds, enforced client- and "
             "daemon-side (default: none)",
    )


def _client(args) -> ServiceClient:
    return ServiceClient(
        args.host,
        args.port,
        retries=args.retries,
        deadline=args.deadline,
        degrade=getattr(args, "degrade", "fail"),
    )


def build_parser() -> argparse.ArgumentParser:
    """The service CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_p = commands.add_parser(
        "serve", help="run the evaluation daemon in the foreground"
    )
    _add_endpoint_args(serve_p)
    serve_p.add_argument(
        "--store", metavar="DIR",
        help="persistent result-store directory shared by all clients "
             "(default: $REPRO_STORE if set; without either, the daemon "
             "still batches and memoizes in memory)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for store misses (default 1)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="serve store misses through a supervised fleet of N "
             "persistent worker subprocesses (heartbeats, backoff "
             "restarts, crash requeue; default 0 = use --jobs pool)",
    )
    serve_p.add_argument(
        "--max-bytes", type=int, default=None, metavar="B",
        help="LRU-evict store entries beyond this total payload size",
    )
    serve_p.add_argument(
        "--fleet", action="store_true",
        help="serve a whole evaluation fleet: --shards member daemons "
             "over a sharded replicated store behind one router on "
             "HOST:PORT (requires --store)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="fleet mode: number of store shards / member daemons "
             "(default 3)",
    )
    serve_p.add_argument(
        "--replicas", type=int, default=2, metavar="R",
        help="fleet mode: copies kept of each store object (default 2)",
    )
    serve_p.add_argument(
        "--hedge-after", type=float, default=0.25, metavar="S",
        help="fleet mode: hedge a slow request to a replica owner after "
             "this many seconds (default 0.25; 0 disables hedging)",
    )

    submit_p = commands.add_parser(
        "submit", help="submit a sweep grid to a running daemon"
    )
    _add_endpoint_args(submit_p)
    _add_resilience_args(submit_p)
    submit_p.add_argument(
        "--sweep", metavar="SPEC.json", required=True,
        help="sweep grid JSON file (same format as python -m repro.api)",
    )
    submit_p.add_argument(
        "--json", metavar="PATH",
        help="write the returned ResultSet as JSON ('-' for stdout)",
    )
    submit_p.add_argument(
        "--csv", metavar="PATH",
        help="write the returned ResultSet as CSV ('-' for stdout)",
    )
    submit_p.add_argument(
        "--degrade", choices=("local", "fail"), default="fail",
        help="when the daemon stays unreachable after retries: 'local' "
             "evaluates in-process with a warning, 'fail' (default) "
             "exits with the transport error",
    )

    stats_p = commands.add_parser(
        "stats",
        help="print a running daemon's request/scheduler/store/metrics stats",
    )
    _add_endpoint_args(stats_p)
    _add_resilience_args(stats_p)
    stats_p.add_argument(
        "--json", action="store_true",
        help="emit the stats as one canonical telemetry/v1 JSON line "
             "(sorted keys, no whitespace -- byte-stable for machine "
             "consumers) instead of the indented human form",
    )

    ping_p = commands.add_parser(
        "ping", help="check a daemon is alive and which store it serves"
    )
    _add_endpoint_args(ping_p)
    _add_resilience_args(ping_p)

    recover_p = commands.add_parser(
        "recover",
        help="recover + verify a result store offline (journal roll-forward, "
             "corrupt-entry quarantine)",
    )
    recover_p.add_argument(
        "--store", metavar="DIR", required=True,
        help="result-store directory to recover and verify",
    )

    rebalance_p = commands.add_parser(
        "rebalance",
        help="re-replicate a fleet store offline (after shard loss, or to "
             "change --shards/--replicas); prints the accounting",
    )
    rebalance_p.add_argument(
        "--store", metavar="DIR", required=True,
        help="fleet store root (the directory holding fleet.json)",
    )
    rebalance_p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="new shard count (default: keep the manifest's topology)",
    )
    rebalance_p.add_argument(
        "--replicas", type=int, default=None, metavar="R",
        help="new replica count (default: keep the manifest's topology)",
    )
    return parser


def _cmd_serve(args) -> None:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")
    if args.fleet:
        from repro.service.fleet import serve_fleet

        if not args.store:
            raise SystemExit("serve --fleet requires --store DIR")
        if args.shards < 1 or args.replicas < 1:
            raise SystemExit("--shards and --replicas must be >= 1")
        serve_fleet(
            host=args.host,
            port=args.port,
            store=args.store,
            shards=args.shards,
            replicas=args.replicas,
            hedge_after=args.hedge_after if args.hedge_after > 0 else None,
        )
        return
    serve(
        host=args.host,
        port=args.port,
        store=args.store,
        jobs=args.jobs,
        max_bytes=args.max_bytes,
        workers=args.workers,
    )


def _cmd_submit(args) -> None:
    from repro.api.__main__ import export_result_set, print_summary_table

    grid = json.loads(Path(args.sweep).read_text())
    # No eager connect: sweep() connects inside its retry loop, so
    # --retries/--degrade cover the initial connection refusal too.
    client = _client(args)
    try:
        results = client.sweep(grid)
    finally:
        client.close()
    if not export_result_set(results, args.json, args.csv):
        print_summary_table(results)


def _cmd_stats(args) -> None:
    with _client(args) as client:
        stats = client.stats()
    if getattr(args, "json", False):
        from repro.telemetry import encode_snapshot

        print(encode_snapshot(stats))
    else:
        print(json.dumps(stats, indent=2, sort_keys=True))


def _cmd_ping(args) -> None:
    with _client(args) as client:
        print(json.dumps(client.ping(), indent=2, sort_keys=True))


def _cmd_recover(args) -> None:
    from repro.service.store import open_store

    # Fleet-aware: a fleet.json root verifies every shard and scrubs.
    report = open_store(args.store).verify()
    print(json.dumps(report, indent=2, sort_keys=True))


def _cmd_rebalance(args) -> None:
    from repro.service.fleet import rebalance

    report = rebalance(args.store, shards=args.shards, replicas=args.replicas)
    print(json.dumps(report, indent=2, sort_keys=True))


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "stats": _cmd_stats,
        "ping": _cmd_ping,
        "recover": _cmd_recover,
        "rebalance": _cmd_rebalance,
    }[args.command](args)


if __name__ == "__main__":
    main()
