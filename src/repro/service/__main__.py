"""Command-line front end: ``python -m repro.service``.

Subcommands::

    python -m repro.service serve  --store DIR [--host H] [--port P] [--jobs N]
                                   [--workers N]
    python -m repro.service submit --sweep SPEC.json [--host H] [--port P]
                                   [--json OUT] [--degrade local|fail]
    python -m repro.service stats  [--host H] [--port P]
    python -m repro.service ping   [--host H] [--port P]
    python -m repro.service recover --store DIR

``serve`` runs the daemon in the foreground and prints
``repro.service: serving on HOST:PORT`` once bound (``--port 0`` picks
an ephemeral port -- scripts parse that line to find it).  ``submit``
sends a sweep grid to a running daemon and exports the returned
``ResultSet`` exactly like ``python -m repro.api`` does; ``stats`` and
``ping`` are one-line JSON reports.  ``recover`` runs the store's
journal recovery + full verification scan offline and prints the
accounting (rolled forward / discarded / quarantined).

Client subcommands share ``--retries N`` (transport retry budget for
idempotent verbs) and ``--deadline S`` (per-request budget, enforced by
the daemon too); ``submit --degrade local`` falls back to in-process
evaluation when the daemon stays unreachable.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.service.client import ServiceClient
from repro.service.daemon import DEFAULT_PORT, serve


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="H",
        help="daemon address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="P",
        help=f"daemon TCP port (default {DEFAULT_PORT})",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="transport retry budget for idempotent requests (default 2)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request deadline in seconds, enforced client- and "
             "daemon-side (default: none)",
    )


def _client(args) -> ServiceClient:
    return ServiceClient(
        args.host,
        args.port,
        retries=args.retries,
        deadline=args.deadline,
        degrade=getattr(args, "degrade", "fail"),
    )


def build_parser() -> argparse.ArgumentParser:
    """The service CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_p = commands.add_parser(
        "serve", help="run the evaluation daemon in the foreground"
    )
    _add_endpoint_args(serve_p)
    serve_p.add_argument(
        "--store", metavar="DIR",
        help="persistent result-store directory shared by all clients "
             "(default: $REPRO_STORE if set; without either, the daemon "
             "still batches and memoizes in memory)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for store misses (default 1)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="serve store misses through a supervised fleet of N "
             "persistent worker subprocesses (heartbeats, backoff "
             "restarts, crash requeue; default 0 = use --jobs pool)",
    )
    serve_p.add_argument(
        "--max-bytes", type=int, default=None, metavar="B",
        help="LRU-evict store entries beyond this total payload size",
    )

    submit_p = commands.add_parser(
        "submit", help="submit a sweep grid to a running daemon"
    )
    _add_endpoint_args(submit_p)
    _add_resilience_args(submit_p)
    submit_p.add_argument(
        "--sweep", metavar="SPEC.json", required=True,
        help="sweep grid JSON file (same format as python -m repro.api)",
    )
    submit_p.add_argument(
        "--json", metavar="PATH",
        help="write the returned ResultSet as JSON ('-' for stdout)",
    )
    submit_p.add_argument(
        "--csv", metavar="PATH",
        help="write the returned ResultSet as CSV ('-' for stdout)",
    )
    submit_p.add_argument(
        "--degrade", choices=("local", "fail"), default="fail",
        help="when the daemon stays unreachable after retries: 'local' "
             "evaluates in-process with a warning, 'fail' (default) "
             "exits with the transport error",
    )

    stats_p = commands.add_parser(
        "stats",
        help="print a running daemon's request/scheduler/store/metrics stats",
    )
    _add_endpoint_args(stats_p)
    _add_resilience_args(stats_p)
    stats_p.add_argument(
        "--json", action="store_true",
        help="emit the stats as one canonical telemetry/v1 JSON line "
             "(sorted keys, no whitespace -- byte-stable for machine "
             "consumers) instead of the indented human form",
    )

    ping_p = commands.add_parser(
        "ping", help="check a daemon is alive and which store it serves"
    )
    _add_endpoint_args(ping_p)
    _add_resilience_args(ping_p)

    recover_p = commands.add_parser(
        "recover",
        help="recover + verify a result store offline (journal roll-forward, "
             "corrupt-entry quarantine)",
    )
    recover_p.add_argument(
        "--store", metavar="DIR", required=True,
        help="result-store directory to recover and verify",
    )
    return parser


def _cmd_serve(args) -> None:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")
    serve(
        host=args.host,
        port=args.port,
        store=args.store,
        jobs=args.jobs,
        max_bytes=args.max_bytes,
        workers=args.workers,
    )


def _cmd_submit(args) -> None:
    from repro.api.__main__ import export_result_set, print_summary_table

    grid = json.loads(Path(args.sweep).read_text())
    # No eager connect: sweep() connects inside its retry loop, so
    # --retries/--degrade cover the initial connection refusal too.
    client = _client(args)
    try:
        results = client.sweep(grid)
    finally:
        client.close()
    if not export_result_set(results, args.json, args.csv):
        print_summary_table(results)


def _cmd_stats(args) -> None:
    with _client(args) as client:
        stats = client.stats()
    if getattr(args, "json", False):
        from repro.telemetry import encode_snapshot

        print(encode_snapshot(stats))
    else:
        print(json.dumps(stats, indent=2, sort_keys=True))


def _cmd_ping(args) -> None:
    with _client(args) as client:
        print(json.dumps(client.ping(), indent=2, sort_keys=True))


def _cmd_recover(args) -> None:
    from repro.service.store import ResultStore

    report = ResultStore(args.store).verify()
    print(json.dumps(report, indent=2, sort_keys=True))


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "stats": _cmd_stats,
        "ping": _cmd_ping,
        "recover": _cmd_recover,
    }[args.command](args)


if __name__ == "__main__":
    main()
