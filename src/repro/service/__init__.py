"""The evaluation service: durable results, batching, serving.

This package turns the in-process experiment runtime into a shareable
service layer -- the piece that lets many CLI invocations, CI runs and
concurrent clients split one simulation bill:

- :mod:`repro.service.store` -- a **content-addressed persistent result
  store**: evaluated results as JSON documents keyed by a digest of
  their full content key (system spec, workload, seed, scale, code
  version), with atomic writes, LRU size-bounding and per-handle stats.
  Wired under ``repro.experiments.common.run_cached_result`` as the
  second cache tier (``REPRO_STORE=dir`` / ``--store``).
- :mod:`repro.service.codec` -- exact JSON round-trip for
  ``SystemResult`` documents (minus the functional output payload).
- :mod:`repro.service.scheduler` -- :class:`BatchScheduler`: batch
  submission with deduplication, store consultation, and process-pool
  fan-out for the misses.
- :mod:`repro.service.daemon` / :mod:`repro.service.client` -- an
  asyncio JSON-lines TCP daemon (``ping`` / ``evaluate`` / ``sweep`` /
  ``stats`` / ``shutdown``) and its blocking client, returning the same
  tidy :class:`~repro.api.results.ResultSet` records as in-process
  ``Sweep.run``.
- :mod:`repro.service.resilience` -- the crash-safety layer: write-ahead
  store journaling with startup recovery, a supervised worker fleet
  with heartbeats / backoff restarts / circuit breaking, client retry
  with degradation to local evaluation, and the seeded fault hooks the
  chaos harness (``make chaos-test``) drives.

Command line: ``python -m repro.service serve|submit|stats|ping|recover``
(see ``docs/USAGE.md``).
"""

from repro.service.client import (
    IDEMPOTENT_VERBS,
    ServiceClient,
    ServiceDegradedWarning,
    ServiceError,
)
from repro.service.daemon import (
    DEFAULT_PORT,
    DeadlineExceeded,
    EvaluationDaemon,
    serve,
    serve_background,
)
from repro.service.resilience import (
    CircuitBreaker,
    IntentJournal,
    RetryPolicy,
    WorkerFleet,
    WorkerTaskError,
)
from repro.service.scheduler import BatchScheduler
from repro.service.store import CODE_VERSION, ResultStore, digest_payload

__all__ = [
    "BatchScheduler",
    "CODE_VERSION",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "DeadlineExceeded",
    "EvaluationDaemon",
    "IDEMPOTENT_VERBS",
    "IntentJournal",
    "ResultStore",
    "RetryPolicy",
    "ServiceClient",
    "ServiceDegradedWarning",
    "ServiceError",
    "WorkerFleet",
    "WorkerTaskError",
    "digest_payload",
    "serve",
    "serve_background",
]
