"""The batching job scheduler: dedup, store consult, pool fan-out.

A :class:`BatchScheduler` accepts batches of :class:`~repro.api.Scenario`
points (objects or their ``to_dict`` wire form) and turns each batch
into one :class:`~repro.api.results.ResultSet`, records in submission
order:

1. **Deduplicate.**  Identical pending points in one batch collapse to
   one evaluation (scenarios are frozen dataclasses, so identity is
   value equality); every submitted position still gets its records.
2. **Consult the store.**  Operator scenarios whose digest is already in
   the persistent store are served in-process -- the store-tier lookup
   inside ``run_cached_result`` restores the evaluated result with zero
   simulation executions.
3. **Fan out misses.**  Remaining points run either through the
   existing process-pool runtime (``jobs=N``, the same worker
   ``Sweep.run`` uses) or -- with ``workers=N`` -- through a
   **supervised worker fleet**
   (:class:`~repro.service.resilience.supervisor.WorkerFleet`):
   persistent worker subprocesses that are heartbeat-monitored,
   restarted with backoff when they crash, and whose in-flight tasks
   are requeued (idempotent content-digest ids, so replays dedup
   against the store).  When the fleet's circuit breaker opens, the
   remaining tasks degrade to in-process evaluation -- a batch always
   completes.  Either way workers inherit the store handle and write
   their evaluated results back, so one batch warms the store for
   every later client.

The scheduler is the daemon's engine, but stands alone: feeding it
``Sweep(...).scenarios()`` is the programmatic batch API.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.api.results import ResultSet
from repro.api.scenario import Scenario
from repro.api.sweep import Sweep, _sweep_worker
from repro.experiments import common
from repro.telemetry import registry as _registry
from repro.telemetry import span as _span
from repro.telemetry import trace as _trace


class BatchScheduler:
    """Batches scenario evaluations over a shared persistent store."""

    def __init__(
        self,
        store: Optional[Any] = None,
        jobs: int = 1,
        max_bytes: Optional[int] = None,
        workers: int = 0,
        fleet: Optional[Any] = None,
    ) -> None:
        """``store`` is a directory path (or ``None`` to use the
        process-wide selection: ``--store`` flag / ``REPRO_STORE``);
        ``jobs`` caps the process-pool width used for store misses.

        ``workers=N`` replaces the per-batch process pool with a
        **supervised fleet** of N persistent worker subprocesses
        (spawned eagerly, reused across batches, heartbeat-monitored,
        restarted on crash); ``fleet`` injects a pre-built
        :class:`~repro.service.resilience.supervisor.WorkerFleet`
        instead (tests tighten its timeouts).  Call :meth:`close` to
        stop the fleet.

        A scheduler-owned store is **scoped**: it is installed as the
        process store only for the duration of each submission, and the
        previous selection is restored afterwards -- embedding a
        scheduler (or a background daemon) does not hijack the host
        process's caching configuration.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self._store = None
        if store is not None:
            import os

            if isinstance(store, (str, os.PathLike)):
                from repro.service.store import open_store

                # Fleet-aware: a fleet.json-carrying root opens sharded.
                self._store = open_store(store, max_bytes=max_bytes)
            else:
                self._store = store  # an already-open store handle
        self.jobs = jobs
        self._fleet = fleet
        if fleet is None and workers > 0:
            from repro.service.resilience.supervisor import WorkerFleet

            self._fleet = WorkerFleet(workers)
        self._stats = {
            "batches": 0,
            "submitted": 0,
            "deduplicated": 0,
            "store_hits": 0,
            "executed": 0,
            "degraded": 0,
        }

    @contextlib.contextmanager
    def _activated(self):
        """Install this scheduler's store for one submission window."""
        if self._store is None:
            yield common.active_store()
            return
        previous = common.store_selection()
        common.configure_store(self._store)
        try:
            yield self._store
        finally:
            common.restore_store_selection(previous)

    # -- submission ----------------------------------------------------------

    @staticmethod
    def _coerce(point: Union[Scenario, Mapping[str, Any]]) -> Scenario:
        if isinstance(point, Scenario):
            return point
        if isinstance(point, Mapping):
            return Scenario.from_dict(point)
        raise TypeError(
            f"expected a Scenario or its dict form, got {type(point).__name__}"
        )

    @staticmethod
    def _in_store(store, scenario: Scenario) -> bool:
        """Non-counting probe: is this point already evaluated on disk?"""
        if store is None or scenario.is_query:
            return False
        from repro.service.store import digest_payload

        return store.contains(
            digest_payload(
                common.result_store_payload(
                    scenario.system,
                    scenario.operator,
                    scenario.model_scale,
                    scenario.seed,
                    scenario.num_partitions,
                )
            )
        )

    def submit(
        self, points: Iterable[Union[Scenario, Mapping[str, Any]]]
    ) -> ResultSet:
        """Evaluate one batch into a :class:`ResultSet`.

        Records come back in submission order (duplicates included), so
        a batch built from a sweep grid exports byte-identically to
        ``Sweep.run``.
        """
        scenarios = [self._coerce(p) for p in points]
        unique: Dict[Scenario, None] = {}
        for scenario in scenarios:
            unique.setdefault(scenario)

        tracer = _trace.active_tracer()
        with _span(
            "batch",
            category="service",
            submitted=len(scenarios),
            unique=len(unique),
        ) as batch_sp, self._activated() as store:
            hits = [s for s in unique if self._in_store(store, s)]
            misses = [s for s in unique if s not in set(hits)]
            batch_sp.set(store_hits=len(hits), executed=len(misses))

            records: Dict[Scenario, List[Dict[str, Any]]] = {}
            # Store hits replay in-process: run_cached_result's store
            # tier restores the evaluated result with zero simulation
            # executions.
            for scenario in hits:
                records[scenario] = scenario.records()
            degraded = 0
            if self._fleet is not None and misses:
                chunks, store_delta, degraded = self._fleet.evaluate(
                    misses,
                    store=common.store_path(),
                    cache=common.cache_enabled(),
                )
                for scenario, chunk in zip(misses, chunks):
                    records[scenario] = chunk
                if store is not None and store_delta:
                    store.merge_stats(store_delta)
            elif len(misses) > 1 and self.jobs > 1:
                payloads = [
                    (s, common.cache_enabled(), common.store_path(),
                     tracer is not None)
                    for s in misses
                ]
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    for scenario, (chunk, store_delta, spans) in zip(
                        misses, pool.map(_sweep_worker, payloads)
                    ):
                        records[scenario] = chunk
                        if store is not None and store_delta:
                            store.merge_stats(store_delta)
                        if tracer is not None and spans:
                            tracer.adopt(
                                spans, parent_id=tracer.current_span_id()
                            )
            else:
                for scenario in misses:
                    records[scenario] = scenario.records()

        self._stats["batches"] += 1
        self._stats["submitted"] += len(scenarios)
        self._stats["deduplicated"] += len(scenarios) - len(unique)
        self._stats["store_hits"] += len(hits)
        self._stats["executed"] += len(misses)
        self._stats["degraded"] += degraded
        reg = _registry()
        reg.counter("service.batches").inc()
        reg.counter("service.submitted").inc(len(scenarios))
        reg.counter("service.deduplicated").inc(len(scenarios) - len(unique))
        reg.counter("service.store_hits").inc(len(hits))
        reg.counter("service.executed").inc(len(misses))
        reg.counter("service.degraded").inc(degraded)
        reg.histogram("service.batch_size").observe(len(scenarios))
        return ResultSet(r for s in scenarios for r in records[s])

    def submit_sweep(self, sweep: Union[Sweep, Mapping[str, Any]]) -> ResultSet:
        """Evaluate a whole sweep grid (or its dict form) as one batch."""
        if isinstance(sweep, Mapping):
            sweep = Sweep.from_dict(sweep)
        return self.submit(sweep.scenarios())

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Lifetime batch counters (plus dedup/store-hit/executed split).

        With a worker fleet attached, its supervision counters
        (restarts, requeues, heartbeats, circuit state, live pids) ride
        along under ``"fleet"``.
        """
        stats: Dict[str, Any] = dict(self._stats)
        if self._fleet is not None:
            stats["fleet"] = self._fleet.stats()
        return stats

    @property
    def fleet(self) -> Optional[Any]:
        """The supervised worker fleet, or ``None`` in pool/in-process mode."""
        return self._fleet

    def close(self) -> None:
        """Stop the worker fleet (if any) and flush the owned store."""
        if self._fleet is not None:
            self._fleet.close()
        if self._store is not None:
            self._store.flush()

    def store_path(self) -> Optional[str]:
        """The directory of the store this scheduler evaluates against."""
        if self._store is not None:
            return str(self._store.root)
        return common.store_path()

    def store_stats(self) -> Optional[Dict[str, int]]:
        """The backing store's counters, or ``None`` without a store."""
        if self._store is not None:
            return self._store.stats()
        return common.store_stats()
