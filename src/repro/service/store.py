"""Content-addressed persistent result store.

A :class:`ResultStore` maps a **digest** -- the SHA-256 of a canonical
JSON *key payload* -- to one JSON document on disk.  The key payload
spells out everything the stored bytes depend on (system spec, workload
kind/params/seed, model scale, plus the :data:`CODE_VERSION` salt), so
equal inputs hit the same entry from any process on the machine and a
cost-model change invalidates every old entry at once instead of
serving stale numbers.

Layout under the store root::

    <root>/
      index.json               # LRU bookkeeping: {digest: {size, tick}}
      objects/<dd>/<digest>.json   # one JSON document per entry

Layout under the store root (continued)::

      journal/<digest>.<pid>.json  # write-ahead intents (in-flight puts)
      quarantine/<digest>.json     # corrupt entries, preserved not served

Design points:

- **Atomic, durable writes.**  Every object and every index snapshot is
  written to a same-directory temporary file and ``os.replace``d into
  place, so a reader never observes a half-written entry and two
  concurrent writers of the same digest leave one intact winner (last
  writer wins; the content is identical by construction anyway).  With
  ``fsync`` enabled (the default), the temp file is fsynced *before*
  the rename and the directory after it, so a committed entry survives
  power loss; ``fsync=False`` (or ``REPRO_STORE_FSYNC=0``) is the fast
  path for tests and throwaway stores.
- **Journaled puts.**  Each object write is preceded by a write-ahead
  intent record (:class:`~repro.service.resilience.journal.IntentJournal`).
  Opening a store runs a **recovery scan**: interrupted puts are rolled
  forward (a complete temp file is renamed into place) or discarded
  (debris deleted); counts surface in :meth:`ResultStore.stats` as
  ``recovered_forward`` / ``recovered_discarded``.
- **Corruption tolerance.**  An entry that fails to parse (truncated,
  overwritten, hand-edited) is treated as a *miss* and **quarantined**
  -- moved to ``quarantine/``, never served, never silently destroyed
  (the bytes stay available for post-mortems); the ``quarantined``
  counter surfaces in ``stats``.  The index is advisory and is
  reconciled against the ``objects/`` tree whenever it disagrees, so
  deleting ``index.json`` loses nothing but recency ordering.
- **LRU size-bounding.**  With ``max_bytes`` set, least-recently-used
  entries are evicted after each put until the payload bytes fit.
  Recency is a monotonic logical tick bumped on every hit and put (not
  wall-clock time, so tests and replays are deterministic).
- **Stats.**  ``hits`` / ``misses`` / ``evictions`` / ``puts`` counters
  per store handle, surfaced by ``cache_stats()`` in the experiments
  layer, the ``stats`` verb of the serving daemon, and the CLIs.

The store knows nothing about what it holds: callers bring their own
codec (see :mod:`repro.service.codec` for ``SystemResult`` documents).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.service.resilience.journal import (
    IntentJournal,
    atomic_write_text,
    fsync_dir,
)

#: Environment switch for the durability fast path: ``0`` disables the
#: fsync-before-rename discipline process-wide (tests, scratch stores).
FSYNC_ENV = "REPRO_STORE_FSYNC"

#: Salt folded into every digest.  Bump when the cost model or the
#: stored document schema changes meaning: old entries then simply stop
#: matching instead of replaying outdated results.
CODE_VERSION = "mondrian-store-v1"


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical text form a digest is computed over.

    Keys are sorted recursively and separators are fixed, so two dicts
    with equal content -- whatever their insertion order -- serialize to
    identical bytes (pinned by tests).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest_payload(payload: Mapping[str, Any]) -> str:
    """Content address of a key payload: SHA-256 over canonical JSON."""
    text = canonical_json({"code_version": CODE_VERSION, **payload})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _atomic_write_text(path: Path, text: str, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename.

    With ``fsync`` (the default) the write is also *durable*: the temp
    file is fsynced before the rename and the directory after it.  Kept
    as the store's historical entry point; the implementation lives in
    :func:`repro.service.resilience.journal.atomic_write_text`.
    """
    atomic_write_text(path, text, fsync=fsync)


def _default_fsync() -> bool:
    return os.environ.get(FSYNC_ENV, "1") != "0"


def _parses_as_json(path: Path) -> bool:
    """Is this file a complete JSON document? (The journal's validator.)"""
    try:
        json.loads(path.read_bytes())
        return True
    except (OSError, ValueError):
        return False


def open_store(
    root: os.PathLike,
    max_bytes: Optional[int] = None,
    fsync: Optional[bool] = None,
):
    """Open the store at ``root``, fleet-aware.

    A directory carrying a ``fleet.json`` manifest opens as a
    :class:`~repro.service.fleet.sharded.ShardedResultStore` (N shards,
    R replicas, read-repair); anything else opens as a plain
    :class:`ResultStore`.  Every path-based entry point -- ``--store``
    flags, ``REPRO_STORE``, worker store propagation, ``recover`` --
    routes through here, so a fleet root is a drop-in store directory.
    """
    if os.path.isfile(os.path.join(os.fspath(root), "fleet.json")):
        from repro.service.fleet.sharded import ShardedResultStore

        return ShardedResultStore(root, max_bytes=max_bytes, fsync=fsync)
    return ResultStore(root, max_bytes=max_bytes, fsync=fsync)


class ResultStore:
    """A content-addressed, size-bounded, on-disk JSON document store."""

    def __init__(
        self,
        root: os.PathLike,
        max_bytes: Optional[int] = None,
        fsync: Optional[bool] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._quarantine_dir = self._root / "quarantine"
        self._index_path = self._root / "index.json"
        self._max_bytes = max_bytes
        self._fsync = _default_fsync() if fsync is None else bool(fsync)
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "puts": 0,
            "quarantined": 0,
            "recovered_forward": 0,
            "recovered_discarded": 0,
        }
        self._objects.mkdir(parents=True, exist_ok=True)
        # One handle may be shared across threads (the daemon answers
        # read verbs while a batch writes); every public operation takes
        # this lock, so the in-memory index never tears.
        self._lock = threading.RLock()
        self._journal = IntentJournal(self._root, fsync=self._fsync)
        self._recover()
        self._tick, self._entries = self._load_index()
        self._index_dirty = False
        self._reconcile()

    def _recover(self) -> None:
        """Startup recovery scan: settle every surviving write intent."""
        counts = self._journal.recover(
            validate=_parses_as_json, quarantine=self._quarantine
        )
        self._stats["recovered_forward"] += counts["rolled_forward"]
        self._stats["recovered_discarded"] += counts["discarded"]

    # -- identity ------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @property
    def max_bytes(self) -> Optional[int]:
        return self._max_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        bound = f", max_bytes={self._max_bytes}" if self._max_bytes else ""
        return f"ResultStore({str(self._root)!r}, {len(self)} entries{bound})"

    # -- index bookkeeping ---------------------------------------------------

    def _load_index(self):
        try:
            data = json.loads(self._index_path.read_text())
            entries = {
                str(d): {"size": int(e["size"]), "tick": int(e["tick"])}
                for d, e in data["entries"].items()
            }
            return int(data["tick"]), entries
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt index: rebuilt from the objects tree.
            return 0, {}

    def _save_index(self) -> None:
        # The index is advisory (rebuilt from the objects tree), so it
        # rides the fast path even on durable stores: an index lost to a
        # crash costs recency ordering, nothing else.
        _atomic_write_text(
            self._index_path,
            json.dumps({"tick": self._tick, "entries": self._entries}),
            fsync=False,
        )
        self._index_dirty = False

    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def _reconcile(self) -> None:
        """Make the index agree with the objects actually on disk.

        Entries another process wrote are adopted (oldest-first by file
        mtime, below every known tick, so they evict before anything this
        handle has touched); entries whose file vanished are dropped, and
        known entries' sizes are refreshed from disk.
        """
        on_disk = {}
        for path in self._objects.glob("*/*.json"):
            try:
                on_disk[path.stem] = path.stat()
            except OSError:
                continue
        for digest in list(self._entries):
            if digest not in on_disk:
                del self._entries[digest]
            else:
                self._entries[digest]["size"] = on_disk[digest].st_size
        unknown = sorted(
            (d for d in on_disk if d not in self._entries),
            key=lambda d: (on_disk[d].st_mtime, d),
        )
        for order, digest in enumerate(unknown):
            self._entries[digest] = {
                "size": on_disk[digest].st_size,
                "tick": -len(unknown) + order,
            }

    def _touch(self, digest: str, size: Optional[int] = None) -> None:
        self._tick += 1
        entry = self._entries.setdefault(digest, {"size": 0, "tick": self._tick})
        entry["tick"] = self._tick
        if size is not None:
            entry["size"] = size

    # -- the store protocol --------------------------------------------------

    def contains(self, digest: str) -> bool:
        """Probe for an entry without touching stats or recency."""
        return self._object_path(digest).is_file()

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored document, or ``None`` on a miss.

        A present-but-unparseable entry (truncated write from a killed
        process, manual corruption) counts as a miss and is removed so
        the next put can heal it.
        """
        path = self._object_path(digest)
        try:
            raw = path.read_bytes()
            document = json.loads(raw)
        except FileNotFoundError:
            with self._lock:
                self._stats["misses"] += 1
            return None
        except (OSError, ValueError):
            # Never serve a torn entry -- and never silently destroy it
            # either: quarantine preserves the bytes for post-mortems
            # while the next put heals the slot.
            with self._lock:
                self._stats["misses"] += 1
                self._quarantine(path)
                self._entries.pop(digest, None)
                self._save_index()
            return None
        with self._lock:
            self._stats["hits"] += 1
            # Recency is bumped in memory only: the index is advisory,
            # and rewriting it per hit would make warm replays
            # disk-bound.  The next put (or an explicit flush) persists
            # the accumulated ticks.  The size rides along so entries
            # first seen via get() (a pool worker's write) count toward
            # the eviction budget at their real size, not zero.
            self._touch(digest, size=len(raw))
            self._index_dirty = True
        return document

    def put(self, digest: str, document: Mapping[str, Any]) -> Path:
        """Store one JSON document under its digest (idempotent).

        The write is **journaled**: an intent record naming the temp and
        final paths is persisted first, so a ``kill -9`` anywhere inside
        the put is settled by the next open's recovery scan -- rolled
        forward if the temp file was complete, discarded otherwise.
        The temp name carries the pid, so concurrent writers of the
        same digest never share (or tear) a temp file.
        """
        path = self._object_path(digest)
        text = json.dumps(document, sort_keys=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        with self._journal.intent(digest, final=path, tmp=tmp):
            try:
                with open(tmp, "w") as fh:
                    fh.write(text)
                    if self._fsync:
                        fh.flush()
                        os.fsync(fh.fileno())
                os.replace(tmp, path)
                if self._fsync:
                    fsync_dir(path.parent)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        with self._lock:
            self._stats["puts"] += 1
            self._touch(digest, size=len(text))
            self._evict_to_budget(keep=digest)
            self._save_index()
        return path

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt object aside where it can never be served."""
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self._quarantine_dir / path.name)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()
        self._stats["quarantined"] += 1

    def _drop(self, digest: str) -> None:
        try:
            self._object_path(digest).unlink()
        except OSError:
            pass
        self._entries.pop(digest, None)

    def discard(self, digest: str) -> None:
        """Remove one entry outright (fleet rebalance pruning).

        Unlike quarantine this *is* destruction -- only callers that
        hold (or just wrote) another replica of the digest use it.
        """
        with self._lock:
            self._drop(digest)
            self._save_index()

    def _evict_to_budget(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        The just-written entry (``keep``) survives even when it alone
        exceeds the budget: evicting the result a caller is about to
        rely on would turn every oversized put into a permanent miss.

        The budget is enforced against this handle's view of the store
        (sizes are tracked incrementally by put/get and refreshed by the
        reconciles at init and :meth:`stats`); scanning the objects tree
        on every put would make cold runs quadratic in entry count.
        """
        if self._max_bytes is None:
            return
        while self.total_bytes() > self._max_bytes and len(self._entries) > 1:
            victim = min(
                (d for d in self._entries if d != keep),
                key=lambda d: self._entries[d]["tick"],
                default=None,
            )
            if victim is None:
                return
            self._drop(victim)
            self._stats["evictions"] += 1

    # -- introspection -------------------------------------------------------

    def flush(self) -> None:
        """Persist any recency ticks accumulated by pure reads."""
        with self._lock:
            if self._index_dirty:
                self._save_index()

    @property
    def fsync(self) -> bool:
        return self._fsync

    @property
    def quarantine_dir(self) -> Path:
        return self._quarantine_dir

    def quarantined(self) -> Iterator[str]:
        """Names of quarantined entries (digest filenames), sorted."""
        if not self._quarantine_dir.is_dir():
            return iter(())
        return iter(sorted(p.name for p in self._quarantine_dir.glob("*.json")))

    def verify(self) -> Dict[str, int]:
        """Full integrity scan: settle intents, validate every object.

        Walks the whole objects tree (not just journaled paths),
        quarantines anything that fails to parse, and reports what it
        found.  This is the explicit, heavyweight counterpart of the
        automatic startup recovery scan -- the chaos harness and the
        ``recover`` CLI call it to prove no torn write can ever be
        served.
        """
        with self._lock:
            recovered = self._journal.recover(
                validate=_parses_as_json, quarantine=self._quarantine
            )
            self._stats["recovered_forward"] += recovered["rolled_forward"]
            self._stats["recovered_discarded"] += recovered["discarded"]
            checked = corrupt = 0
            for path in sorted(self._objects.glob("*/*.json")):
                checked += 1
                if not _parses_as_json(path):
                    self._quarantine(path)
                    self._entries.pop(path.stem, None)
                    corrupt += 1
            debris = 0
            for tmp in self._objects.glob("*/.*.tmp"):
                # Unjournaled leftovers (pre-journal stores, interrupted
                # index writes): plain debris, safe to delete.
                with contextlib.suppress(OSError):
                    tmp.unlink()
                    debris += 1
            self._reconcile()
            self._save_index()
            return {
                "checked": checked,
                "quarantined_now": corrupt,
                "quarantined_total": self._stats["quarantined"],
                "rolled_forward": self._stats["recovered_forward"],
                "discarded": self._stats["recovered_discarded"],
                "debris_removed": debris,
                "entries": len(self._entries),
            }

    def digests(self) -> Iterator[str]:
        """Known digests, least-recently-used first."""
        with self._lock:
            return iter(
                sorted(self._entries, key=lambda d: self._entries[d]["tick"])
            )

    def total_bytes(self) -> int:
        with self._lock:
            return sum(e["size"] for e in self._entries.values())

    def merge_stats(self, counters: Mapping[str, int]) -> None:
        """Fold another handle's counters into this one.

        The process-pool runtime evaluates in workers, each with its own
        handle on the same directory; merging their counters back gives
        the parent the true traffic totals of the run.
        """
        with self._lock:
            for name in self._stats:
                self._stats[name] += int(counters.get(name, 0))

    def counters(self) -> Dict[str, int]:
        """Just the hit/miss/eviction/put counters -- O(1), no I/O.

        For hot paths (per-task worker deltas, health checks) that must
        not pay :meth:`stats`'s objects-tree reconcile.
        """
        with self._lock:
            return dict(self._stats)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/put counters plus current occupancy.

        Occupancy is reconciled against the objects tree first (an
        O(entries) directory scan), so entries other processes (pool
        workers, concurrent CLIs) wrote are counted; use
        :meth:`counters` where occupancy is not needed.
        """
        with self._lock:
            self._reconcile()
            return dict(
                self._stats, entries=len(self._entries), bytes=self.total_bytes()
            )
