"""Async pipelined client for the evaluation daemon and fleet router.

:class:`AsyncServiceClient` is the coroutine-native counterpart of the
blocking :class:`~repro.service.client.ServiceClient` -- same wire
protocol, same verbs, same failure semantics -- built for the fan-out
the fleet exists to absorb: **thousands of concurrent requests** from
one process.

- **Pipelining.**  Requests are multiplexed over a small pool of
  persistent connections; on each connection, requests are written
  back-to-back and responses are matched to callers in FIFO order (the
  daemon answers one connection's requests strictly in order).  A
  thousand in-flight evaluates need ``max_connections`` sockets, not a
  thousand.
- **The idempotent-verb retry matrix.**  ``ping``/``stats``/
  ``evaluate``/``sweep`` survive transport failure: a *reused*
  connection gets one free reconnect-and-resend (a daemon restart
  between calls is invisible), then up to ``retries`` fresh attempts
  with :class:`~repro.service.resilience.retry.RetryPolicy` backoff.
  ``shutdown`` is never resent.  Daemon-reported errors raise
  :class:`~repro.service.client.ServiceError` and are never retried.
- **Per-request deadlines.**  ``deadline`` (constructor default or
  per-call override) is enforced locally with ``asyncio.wait_for`` and
  propagated on the wire as ``deadline_s`` (recomputed to the
  *remaining* budget before each resend), so the daemon refuses to
  start work for a caller whose budget already lapsed.

A timed-out or broken connection is discarded wholesale -- its other
in-flight requests fail over to fresh connections through the same
retry matrix, which is safe precisely because the retried verbs are
idempotent (content-addressed evaluates dedup against the store).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api.results import ResultSet
from repro.api.scenario import Scenario
from repro.api.sweep import Sweep
from repro.service.client import IDEMPOTENT_VERBS, ServiceError
from repro.service.daemon import DEFAULT_PORT
from repro.service.resilience.retry import RetryPolicy

_MAX_LINE = 16 * 1024 * 1024


class _PipelinedConnection:
    """One socket carrying many in-flight requests, answered in order."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._pending: deque = deque()
        self._read_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self.closed = False
        self.used = False  # a request has completed on this socket

    async def open(self, timeout: Optional[float]) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port, limit=_MAX_LINE),
            timeout=timeout,
        )
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionResetError(
                        f"daemon at {self.host}:{self.port} closed the connection"
                    )
                response = json.loads(line)
                if self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(response)
        except asyncio.CancelledError:
            self._fail(ConnectionAbortedError("connection closed"))
            raise
        except Exception as exc:  # noqa: BLE001 - fans out to the callers
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        self.closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    exc if isinstance(exc, OSError) else ConnectionError(str(exc))
                )

    async def request(self, payload: Dict[str, Any]) -> Any:
        """Enqueue one request; resolves with the decoded response."""
        if self.closed:
            raise ConnectionResetError("connection already closed")
        future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            if self.closed:
                raise ConnectionResetError("connection already closed")
            self._pending.append(future)
            try:
                self._writer.write((json.dumps(payload) + "\n").encode("utf-8"))
                await self._writer.drain()
            except OSError:
                self._fail(ConnectionResetError("write failed"))
                raise
        response = await future
        self.used = True
        return response

    async def close(self) -> None:
        self.closed = True
        if self._read_task is not None:
            self._read_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._read_task
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(OSError):
                await self._writer.wait_closed()


class AsyncServiceClient:
    """Pipelined asyncio client; point it at a daemon or a fleet router.

    ``max_connections`` caps the socket pool (in-flight requests are
    unbounded -- they pipeline); ``retries``/``retry_policy`` shape the
    idempotent-verb retry loop; ``deadline`` is the default per-request
    budget in seconds, overridable per call.  Use as an async context
    manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        retries: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        max_connections: int = 8,
        rng=None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(retries=retries)
        )
        self.deadline = deadline
        self.max_connections = max_connections
        self._rng = rng
        self._conns: List[Optional[_PipelinedConnection]] = [None] * max_connections
        self._cursor = 0
        self._conn_lock: Optional[asyncio.Lock] = None
        self.resilience: Dict[str, int] = {
            "retries": 0,
            "reconnects": 0,
        }

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        for i, conn in enumerate(self._conns):
            self._conns[i] = None
            if conn is not None:
                await conn.close()

    # -- the pool ------------------------------------------------------------

    async def _connection(self) -> _PipelinedConnection:
        """Round-robin over the pool, (re)opening slots as needed."""
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            self._cursor = (self._cursor + 1) % self.max_connections
            slot = self._cursor
            conn = self._conns[slot]
            if conn is None or conn.closed:
                conn = _PipelinedConnection(self.host, self.port)
                await conn.open(self.timeout)
                self._conns[slot] = conn
            return conn

    # -- the retry matrix ----------------------------------------------------

    async def call(
        self, verb: str, deadline: Optional[float] = None, **payload: Any
    ) -> Any:
        """One request/response; idempotent verbs survive transport loss.

        Mirrors the blocking client's matrix: daemon-reported errors
        (:class:`ServiceError`) are terminal; a reused connection earns
        one free reconnect-and-resend; fresh transport failures are
        retried ``retries`` times with backoff; ``shutdown`` never
        resends.  The remaining deadline rides as ``deadline_s``.
        """
        request = {"verb": verb, **payload}
        budget = deadline if deadline is not None else self.deadline
        started = time.monotonic()
        idempotent = verb in IDEMPOTENT_VERBS
        if budget is not None and idempotent:
            request.setdefault("deadline_s", budget)
        attempts = (1 + self.retries) if idempotent else 1
        resend_spent = False
        attempt = 0
        while True:
            conn = None
            reused = False
            try:
                conn = await self._connection()
                reused = conn.used
                remaining = None
                if budget is not None:
                    remaining = budget - (time.monotonic() - started)
                    if remaining <= 0:
                        raise asyncio.TimeoutError(
                            f"deadline of {budget}s exhausted before send"
                        )
                response = await asyncio.wait_for(
                    conn.request(request), timeout=remaining
                )
            except asyncio.TimeoutError:
                # The FIFO is now misaligned for everything behind this
                # request: the whole connection must go.
                if conn is not None:
                    with contextlib.suppress(Exception):
                        await conn.close()
                raise
            except (OSError, ValueError, ConnectionError) as exc:
                if not idempotent:
                    raise
                if budget is not None:
                    remaining = budget - (time.monotonic() - started)
                    if remaining <= 0:
                        raise
                    request["deadline_s"] = remaining
                if reused and not resend_spent:
                    resend_spent = True
                    self.resilience["reconnects"] += 1
                    continue
                attempt += 1
                if attempt >= attempts:
                    raise
                self.resilience["retries"] += 1
                await asyncio.sleep(
                    self.retry_policy.delay(attempt - 1, rng=self._rng)
                )
                continue
            if not response.get("ok"):
                raise ServiceError(response.get("error", "unknown daemon error"))
            return response["result"]

    # -- verbs ---------------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        """Daemon/router identity (service name, version, pid, members)."""
        return await self.call("ping")

    async def stats(self) -> Dict[str, Any]:
        """Request counters plus scheduler/store/fleet statistics."""
        return await self.call("stats")

    async def evaluate(
        self,
        scenario: Union[Scenario, Mapping[str, Any]],
        deadline: Optional[float] = None,
    ) -> ResultSet:
        """Evaluate one scenario remotely."""
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        result = await self.call(
            "evaluate", deadline=deadline, scenario=dict(scenario)
        )
        return ResultSet(result["records"])

    async def sweep(
        self,
        sweep: Union[Sweep, Mapping[str, Any]],
        deadline: Optional[float] = None,
    ) -> ResultSet:
        """Evaluate a whole sweep grid remotely."""
        if isinstance(sweep, Sweep):
            sweep = sweep.to_dict()
        result = await self.call("sweep", deadline=deadline, sweep=dict(sweep))
        return ResultSet(result["records"])

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon/router to stop serving.  Never retried."""
        return await self.call("shutdown")
