"""The fleet front door: one router, many member daemons.

A :class:`FleetRouter` is a lightweight asyncio daemon speaking the
exact newline-delimited JSON protocol of a single evaluation daemon --
existing clients (``ServiceClient``, ``python -m repro.service
submit``, the async client) point at the router and cannot tell the
difference -- while behind it, ``N`` ordinary member daemons (one per
store shard, all sharing the sharded store) do the evaluating:

- **Routing by shard ownership.**  An ``evaluate`` request's scenario
  digests to the same content address the store uses; the member
  co-located with the digest's primary owner shard gets the request,
  so the store probe is a local read on the data's home shard.
- **Hedging.**  If the routed member has not answered within
  ``hedge_after`` seconds, the request is *also* sent to the replica
  owner and the first success wins (safe: ``evaluate``/``sweep`` are
  idempotent by content address).  Tail latency becomes the minimum of
  two samples instead of a lost cause.
- **Failover & health.**  Member failures trip a per-member
  :class:`~repro.service.resilience.retry.CircuitBreaker`; a health
  loop pings members, notices dead processes, and **respawns** members
  the router spawned (backoff-paced by the shared
  :class:`~repro.service.resilience.retry.RetryPolicy`).  Requests
  simply fail over along the owner list and then to any live member.
- **Graceful degradation.**  With every member gone, the router
  evaluates in-process against the sharded store itself.  A request is
  never failed for lack of a healthy member.
- **Sweep fan-out.**  A ``sweep`` is expanded into per-scenario
  requests, routed concurrently (bounded in-flight), and reassembled
  in grid order -- so a fleet-served sweep exports byte-identically to
  a single-daemon or in-process run.

``serve_fleet`` is the ``python -m repro.service serve --fleet`` entry
point; ``start_fleet_background`` is the test/doctest form.  Hedge,
failover, respawn and degrade events are counted in the telemetry
registry (``service.fleet.*``) and surface through ``stats`` /
``runtime_snapshot()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.fleet.ring import HashRing, shard_name
from repro.service.fleet.sharded import ShardedResultStore
from repro.service.resilience.retry import CircuitBreaker, RetryPolicy
from repro.version import __version__

_MAX_LINE = 16 * 1024 * 1024

#: Daemon-reported error prefix: the member answered, the *request* is
#: bad -- failing over a deterministic error would just replay it.
_DAEMON_ERROR = "daemon-error:"


def _count(name: str, amount: int = 1) -> None:
    from repro.telemetry import registry

    registry().counter(f"service.fleet.{name}").inc(amount)


class MemberError(RuntimeError):
    """Transport-level loss of a member (connect/read/decode failure)."""


class Member:
    """One member daemon: address, optional owned process, health state."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        proc: Optional[subprocess.Popen] = None,
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.proc = proc
        self.breaker = CircuitBreaker(failure_threshold=3, reset_after=1.0)
        self.crashes = 0  # consecutive; paces respawn backoff

    @property
    def shard(self) -> str:
        return shard_name(self.index)

    @property
    def alive(self) -> bool:
        return self.proc is None or self.proc.poll() is None

    def describe(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "shard": self.shard,
            "host": self.host,
            "port": self.port,
            "pid": self.proc.pid if self.proc is not None else None,
            "alive": self.alive,
            "circuit": self.breaker.state,
        }


def spawn_member(store_root: str, host: str = "127.0.0.1") -> Tuple[str, int, subprocess.Popen]:
    """Start one member daemon on an ephemeral port; returns its address.

    Members are plain ``python -m repro.service serve`` processes: the
    fleet manifest in ``store_root`` is what makes their scheduler open
    the sharded store -- no member-specific flags exist to get wrong.
    """
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not current else src + os.pathsep + current
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--host", host, "--port", "0", "--store", str(store_root),
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"serving on ([\w.]+):(\d+)", banner or "")
    if not match:
        proc.kill()
        raise RuntimeError(f"member daemon failed to announce: {banner!r}")
    return match.group(1), int(match.group(2)), proc


class FleetRouter:
    """Routes evaluation requests across member daemons (asyncio)."""

    def __init__(
        self,
        members: Sequence[Member],
        ring: Optional[HashRing] = None,
        store: Optional[ShardedResultStore] = None,
        hedge_after: Optional[float] = 0.25,
        member_timeout: float = 300.0,
        health_interval: float = 1.0,
        health_timeout: float = 5.0,
        max_inflight: int = 32,
        respawn: bool = True,
        respawn_backoff: Optional[RetryPolicy] = None,
    ) -> None:
        if not members:
            raise ValueError("a fleet needs at least one member")
        self.members = list(members)
        self.store = store
        self.ring = ring if ring is not None else HashRing(
            [m.shard for m in self.members],
            replicas=store.replicas if store is not None else 2,
        )
        self._by_shard = {m.shard: m for m in self.members}
        self.hedge_after = hedge_after
        self.member_timeout = member_timeout
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.max_inflight = max_inflight
        self.respawn = respawn
        self.backoff = respawn_backoff if respawn_backoff is not None else RetryPolicy(
            base_delay=0.05, max_delay=2.0, jitter=0.0
        )
        self.stopping = False
        self.requests: Dict[str, int] = {}
        self.counters = {
            "routed": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "failovers": 0,
            "degraded": 0,
            "respawns": 0,
            "member_failures": 0,
        }
        self._rr = 0  # round-robin cursor for digestless requests
        self._local_lock: Optional[asyncio.Lock] = None  # built on the loop
        self._inflight: Optional[asyncio.Semaphore] = None

    # -- the member wire -----------------------------------------------------

    async def _member_call(
        self, member: Member, request: Dict[str, Any], timeout: float
    ) -> Any:
        """One request/response round trip to one member.

        A fresh connection per call: hedges and failovers must never
        share transport state with the attempt they are racing, and a
        SIGKILLed member then fails fast with a refused connect instead
        of a wedged reused socket.
        """
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(member.host, member.port, limit=_MAX_LINE),
                timeout=min(timeout, 10.0),
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise MemberError(f"member {member.index} unreachable: {exc}") from exc
        try:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise MemberError(f"member {member.index} lost mid-call: {exc}") from exc
        finally:
            writer.close()
            with contextlib.suppress(OSError):
                await writer.wait_closed()
        if not line:
            raise MemberError(f"member {member.index} closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise MemberError(f"member {member.index} spoke garbage") from exc
        if not response.get("ok"):
            # The member *answered*: a deterministic request error that
            # must surface to the client, not fail over.
            raise RuntimeError(
                f"{_DAEMON_ERROR} {response.get('error', 'unknown error')}"
            )
        return response["result"]

    # -- placement -----------------------------------------------------------

    def _scenario_digest(self, scenario: Dict[str, Any]) -> Optional[str]:
        """The scenario's store content address (None for query plans)."""
        from repro.api.scenario import Scenario
        from repro.experiments import common
        from repro.service.store import digest_payload

        try:
            point = Scenario.from_dict(scenario)
        except (KeyError, TypeError, ValueError):
            return None  # the member daemon will report the real error
        if point.is_query:
            return None
        return digest_payload(
            common.result_store_payload(
                point.system,
                point.operator,
                point.model_scale,
                point.seed,
                point.num_partitions,
            )
        )

    def _candidates(self, digest: Optional[str]) -> List[Member]:
        """Members in routing preference order for one digest.

        Owner members first (primary, then replicas -- the hedge
        target), then every other member; within each class, members
        whose circuit allows traffic come first.  The list always
        contains every member: a fully tripped fleet is still *tried*
        before the router degrades to local evaluation.
        """
        if digest is not None:
            owner_shards = self.ring.owners(digest)
            owners = [self._by_shard[s] for s in owner_shards if s in self._by_shard]
        else:
            owners = []
            if self.members:
                self._rr += 1
                owners = [self.members[self._rr % len(self.members)]]
        rest = [m for m in self.members if m not in owners]
        ordered = owners + rest
        return (
            [m for m in ordered if m.alive and m.breaker.allow()]
            + [m for m in ordered if not (m.alive and m.breaker.allow())]
        )

    # -- hedged, failing-over dispatch ---------------------------------------

    async def _route(
        self, request: Dict[str, Any], digest: Optional[str]
    ) -> Any:
        """Send one idempotent request along the candidate list.

        The current candidate races a hedge to the next one after
        ``hedge_after`` seconds of silence; transport failures fail
        over down the list; daemon-reported errors surface immediately.
        Exhausting every member degrades to local evaluation.
        """
        candidates = self._candidates(digest)
        self.counters["routed"] += 1
        errors: List[BaseException] = []
        idx = 0
        while idx < len(candidates):
            primary = candidates[idx]
            tasks: Dict[asyncio.Task, Member] = {
                asyncio.ensure_future(
                    self._member_call(primary, request, self.member_timeout)
                ): primary
            }
            if self.hedge_after is not None and idx + 1 < len(candidates):
                done, _ = await asyncio.wait(
                    set(tasks), timeout=self.hedge_after
                )
                if not done:
                    hedge = candidates[idx + 1]
                    self.counters["hedges"] += 1
                    _count("hedges")
                    tasks[
                        asyncio.ensure_future(
                            self._member_call(hedge, request, self.member_timeout)
                        )
                    ] = hedge
            racing = set(tasks)
            first = next(iter(tasks.values()))
            while racing:
                done, racing = await asyncio.wait(
                    racing, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    member = tasks[task]
                    if exc is None:
                        member.breaker.record_success()
                        member.crashes = 0
                        if member is not first:
                            self.counters["hedge_wins"] += 1
                            _count("hedge_wins")
                        for loser in racing:
                            loser.cancel()
                        return task.result()
                    if isinstance(exc, MemberError):
                        member.breaker.record_failure()
                        self.counters["member_failures"] += 1
                        _count("member_failures")
                        errors.append(exc)
                    else:
                        # Daemon-reported: deterministic, do not retry.
                        for loser in racing:
                            loser.cancel()
                        raise exc
            idx += len(tasks)
            if idx < len(candidates):
                self.counters["failovers"] += 1
                _count("failovers")
        return await self._degrade(request, errors)

    async def _degrade(
        self, request: Dict[str, Any], errors: List[BaseException]
    ) -> Any:
        """Every member is gone: evaluate in-process, against the store."""
        scenario = request.get("scenario")
        if not isinstance(scenario, dict):
            raise errors[-1] if errors else MemberError("no members available")
        self.counters["degraded"] += 1
        _count("degraded")
        loop = asyncio.get_running_loop()
        async with self._local_lock:
            return await loop.run_in_executor(None, self._evaluate_local, scenario)

    def _evaluate_local(self, scenario: Dict[str, Any]) -> Dict[str, Any]:
        from repro.api.scenario import Scenario
        from repro.experiments import common

        if self.store is None:
            return {"records": Scenario.from_dict(scenario).records()}
        previous = common.store_selection()
        common.configure_store(self.store)
        try:
            return {"records": Scenario.from_dict(scenario).records()}
        finally:
            common.restore_store_selection(previous)

    # -- verbs ---------------------------------------------------------------

    async def dispatch(self, request: Any) -> Any:
        if not isinstance(request, dict) or "verb" not in request:
            raise ValueError('requests are JSON objects with a "verb" key')
        verb = request["verb"]
        handler = (
            getattr(self, f"_verb_{verb.replace('-', '_')}", None)
            if isinstance(verb, str)
            else None
        )
        if handler is None:
            raise ValueError(f"unknown verb {verb!r}")
        self.requests[verb] = self.requests.get(verb, 0) + 1
        return await handler(request)

    async def _verb_ping(self, request: Any) -> Dict[str, Any]:
        return {
            "service": "repro.service.fleet",
            "version": __version__,
            "pid": os.getpid(),
            "store": str(self.store.root) if self.store is not None else None,
            "shards": len(self.members),
            "replicas": self.ring.replicas,
            "members": [m.describe() for m in self.members],
        }

    async def _verb_evaluate(self, request: Any) -> Any:
        scenario = request.get("scenario")
        if not isinstance(scenario, dict):
            raise ValueError('evaluate needs a "scenario" object')
        digest = self._scenario_digest(scenario)
        async with self._inflight:
            return await self._route(request, digest)

    async def _verb_sweep(self, request: Any) -> Dict[str, Any]:
        from repro.api.sweep import Sweep
        from repro.telemetry import span as _span

        grid = request.get("sweep")
        if not isinstance(grid, dict):
            raise ValueError('sweep needs a "sweep" grid object')
        with _span("fleet_sweep", category="service"):
            scenarios = [s.to_dict() for s in Sweep.from_dict(grid).scenarios()]

        async def one(scenario: Dict[str, Any]) -> List[Dict[str, Any]]:
            sub = {"verb": "evaluate", "scenario": scenario}
            if "deadline_s" in request:
                sub["deadline_s"] = request["deadline_s"]
            digest = self._scenario_digest(scenario)
            async with self._inflight:
                result = await self._route(sub, digest)
            return result["records"]

        chunks = await asyncio.gather(*(one(s) for s in scenarios))
        return {"records": [r for chunk in chunks for r in chunk]}

    async def _verb_stats(self, request: Any) -> Dict[str, Any]:
        from repro.telemetry import registry

        members: Dict[str, Any] = {}
        for member in self.members:
            try:
                members[member.shard] = await self._member_call(
                    member, {"verb": "stats"}, timeout=self.health_timeout
                )
            except (MemberError, RuntimeError) as exc:
                members[member.shard] = {"error": str(exc)}
        return {
            "requests": dict(self.requests),
            "router": dict(
                self.counters, members=[m.describe() for m in self.members]
            ),
            "store": self.store.stats() if self.store is not None else None,
            "members": members,
            "metrics": registry().snapshot(),
        }

    async def _verb_shutdown(self, request: Any) -> Dict[str, Any]:
        self.stopping = True
        return {"stopping": True}

    # -- health & self-healing -----------------------------------------------

    async def _health_check(self) -> None:
        """One pass: ping every member, respawn owned dead processes."""
        for member in self.members:
            if member.proc is not None and member.proc.poll() is not None:
                await self._respawn(member)
                continue
            try:
                await self._member_call(
                    member, {"verb": "ping"}, timeout=self.health_timeout
                )
                member.breaker.record_success()
                member.crashes = 0
            except (MemberError, RuntimeError):
                member.breaker.record_failure()
                self.counters["member_failures"] += 1
                _count("member_failures")

    async def _respawn(self, member: Member) -> None:
        """Replace a dead owned member, paced by per-member backoff."""
        if not self.respawn or self.store is None:
            return
        await asyncio.sleep(self.backoff.delay(member.crashes))
        member.crashes += 1
        loop = asyncio.get_running_loop()
        try:
            host, port, proc = await loop.run_in_executor(
                None, spawn_member, str(self.store.root), member.host
            )
        except RuntimeError:
            member.breaker.record_failure()
            return
        member.host, member.port, member.proc = host, port, proc
        member.breaker.record_success()
        self.counters["respawns"] += 1
        _count("respawns")

    async def _health_loop(self) -> None:
        while not self.stopping:
            await asyncio.sleep(self.health_interval)
            with contextlib.suppress(Exception):
                await self._health_check()

    def stop_members(self) -> None:
        """Shut down every member the router owns (spawned itself)."""
        for member in self.members:
            if member.proc is None:
                continue
            if member.proc.poll() is None:
                try:
                    from repro.service.client import ServiceClient, ServiceError

                    with ServiceClient(member.host, member.port, timeout=5.0,
                                       retries=0) as client:
                        client.shutdown()
                except (OSError, ServiceError, ValueError):
                    pass
            try:
                member.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                member.proc.kill()
                with contextlib.suppress(subprocess.TimeoutExpired):
                    member.proc.wait(timeout=10)
            if member.proc.stdout is not None:
                with contextlib.suppress(OSError):
                    member.proc.stdout.close()


async def _serve_router(
    router: FleetRouter,
    host: str,
    port: int,
    ready=None,
    announce=None,
) -> None:
    loop = asyncio.get_running_loop()
    stopped = asyncio.Event()
    router._local_lock = asyncio.Lock()
    router._inflight = asyncio.Semaphore(router.max_inflight)

    async def handle(reader, writer):
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:
                    writer.write((json.dumps({
                        "ok": False,
                        "error": f"request line exceeds {_MAX_LINE} bytes",
                    }) + "\n").encode("utf-8"))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                    result = await router.dispatch(request)
                    response = {"ok": True, "result": result}
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    message = f"{type(exc).__name__}: {exc}"
                    if _DAEMON_ERROR in str(exc):
                        message = str(exc).split(_DAEMON_ERROR, 1)[1].strip()
                    response = {"ok": False, "error": message}
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if router.stopping:
                    stopped.set()
                    break
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, port, limit=_MAX_LINE)
    actual_port = server.sockets[0].getsockname()[1]
    if announce is not None:
        announce(host, actual_port)
    if ready is not None:
        ready.put((host, actual_port, loop, stopped))
    health = asyncio.ensure_future(router._health_loop())
    try:
        async with server:
            await stopped.wait()
    finally:
        health.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await health
        await loop.run_in_executor(None, router.stop_members)
        if router.store is not None:
            router.store.flush()


def build_fleet(
    store: str,
    shards: int = 3,
    replicas: int = 2,
    host: str = "127.0.0.1",
    hedge_after: Optional[float] = 0.25,
    respawn: bool = True,
) -> FleetRouter:
    """Create the sharded store, spawn the members, wire the router."""
    sharded = ShardedResultStore(store, shards=shards, replicas=replicas)
    members = []
    for index in range(shards):
        member_host, member_port, proc = spawn_member(str(sharded.root), host)
        members.append(Member(index, member_host, member_port, proc))
    return FleetRouter(
        members,
        ring=sharded.ring,
        store=sharded,
        hedge_after=hedge_after,
        respawn=respawn,
    )


def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 0,
    store: Optional[str] = None,
    shards: int = 3,
    replicas: int = 2,
    hedge_after: Optional[float] = 0.25,
    announce=print,
) -> None:
    """Run a whole fleet in the foreground until a ``shutdown`` request.

    Spawns ``shards`` member daemons over a (created if absent) sharded
    store at ``store``, then serves the router on ``host:port`` --
    ``--port 0`` picks an ephemeral port, announced exactly like the
    single daemon so scripts parse one banner format for both.
    """
    if store is None:
        raise ValueError("serve --fleet requires --store DIR (the fleet root)")
    router = build_fleet(
        store, shards=shards, replicas=replicas, host=host,
        hedge_after=hedge_after,
    )

    def _announce(h, p):
        if announce is print:
            print(
                f"repro.service: serving on {h}:{p} "
                f"(fleet store={router.store.root}, shards={shards}, "
                f"replicas={router.ring.replicas})",
                flush=True,
            )
        elif announce is not None:
            announce(h, p)

    try:
        asyncio.run(_serve_router(router, host, port, announce=_announce))
    finally:
        router.stop_members()


class FleetHandle:
    """A background fleet: router address, member handles, a stop switch."""

    def __init__(self, host: str, port: int, router: FleetRouter,
                 thread: threading.Thread, force_stop=None) -> None:
        self.host = host
        self.port = port
        self.router = router
        self._thread = thread
        self._force_stop = force_stop

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def member_pids(self) -> List[int]:
        return [
            m.proc.pid
            for m in self.router.members
            if m.proc is not None and m.proc.poll() is None
        ]

    def kill_member(self, index: int) -> Optional[int]:
        """SIGKILL one member daemon (chaos / load-test harness hook)."""
        member = self.router.members[index]
        if member.proc is None or member.proc.poll() is not None:
            return None
        pid = member.proc.pid
        member.proc.kill()
        return pid

    def stop(self, timeout: float = 30.0) -> bool:
        from repro.service.client import ServiceClient, ServiceError

        if self._thread.is_alive():
            try:
                with ServiceClient(self.host, self.port, retries=0) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass
        self._thread.join(timeout)
        if self._thread.is_alive() and self._force_stop is not None:
            self._force_stop()
            self._thread.join(timeout)
        self.router.stop_members()
        return not self._thread.is_alive()


def start_fleet_background(
    store: str,
    shards: int = 3,
    replicas: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    hedge_after: Optional[float] = 0.25,
    router: Optional[FleetRouter] = None,
) -> FleetHandle:
    """Start a fleet on a daemon thread; returns once the router accepts.

    ``router`` injects a pre-built router (tests wire members by hand:
    tarpits, dead ports, tight hedge deadlines); otherwise the fleet is
    built over ``store`` exactly like :func:`serve_fleet`.
    """
    import queue

    if router is None:
        router = build_fleet(
            store, shards=shards, replicas=replicas, host=host,
            hedge_after=hedge_after,
        )
    ready: "queue.Queue" = queue.Queue()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            _serve_router(router, host, port, ready=ready)
        ),
        name="repro-fleet-router",
        daemon=True,
    )
    thread.start()
    bound_host, bound_port, loop, stopped = ready.get(timeout=60)

    def force_stop():
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(stopped.set)

    return FleetHandle(bound_host, bound_port, router, thread, force_stop)
