"""Consistent hashing over content-addressed digests.

The fleet places every stored object on ``replicas`` of ``N`` shards.
Placement must be (a) deterministic from the digest alone, so any
process -- member daemon, router, rebalance CLI -- computes the same
owners without coordination, and (b) *stable under membership change*:
growing or shrinking the fleet by one shard may only move ~1/N of the
keys, or every topology change would invalidate the whole store.

Classic consistent hashing delivers both: each shard projects
``vnodes`` points onto a 64-bit ring (SHA-256 of ``"name#i"``), a key
hashes to its own point (the store digests *are* SHA-256 hex, so the
leading 16 hex digits are already uniform), and the owners are the
first ``replicas`` **distinct** shards walking clockwise from the key's
point.  Virtual nodes smooth the load split; the distinct-walk
guarantees a replica set never collapses onto one shard while the
fleet has two or more (both property-tested in ``tests/test_fleet.py``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple

#: Virtual nodes per shard: enough to keep the per-shard key share
#: within a few percent of 1/N at fleet sizes this repo runs (2..16).
DEFAULT_VNODES = 64


def shard_name(index: int) -> str:
    """The canonical shard directory name for slot ``index``."""
    return f"shard-{index:02d}"


def _point(token: str) -> int:
    """A 64-bit ring position for an arbitrary token."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """``replicas``-way consistent placement of digests over shards."""

    def __init__(
        self,
        shards: Sequence[str],
        replicas: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {shards}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards: Tuple[str, ...] = tuple(shards)
        # More replicas than shards cannot place distinctly; clamp so a
        # 2-replica fleet degraded to one shard keeps working.
        self.replicas = min(replicas, len(shards))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for name in self.shards:
            for v in range(vnodes):
                points.append((_point(f"{name}#{v}"), name))
        # SHA-256 collisions on 64-bit prefixes are unobservable, but a
        # deterministic tiebreak keeps the ring identical everywhere.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners_at = [name for _, name in points]

    @staticmethod
    def key_point(digest: str) -> int:
        """Ring position of a store digest (already-uniform SHA-256 hex)."""
        return int(digest[:16], 16)

    def owners(self, digest: str) -> List[str]:
        """The ``replicas`` distinct shards owning ``digest``, in rank order.

        The first entry is the **primary** owner; later entries are the
        replicas a reader falls back to and a hedged request targets.
        """
        start = bisect.bisect_right(self._points, self.key_point(digest))
        owners: List[str] = []
        seen = set()
        n = len(self._points)
        for step in range(n):
            name = self._owners_at[(start + step) % n]
            if name not in seen:
                seen.add(name)
                owners.append(name)
                if len(owners) == self.replicas:
                    break
        return owners

    def primary(self, digest: str) -> str:
        return self.owners(digest)[0]

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self.shards)} shards, replicas={self.replicas}, "
            f"vnodes={self.vnodes})"
        )
