"""The sharded, replicated result store: N shards, R copies, one door.

A :class:`ShardedResultStore` speaks the same store protocol as a
single :class:`~repro.service.store.ResultStore` (``contains`` / ``get``
/ ``put`` / ``stats`` / ``counters`` / ``merge_stats`` / ``flush`` /
``verify``), so everything built on the PR 4 store -- the cache tier in
``run_cached_result``, the batch scheduler, the serving daemon, the
worker fleet's store-counter deltas -- runs unchanged on top of it.
Underneath, objects are spread over ``shards`` standard stores (each
with the full PR 7 journal/quarantine machinery) by consistent hashing
(:class:`~repro.service.fleet.ring.HashRing`) with ``replicas`` copies:

- **Write to all replicas.**  A put lands on every owner shard.  A
  shard that cannot be written (lost directory, permissions) is
  tolerated as long as one replica commits; the failure is counted
  (``replica_write_failures``) and the missing copy is queued for
  repair (healed by the next :meth:`flush`, read of that digest, or
  :func:`rebalance`).
- **Read from any, repair on read.**  A get walks the owners in rank
  order and serves the first healthy copy.  Owners that missed --
  vanished directory, torn object (quarantined by the shard itself) --
  are **read-repaired**: the good copy is re-replicated immediately and
  the heal is counted (``read_repairs``), so a lost shard converges
  back to full replication just by being read.
- **Rebalance / scrub.**  :func:`rebalance` walks every object in every
  shard directory, re-computes placement (optionally under a *new*
  shard count), copies objects to owners that lack them, prunes
  non-owner copies, and settles divergent replicas deterministically
  (the copy on the highest-ranked owner wins; losers are overwritten).
  ``python -m repro.service rebalance`` wraps it.

Layout under the fleet root::

    <root>/
      fleet.json             # {"schema": "fleet/v1", shards, replicas, vnodes}
      shard-00/              # a standard ResultStore root
      shard-01/
      ...

The manifest makes fleet-ness self-describing: ``open_store`` (and so
``REPRO_STORE`` / ``--store``) transparently opens a fleet root as a
:class:`ShardedResultStore` -- member daemons need no special flags.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set

from repro.service.fleet.ring import DEFAULT_VNODES, HashRing, shard_name
from repro.service.resilience.journal import atomic_write_text
from repro.service.store import ResultStore

#: The manifest file naming a directory as a fleet store root.
FLEET_MANIFEST = "fleet.json"

_FLEET_SCHEMA = "fleet/v1"


def _count(name: str, amount: int = 1) -> None:
    """Mirror a fleet store event into the telemetry registry."""
    from repro.telemetry import registry

    registry().counter(f"service.fleet.{name}").inc(amount)


def read_manifest(root: Path) -> Optional[Dict[str, int]]:
    """The parsed fleet manifest, or ``None`` if ``root`` is not a fleet."""
    try:
        data = json.loads((Path(root) / FLEET_MANIFEST).read_text())
        if data.get("schema") != _FLEET_SCHEMA:
            return None
        return {
            "shards": int(data["shards"]),
            "replicas": int(data["replicas"]),
            "vnodes": int(data.get("vnodes", DEFAULT_VNODES)),
        }
    except (OSError, ValueError, KeyError, TypeError):
        return None


def write_manifest(
    root: Path, shards: int, replicas: int, vnodes: int = DEFAULT_VNODES
) -> None:
    Path(root).mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        Path(root) / FLEET_MANIFEST,
        json.dumps(
            {
                "schema": _FLEET_SCHEMA,
                "shards": int(shards),
                "replicas": int(replicas),
                "vnodes": int(vnodes),
            },
            sort_keys=True,
        ),
        fsync=False,
    )


class ShardedResultStore:
    """R-way replicated store over N :class:`ResultStore` shards."""

    def __init__(
        self,
        root: os.PathLike,
        shards: Optional[int] = None,
        replicas: Optional[int] = None,
        vnodes: Optional[int] = None,
        max_bytes: Optional[int] = None,
        fsync: Optional[bool] = None,
    ) -> None:
        """Open (or create) the fleet store at ``root``.

        Without explicit ``shards``/``replicas`` the manifest written by
        a previous open is authoritative; passing them creates the
        manifest on first open and must agree with it afterwards (use
        :func:`rebalance` to change topology -- a silent re-ring would
        strand every existing object).  ``max_bytes`` bounds each shard
        individually.
        """
        self._root = Path(root)
        manifest = read_manifest(self._root)
        if manifest is None:
            if shards is None:
                raise ValueError(
                    f"{self._root} has no {FLEET_MANIFEST}; pass shards= "
                    "(and replicas=) to create a fleet store"
                )
            manifest = {
                "shards": int(shards),
                "replicas": int(replicas if replicas is not None else 2),
                "vnodes": int(vnodes if vnodes is not None else DEFAULT_VNODES),
            }
            if manifest["shards"] < 1:
                raise ValueError("shards must be >= 1")
            if manifest["replicas"] < 1:
                raise ValueError("replicas must be >= 1")
            write_manifest(self._root, **manifest)
        else:
            for key, given in (("shards", shards), ("replicas", replicas)):
                if given is not None and int(given) != manifest[key]:
                    raise ValueError(
                        f"{key}={given} disagrees with the fleet manifest's "
                        f"{manifest[key]}; run rebalance to change topology"
                    )
        self.num_shards = manifest["shards"]
        self.replicas = manifest["replicas"]
        self.ring = HashRing(
            [shard_name(i) for i in range(self.num_shards)],
            replicas=self.replicas,
            vnodes=manifest["vnodes"],
        )
        self._shards: Dict[str, ResultStore] = {
            name: ResultStore(
                self._root / name, max_bytes=max_bytes, fsync=fsync
            )
            for name in self.ring.shards
        }
        self._pending_repairs: Dict[str, Set[str]] = {}
        self._stats = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "read_repairs": 0,
            "replica_write_failures": 0,
        }

    # -- identity ------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    def shard(self, name: str) -> ResultStore:
        """One member shard's store handle (tests, rebalance, chaos)."""
        return self._shards[name]

    def owners(self, digest: str) -> List[str]:
        return self.ring.owners(digest)

    def __len__(self) -> int:
        return len(set(self.digests()))

    def __repr__(self) -> str:
        return (
            f"ShardedResultStore({str(self._root)!r}, "
            f"shards={self.num_shards}, replicas={self.replicas})"
        )

    # -- the store protocol --------------------------------------------------

    def contains(self, digest: str) -> bool:
        """Non-counting probe: does any owner replica hold the digest?"""
        return any(
            self._shards[name].contains(digest) for name in self.owners(digest)
        )

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """First healthy replica's document; heals the others on the way.

        Owners are consulted in rank order; a replica that turns out to
        be missing or torn (the shard quarantines torn copies itself)
        is re-written from the healthy copy -- **read-repair** -- so
        replication converges back to R just by serving reads.
        """
        owners = self.owners(digest)
        document = None
        lacking: List[str] = []
        for name in owners:
            document = self._shards[name].get(digest)
            if document is not None:
                break
            lacking.append(name)
        if document is None:
            self._stats["misses"] += 1
            return None
        self._stats["hits"] += 1
        lacking.extend(self._pending_repairs.pop(digest, set()) - set(lacking))
        for name in lacking:
            if self._repair(digest, document, name):
                self._stats["read_repairs"] += 1
                _count("read_repairs")
        return document

    def _repair(self, digest: str, document: Mapping[str, Any], name: str) -> bool:
        try:
            self._shards[name].put(digest, document)
            return True
        except OSError:
            self._pending_repairs.setdefault(digest, set()).add(name)
            return False

    def put(self, digest: str, document: Mapping[str, Any]) -> Path:
        """Write the document to every owner replica.

        Succeeds as long as *one* replica commits; unwritable replicas
        are counted and queued for repair.  Raises only when no replica
        at all could take the write.
        """
        owners = self.owners(digest)
        committed: Optional[Path] = None
        last_error: Optional[OSError] = None
        for name in owners:
            try:
                path = self._shards[name].put(digest, document)
                if committed is None:
                    committed = path
                self._pending_repairs.get(digest, set()).discard(name)
            except OSError as exc:
                last_error = exc
                self._stats["replica_write_failures"] += 1
                _count("replica_write_failures")
                self._pending_repairs.setdefault(digest, set()).add(name)
        if committed is None:
            raise last_error if last_error is not None else OSError(
                f"no replica accepted digest {digest}"
            )
        self._stats["puts"] += 1
        return committed

    def heal(self) -> int:
        """Retry queued replica repairs; returns how many landed."""
        healed = 0
        for digest in list(self._pending_repairs):
            document = self.get(digest)  # get() performs the repairs
            if document is not None and digest not in self._pending_repairs:
                healed += 1
        return healed

    def flush(self) -> None:
        """Flush every shard's index and retry queued repairs."""
        self.heal()
        for store in self._shards.values():
            store.flush()

    # -- introspection -------------------------------------------------------

    def digests(self) -> Iterator[str]:
        """Union of every shard's known digests, sorted."""
        union: Set[str] = set()
        for store in self._shards.values():
            union.update(store.digests())
        return iter(sorted(union))

    def counters(self) -> Dict[str, int]:
        """Flat fleet-level counters (O(shards), no directory scans).

        Per-shard hit/miss counters are *not* summed in: one logical
        get touches several shards, and a flat delta that double-counts
        would lie to :meth:`merge_stats` consumers.  Shard internals
        stay visible via :meth:`stats`.
        """
        out = dict(self._stats)
        out["pending_repairs"] = sum(
            len(names) for names in self._pending_repairs.values()
        )
        return out

    def merge_stats(self, counters: Mapping[str, int]) -> None:
        """Fold another handle's fleet-level counters into this one."""
        for name in self._stats:
            self._stats[name] += int(counters.get(name, 0))

    def stats(self) -> Dict[str, Any]:
        """Fleet counters + occupancy + a per-shard breakdown."""
        per_shard = {name: s.stats() for name, s in self._shards.items()}
        return dict(
            self.counters(),
            shards=per_shard,
            entries=len(self),
            bytes=sum(s["bytes"] for s in per_shard.values()),
            evictions=sum(s["evictions"] for s in per_shard.values()),
            quarantined=sum(s["quarantined"] for s in per_shard.values()),
        )

    def verify(self) -> Dict[str, Any]:
        """Per-shard integrity scan plus a replication scrub.

        The per-shard half settles journals and quarantines torn
        objects exactly like a standalone store's :meth:`verify`; the
        scrub half then re-replicates under-replicated digests and
        settles divergence (see :func:`rebalance`).
        """
        shards_report = {
            name: store.verify() for name, store in self._shards.items()
        }
        scrub = rebalance(self._root, store=self)
        return {
            "entries": len(self),
            "checked": sum(r["checked"] for r in shards_report.values()),
            "quarantined_now": sum(
                r["quarantined_now"] for r in shards_report.values()
            ),
            "rolled_forward": sum(
                r["rolled_forward"] for r in shards_report.values()
            ),
            "discarded": sum(r["discarded"] for r in shards_report.values()),
            "shards": shards_report,
            "scrub": scrub,
        }


def rebalance(
    root: os.PathLike,
    shards: Optional[int] = None,
    replicas: Optional[int] = None,
    prune: bool = True,
    store: Optional[ShardedResultStore] = None,
) -> Dict[str, int]:
    """Re-replicate every object to its owners (optionally re-ringing).

    Walks every ``shard-*`` directory under ``root`` (including shards
    no longer in the manifest, so shrinking drains the orphans), and for
    every digest found anywhere:

    1. settles **divergence**: among parseable copies, the one held by
       the highest-ranked owner wins; disagreeing copies are overwritten
       (``divergent_healed`` counts digests, not copies);
    2. copies the winner to every owner lacking it (``replicated``);
    3. with ``prune`` (the default), drops copies from shards that do
       not own the digest (``pruned``) -- what actually *moves* data
       after a topology change.

    Passing ``shards``/``replicas`` rewrites the manifest first: this is
    the one sanctioned way to change fleet topology.  ``store`` reuses
    an already-open handle (same topology only).
    """
    root = Path(root)
    manifest = read_manifest(root)
    if manifest is None:
        raise ValueError(f"{root} is not a fleet store (no {FLEET_MANIFEST})")
    if shards is not None or replicas is not None:
        if store is not None:
            raise ValueError("pass either store= or a new topology, not both")
        manifest["shards"] = int(shards if shards is not None else manifest["shards"])
        manifest["replicas"] = int(
            replicas if replicas is not None else manifest["replicas"]
        )
        if manifest["shards"] < 1 or manifest["replicas"] < 1:
            raise ValueError("shards and replicas must be >= 1")
        write_manifest(root, **manifest)
    if store is None:
        store = ShardedResultStore(root)

    # Every shard directory on disk, manifest or not: orphans created by
    # a shrink still hold data that must be drained into the new ring.
    extra: Dict[str, ResultStore] = {}
    for path in sorted(root.glob("shard-*")):
        if path.is_dir() and path.name not in store.ring.shards:
            extra[path.name] = ResultStore(path)
    holders = dict(store._shards, **extra)

    everything: Set[str] = set()
    for handle in holders.values():
        everything.update(handle.digests())

    report = {
        "objects": len(everything),
        "replicated": 0,
        "pruned": 0,
        "divergent_healed": 0,
        "unreadable": 0,
    }
    for digest in sorted(everything):
        owners = store.owners(digest)
        copies: Dict[str, Optional[Dict[str, Any]]] = {
            name: handle.get(digest)
            for name, handle in holders.items()
            if handle.contains(digest)
        }
        winner: Optional[Dict[str, Any]] = None
        for name in owners:  # highest-ranked owner's copy wins ...
            if copies.get(name) is not None:
                winner = copies[name]
                break
        if winner is None:  # ... else any surviving copy (lost shard)
            winner = next((d for d in copies.values() if d is not None), None)
        if winner is None:
            report["unreadable"] += 1
            continue
        if any(
            copies.get(name) is not None and copies[name] != winner
            for name in copies
        ):
            report["divergent_healed"] += 1
        for name in owners:
            if copies.get(name) != winner:
                store._shards[name].put(digest, winner)
                if copies.get(name) is None:
                    report["replicated"] += 1
        if prune:
            for name, handle in holders.items():
                if name not in owners and name in copies:
                    handle.discard(digest)
                    report["pruned"] += 1
    for handle in holders.values():
        handle.flush()
    return report
