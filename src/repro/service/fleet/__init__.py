"""The evaluation fleet: sharded storage, replicated daemons, one door.

The Mondrian Data Engine keeps analytic operators fast by spreading
data and work across many near-memory partitions; this package makes
the *evaluation service* live by the same creed.  PR 7 made one daemon
crash-safe -- the fleet extends the resilience story from one node to
many, so no single dead process or lost store directory can take the
service down:

- :mod:`repro.service.fleet.ring` -- :class:`HashRing`: consistent
  hashing over the store's content-addressed SHA-256 digests.  Each
  object maps to ``replicas`` of ``shards`` owners; adding or removing
  a shard moves only ~1/N of the keys (property-tested).
- :mod:`repro.service.fleet.sharded` -- :class:`ShardedResultStore`:
  N standard :class:`~repro.service.store.ResultStore` shards behind
  one store protocol.  Writes go to every replica, reads are served by
  the first healthy one, divergent or missing replicas are healed on
  read (**read-repair**), and :func:`rebalance` re-replicates after a
  shard is lost or added.
- :mod:`repro.service.fleet.router` -- :class:`FleetRouter`: the front
  door.  A lightweight asyncio daemon speaking the same JSON-lines
  protocol as a member daemon, which health-checks members (reusing
  :class:`~repro.service.resilience.retry.CircuitBreaker`), routes each
  request to the member owning its digest, **hedges** slow requests to
  a replica owner after a latency deadline, fails over on member loss,
  respawns members it spawned, and degrades to in-process evaluation
  when every member is gone -- a request never fails outright.
- :mod:`repro.service.fleet.async_client` -- :class:`AsyncServiceClient`:
  an asyncio pipelined client keeping many submissions in flight with
  per-request deadlines and the existing idempotent-verb retry matrix
  (the engine of ``tools/load_test.py`` / ``make load-test``).

See docs/ARCHITECTURE.md, "The evaluation fleet".
"""

from repro.service.fleet.async_client import AsyncServiceClient
from repro.service.fleet.ring import HashRing
from repro.service.fleet.router import (
    FleetHandle,
    FleetRouter,
    serve_fleet,
    start_fleet_background,
)
from repro.service.fleet.sharded import (
    FLEET_MANIFEST,
    ShardedResultStore,
    rebalance,
)

__all__ = [
    "AsyncServiceClient",
    "FLEET_MANIFEST",
    "FleetHandle",
    "FleetRouter",
    "HashRing",
    "ShardedResultStore",
    "rebalance",
    "serve_fleet",
    "start_fleet_background",
]
