"""Resilient blocking client for the evaluation daemon.

Speaks the daemon's newline-delimited JSON protocol over one persistent
TCP connection.  Results come back as the same tidy records
``Sweep.run`` produces, re-wrapped in a
:class:`~repro.api.results.ResultSet` -- so a remote sweep and an
in-process sweep are drop-in interchangeable:

    with ServiceClient(host, port) as client:
        rs = client.sweep({"systems": ["cpu"], "workloads": ["scan"],
                           "scales": [50.0], "num_partitions": [8]})
        rs.to_json("out.json")

Failure semantics (see docs/ARCHITECTURE.md, "Resilience & failure
semantics"):

- **Idempotent verbs** (``ping``/``stats``/``evaluate``/``sweep``) get
  a bounded retry loop with exponential backoff and jitter on transport
  failure.  A *reused* connection that turns out to be stale earns one
  free reconnect-and-resend before the retry budget is touched --
  restarting the daemon between calls is invisible.  ``shutdown`` is
  never retried or resent: delivered-but-unacknowledged would stop a
  server twice.
- A ``deadline`` (seconds per request) rides along on the wire as
  ``deadline_s``; the daemon refuses to start work for a caller whose
  budget lapsed while the request sat behind the batch lock.  Daemon
  deadline rejections are terminal -- the budget is gone either way.
- ``degrade="local"`` turns an exhausted retry budget on
  ``evaluate``/``sweep`` into an in-process evaluation (with a
  :class:`ServiceDegradedWarning` and a ``degraded`` counter) instead
  of an exception -- results are identical, only the shared warm cache
  is lost.  The default ``degrade="fail"`` raises.

Errors the daemon reports (unknown verbs, invalid scenarios) raise
:class:`ServiceError` with the server's message; transport failures
that outlive the retry budget raise the underlying ``OSError``.
"""

from __future__ import annotations

import json
import socket
import time
import warnings
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.results import ResultSet
from repro.api.scenario import Scenario
from repro.api.sweep import Sweep

from repro.service.daemon import DEFAULT_PORT
from repro.service.resilience.retry import RetryPolicy

#: Verbs that are safe to resend: either read-only or content-addressed
#: (a duplicate ``evaluate``/``sweep`` dedups against the store).
IDEMPOTENT_VERBS = frozenset({"ping", "stats", "evaluate", "sweep"})


class ServiceError(RuntimeError):
    """The daemon processed the request and reported a failure."""


class ServiceDegradedWarning(UserWarning):
    """The daemon was unreachable; the client evaluated locally."""


class ServiceClient:
    """One connection to a running evaluation daemon.

    ``retries`` bounds resends of idempotent verbs after transport
    failure (0 disables); ``retry_policy`` shapes the backoff between
    attempts.  ``deadline`` is a per-request budget in seconds, both
    enforced locally and propagated to the daemon as ``deadline_s``.
    ``degrade`` picks the behaviour when every attempt at an
    ``evaluate``/``sweep`` fails in transport: ``"fail"`` re-raises,
    ``"local"`` falls back to in-process evaluation.  ``rng`` and
    ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        retries: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        degrade: str = "fail",
        rng=None,
        sleep=time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if degrade not in ("fail", "local"):
            raise ValueError('degrade must be "fail" or "local"')
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(retries=retries)
        )
        self.deadline = deadline
        self.degrade = degrade
        self._rng = rng
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self.resilience: Dict[str, int] = {
            "retries": 0,
            "reconnects": 0,
            "degraded": 0,
        }

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._reader.close()
                self._sock.close()
            finally:
                self._sock, self._reader = None, None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def _exchange(self, request: Dict[str, Any]) -> Any:
        """One raw request/response round trip on the live connection.

        Any transport failure (timeout included) closes the connection:
        a response that arrives after a timeout would otherwise sit in
        the buffer and be read as the answer to the *next* request.
        """
        try:
            self._sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            line = self._reader.readline()
            response = json.loads(line) if line else None
        except (OSError, ValueError):
            self.close()
            raise
        if response is None:
            self.close()
            raise ConnectionResetError(
                f"daemon at {self.host}:{self.port} closed the connection"
            )
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown daemon error"))
        return response["result"]

    def call(self, verb: str, **payload: Any) -> Any:
        """One request/response round trip; returns the ``result``.

        Idempotent verbs survive transport failure: a stale reused
        connection gets one free reconnect-and-resend, and fresh
        failures are retried up to ``retries`` times with backoff.
        Non-idempotent verbs (``shutdown``) fail on the first transport
        error.  Daemon-reported errors (:class:`ServiceError`) are
        never retried -- the daemon already answered.
        """
        request = {"verb": verb, **payload}
        started = time.monotonic()
        if self.deadline is not None and verb in IDEMPOTENT_VERBS:
            request.setdefault("deadline_s", self.deadline)
        idempotent = verb in IDEMPOTENT_VERBS
        attempts = (1 + self.retries) if idempotent else 1
        resend_spent = False
        attempt = 0
        while True:
            reused = self._sock is not None
            try:
                self.connect()
                return self._exchange(request)
            except ServiceError:
                raise
            except (OSError, ValueError) as exc:
                if not idempotent:
                    raise
                if self.deadline is not None:
                    remaining = self.deadline - (time.monotonic() - started)
                    if remaining <= 0:
                        raise
                    request["deadline_s"] = remaining
                if reused and not resend_spent:
                    # The daemon may simply have restarted since the
                    # last call on this connection; resending on a
                    # fresh socket is free and does not touch the
                    # retry budget.
                    resend_spent = True
                    self.resilience["reconnects"] += 1
                    continue
                attempt += 1
                if attempt >= attempts:
                    raise
                self.resilience["retries"] += 1
                self._sleep(self.retry_policy.delay(attempt - 1, rng=self._rng))

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Daemon identity: service name, version, pid, store directory."""
        return self.call("ping")

    def stats(self) -> Dict[str, Any]:
        """Request counters plus scheduler/cache/store statistics."""
        return self.call("stats")

    def _degrade_local(self, what: str, runner, exc: Exception) -> ResultSet:
        """Fall back to in-process evaluation after transport exhaustion."""
        from repro.experiments import common

        warnings.warn(
            f"evaluation daemon at {self.host}:{self.port} unreachable "
            f"({type(exc).__name__}: {exc}); degrading {what} to local "
            f"in-process evaluation",
            ServiceDegradedWarning,
            stacklevel=3,
        )
        self.resilience["degraded"] += 1
        common.note_degraded()
        return runner()

    def evaluate(self, scenario: Union[Scenario, Mapping[str, Any]]) -> ResultSet:
        """Evaluate one scenario remotely (or locally, when degrading)."""
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        scenario = dict(scenario)
        try:
            result = self.call("evaluate", scenario=scenario)
        except (OSError, ValueError) as exc:
            if self.degrade != "local":
                raise
            return self._degrade_local(
                "evaluate",
                lambda: ResultSet(Scenario.from_dict(scenario).records()),
                exc,
            )
        return ResultSet(result["records"])

    def sweep(self, sweep: Union[Sweep, Mapping[str, Any]]) -> ResultSet:
        """Evaluate a whole sweep grid remotely (or locally, degrading)."""
        if isinstance(sweep, Sweep):
            sweep = sweep.to_dict()
        sweep = dict(sweep)
        try:
            result = self.call("sweep", sweep=sweep)
        except (OSError, ValueError) as exc:
            if self.degrade != "local":
                raise
            return self._degrade_local(
                "sweep", lambda: Sweep.from_dict(sweep).run(), exc
            )
        return ResultSet(result["records"])

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop serving (acknowledged before exit).

        Never retried or resent: a shutdown that was delivered but not
        acknowledged must not be fired twice at whatever starts
        listening on the port next.
        """
        return self.call("shutdown")
