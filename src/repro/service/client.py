"""Blocking client for the evaluation daemon.

Speaks the daemon's newline-delimited JSON protocol over one persistent
TCP connection.  Results come back as the same tidy records
``Sweep.run`` produces, re-wrapped in a
:class:`~repro.api.results.ResultSet` -- so a remote sweep and an
in-process sweep are drop-in interchangeable:

    with ServiceClient(host, port) as client:
        rs = client.sweep({"systems": ["cpu"], "workloads": ["scan"],
                           "scales": [50.0], "num_partitions": [8]})
        rs.to_json("out.json")

Errors the daemon reports (unknown verbs, invalid scenarios) raise
:class:`ServiceError` with the server's message; transport failures
raise the underlying ``OSError``.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.results import ResultSet
from repro.api.scenario import Scenario
from repro.api.sweep import Sweep

from repro.service.daemon import DEFAULT_PORT


class ServiceError(RuntimeError):
    """The daemon processed the request and reported a failure."""


class ServiceClient:
    """One connection to a running evaluation daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._reader.close()
                self._sock.close()
            finally:
                self._sock, self._reader = None, None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def call(self, verb: str, **payload: Any) -> Any:
        """One request/response round trip; returns the ``result``.

        Any transport failure (timeout included) closes the connection:
        a response that arrives after a timeout would otherwise sit in
        the buffer and be read as the answer to the *next* request.
        The next call reconnects transparently.
        """
        self.connect()
        request = {"verb": verb, **payload}
        try:
            self._sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            line = self._reader.readline()
            response = json.loads(line) if line else None
        except (OSError, ValueError):
            self.close()
            raise
        if response is None:
            self.close()
            raise ServiceError(
                f"daemon at {self.host}:{self.port} closed the connection"
            )
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown daemon error"))
        return response["result"]

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Daemon identity: service name, version, pid, store directory."""
        return self.call("ping")

    def stats(self) -> Dict[str, Any]:
        """Request counters plus scheduler/cache/store statistics."""
        return self.call("stats")

    def evaluate(self, scenario: Union[Scenario, Mapping[str, Any]]) -> ResultSet:
        """Evaluate one scenario remotely."""
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        result = self.call("evaluate", scenario=dict(scenario))
        return ResultSet(result["records"])

    def sweep(self, sweep: Union[Sweep, Mapping[str, Any]]) -> ResultSet:
        """Evaluate a whole sweep grid remotely."""
        if isinstance(sweep, Sweep):
            sweep = sweep.to_dict()
        result = self.call("sweep", sweep=dict(sweep))
        return ResultSet(result["records"])

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop serving (acknowledged before exit)."""
        return self.call("shutdown")
