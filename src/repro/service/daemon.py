"""The serving daemon: one warm store, many clients.

An asyncio TCP server speaking newline-delimited JSON: each request is
one JSON object on one line, each response one JSON object on one line.
Verbs:

=========  ==========================================================
``ping``   liveness + identity (pid, version, store directory)
``evaluate``  one scenario (``{"scenario": {...}}``) -> tidy records
``sweep``  a whole grid (``{"sweep": {...}}``) -> tidy records
``stats``  request counters, scheduler stats, per-tier cache stats
``shutdown``  stop serving after acknowledging
=========  ==========================================================

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "..."}``; a malformed line gets an error response instead of a
dropped connection, and one client's failure never takes the server
down.

Evaluations run in a worker thread (the event loop stays responsive to
``ping``/``stats`` while a batch simulates) but are serialized through
one :class:`~repro.service.scheduler.BatchScheduler`, whose process
pool provides the actual compute concurrency.  All clients therefore
share a single warm store and in-memory cache: the second client to ask
for a sweep gets it back without a single simulation.

:func:`serve` blocks (the ``python -m repro.service serve`` entry
point); :func:`serve_background` runs the same server on a daemon
thread and returns a handle -- the form tests and doctests use.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.experiments import common
from repro.service.scheduler import BatchScheduler
from repro.version import __version__

#: Default TCP port (overridden by ``--port``; 0 picks an ephemeral one).
DEFAULT_PORT = 7917

_MAX_LINE = 16 * 1024 * 1024  # one request line; sweep grids are small

#: Verbs answered inline on the event loop, outside the batch lock --
#: strictly O(1), so a health check succeeds mid-simulation.
_INLINE_VERBS = frozenset({"ping", "shutdown"})

#: Read-only verbs that may do bounded I/O (``stats`` reconciles the
#: store's objects tree): off the event loop, but not behind the batch
#: lock either, so they answer while a sweep simulates.
_UNLOCKED_VERBS = frozenset({"stats"})


def _verb_of(request: Any) -> Any:
    return request.get("verb") if isinstance(request, dict) else None


class ServiceProtocolError(ValueError):
    """A request the daemon understood enough to reject."""


class DeadlineExceeded(ServiceProtocolError):
    """A request whose client-supplied deadline lapsed before execution."""


class EvaluationDaemon:
    """Request dispatch around one scheduler (transport-independent)."""

    def __init__(self, scheduler: Optional[BatchScheduler] = None) -> None:
        self.scheduler = scheduler if scheduler is not None else BatchScheduler()
        self.requests: Dict[str, int] = {}
        self.stopping = False

    def dispatch(self, request: Any, received: Optional[float] = None) -> Any:
        """One decoded request object -> the response's ``result``.

        ``received`` is the monotonic receipt time; a request carrying
        ``deadline_s`` (the client's remaining per-request budget) is
        rejected here -- possibly after waiting out the batch lock --
        rather than evaluated for a caller that stopped listening.  The
        client never retries a :class:`DeadlineExceeded` answer: the
        budget is gone either way.
        """
        if not isinstance(request, dict) or "verb" not in request:
            raise ServiceProtocolError(
                'requests are JSON objects with a "verb" key'
            )
        verb = request["verb"]
        handler = (
            getattr(self, f"_verb_{verb.replace('-', '_')}", None)
            if isinstance(verb, str)
            else None
        )
        if handler is None:
            raise ServiceProtocolError(f"unknown verb {verb!r}")
        deadline = request.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise ServiceProtocolError(
                    f"deadline_s must be a number, got {deadline!r}"
                ) from None
            waited = time.monotonic() - received if received is not None else 0.0
            if waited >= deadline:
                raise DeadlineExceeded(
                    f"request deadline of {deadline:g}s lapsed before "
                    f"execution ({waited:.3f}s queued)"
                )
        self.requests[verb] = self.requests.get(verb, 0) + 1
        return handler(request)

    # -- verbs ---------------------------------------------------------------

    def _verb_ping(self, request: Any) -> Dict[str, Any]:
        return {
            "service": "repro.service",
            "version": __version__,
            "pid": os.getpid(),
            "store": self.scheduler.store_path(),
        }

    def _verb_evaluate(self, request: Any) -> Dict[str, Any]:
        scenario = request.get("scenario")
        if not isinstance(scenario, dict):
            raise ServiceProtocolError('evaluate needs a "scenario" object')
        return {"records": self.scheduler.submit([scenario]).to_records()}

    def _verb_sweep(self, request: Any) -> Dict[str, Any]:
        grid = request.get("sweep")
        if not isinstance(grid, dict):
            raise ServiceProtocolError('sweep needs a "sweep" grid object')
        return {"records": self.scheduler.submit_sweep(grid).to_records()}

    def _verb_stats(self, request: Any) -> Dict[str, Any]:
        from repro.telemetry import registry

        return {
            "requests": dict(self.requests),
            "scheduler": self.scheduler.stats(),
            "cache": common.cache_stats(),
            "store": self.scheduler.store_stats(),
            "metrics": registry().snapshot(),
        }

    def _verb_shutdown(self, request: Any) -> Dict[str, Any]:
        self.stopping = True
        return {"stopping": True}


async def _serve_async(
    daemon: EvaluationDaemon,
    host: str,
    port: int,
    ready: Optional["queue.Queue"] = None,
    announce=None,
) -> None:
    loop = asyncio.get_running_loop()
    lock = asyncio.Lock()
    stopped = asyncio.Event()

    async def handle(reader, writer):
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:
                    # readline() surfaces a line beyond the stream limit
                    # as ValueError (LimitOverrunError included); the
                    # buffer is unrecoverable mid-line, so answer once
                    # and drop only this connection.
                    writer.write(
                        (json.dumps({
                            "ok": False,
                            "error": f"request line exceeds {_MAX_LINE} bytes",
                        }) + "\n").encode("utf-8")
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    received = time.monotonic()
                    request = json.loads(line)
                    verb = _verb_of(request)
                    if verb in _INLINE_VERBS:
                        # Answer immediately, even while a batch is
                        # simulating on the executor.
                        result = daemon.dispatch(request, received)
                    elif verb in _UNLOCKED_VERBS:
                        result = await loop.run_in_executor(
                            None, daemon.dispatch, request, received
                        )
                    else:
                        # One batch at a time: the scheduler owns the
                        # evaluation runtime, and interleaved submits
                        # would interleave its stats and store scoping.
                        # (Deadlines are re-checked inside dispatch, so
                        # time queued on this lock counts against them.)
                        async with lock:
                            result = await loop.run_in_executor(
                                None, daemon.dispatch, request, received
                            )
                    response = {"ok": True, "result": result}
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if daemon.stopping:
                    stopped.set()
                    break
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, port, limit=_MAX_LINE)
    actual_port = server.sockets[0].getsockname()[1]
    if announce is not None:
        announce(host, actual_port)
    if ready is not None:
        # The loop + stop event ride along so ServerHandle.stop can
        # escalate past an unresponsive wire protocol (see stop()).
        ready.put((host, actual_port, loop, stopped))
    try:
        async with server:
            await stopped.wait()
    finally:
        # Serving is over: stop the worker fleet and flush the store.
        daemon.scheduler.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    store: Optional[str] = None,
    jobs: int = 1,
    max_bytes: Optional[int] = None,
    workers: int = 0,
    announce=print,
) -> None:
    """Run the daemon in the foreground until a ``shutdown`` request.

    ``workers=N`` serves store misses through a supervised fleet of N
    persistent worker subprocesses (heartbeats, backoff restarts, crash
    requeue) instead of a per-batch process pool.

    ``announce(host, port)`` fires once the socket is bound -- the CLI
    prints the ``serving on host:port`` line scripts parse to find an
    ephemeral port.
    """
    daemon = EvaluationDaemon(
        BatchScheduler(store=store, jobs=jobs, max_bytes=max_bytes, workers=workers)
    )

    def _announce(h, p):
        if announce is print:
            print(f"repro.service: serving on {h}:{p} "
                  f"(store={daemon.scheduler.store_path() or 'none'})", flush=True)
        elif announce is not None:
            announce(h, p)

    asyncio.run(_serve_async(daemon, host, port, announce=_announce))


class ServerHandle:
    """A background server: its bound address plus a ``stop()`` switch."""

    def __init__(
        self,
        host: str,
        port: int,
        thread: threading.Thread,
        force_stop=None,
    ) -> None:
        self.host = host
        self.port = port
        self._thread = thread
        self._force_stop = force_stop

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 10.0) -> bool:
        """Shut the server down; returns whether its thread terminated.

        Escalation ladder: (1) a polite ``shutdown`` over the wire --
        the normal path; (2) if the wire is unreachable or the thread
        outlives ``timeout``, force the serve loop's stop event directly
        on its own event loop, then join again.  Calling ``stop`` on an
        already-stopped server is a no-op that returns ``True``.
        """
        from repro.service.client import ServiceClient, ServiceError

        if self._thread.is_alive():
            try:
                with ServiceClient(self.host, self.port) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass  # already stopping (or gone): escalate below
        self._thread.join(timeout)
        if self._thread.is_alive() and self._force_stop is not None:
            self._force_stop()
            self._thread.join(timeout)
        return not self._thread.is_alive()


def serve_background(
    host: str = "127.0.0.1",
    port: int = 0,
    store: Optional[str] = None,
    jobs: int = 1,
    max_bytes: Optional[int] = None,
    workers: int = 0,
    scheduler: Optional[BatchScheduler] = None,
) -> ServerHandle:
    """Start the daemon on a daemon thread; returns once it accepts.

    ``port=0`` binds an ephemeral port; the handle carries the actual
    address.  Used by tests, doctests and embedders that want a warm
    shared cache without a separate process.  ``scheduler`` injects a
    pre-built scheduler (tests hand in fleets with tight timeouts).
    """
    import queue

    ready: "queue.Queue" = queue.Queue()
    if scheduler is None:
        scheduler = BatchScheduler(
            store=store, jobs=jobs, max_bytes=max_bytes, workers=workers
        )
    daemon = EvaluationDaemon(scheduler)
    thread = threading.Thread(
        target=lambda: asyncio.run(_serve_async(daemon, host, port, ready=ready)),
        name="repro-service",
        daemon=True,
    )
    thread.start()
    bound_host, bound_port, loop, stopped = ready.get(timeout=30)

    def force_stop():
        with contextlib.suppress(RuntimeError):  # loop already closed
            loop.call_soon_threadsafe(stopped.set)

    return ServerHandle(bound_host, bound_port, thread, force_stop=force_stop)
