"""JSON codec for evaluated results.

Turns a :class:`~repro.perf.result.SystemResult` into a plain-JSON
document and back, so the content-addressed store can persist what the
in-memory result cache holds.  Everything the performance/energy side
carries is scalar dataclasses (``PhaseCost``, ``CoreEstimate``,
``EnergyEvents``, ``EnergyBreakdown``), so the round-trip is exact:
floats survive byte-for-byte through JSON's shortest-repr encoding,
which is what makes warm-store exports byte-identical to cold runs.

The one deliberate loss is the **functional output** (the materialized
``Relation`` / join result): it exists to cross-check the simulation,
is megabytes of tuples at functional size, and nothing downstream of
the shared result cache reads it.  Restored results carry
``output=None`` and a ``"restored"`` marker in ``metadata`` so a
consumer that *does* want the functional payload can tell it must
recompute.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Mapping

from repro.energy.model import EnergyBreakdown, EnergyEvents
from repro.operators.base import PhaseCost
from repro.cores.base import CoreEstimate
from repro.perf.model import PhasePerf
from repro.perf.result import SystemResult

#: Document schema tag; mismatches are treated as store misses upstream.
RESULT_SCHEMA = "system-result/v1"


def _plain(value: Any) -> Any:
    """Coerce scalars to JSON-native types (numpy scalars -> Python)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    raise TypeError(f"cannot store value of type {type(value).__name__}")


def result_to_document(result: SystemResult) -> Dict[str, Any]:
    """Serialize one evaluated result (minus its functional output)."""
    return {
        "schema": RESULT_SCHEMA,
        "system": result.system,
        "operator": result.operator,
        "variant": result.variant,
        "metadata": _plain(result.metadata),
        "energy": asdict(result.energy),
        "phase_perfs": [
            {
                "phase": asdict(perf.phase),
                "time_ns": perf.time_ns,
                "core": asdict(perf.core),
                "events": asdict(perf.events),
                "core_utilization": perf.core_utilization,
                "limits": _plain(perf.limits),
            }
            for perf in result.phase_perfs
        ],
    }


def result_from_document(document: Mapping[str, Any]) -> SystemResult:
    """Rebuild a :class:`SystemResult` from its stored document.

    Raises ``ValueError`` on a schema mismatch (callers treat that as a
    store miss) and lets the dataclasses' own validation reject
    documents whose fields drifted from the current code.
    """
    if document.get("schema") != RESULT_SCHEMA:
        raise ValueError(
            f"unsupported stored-result schema {document.get('schema')!r}"
        )
    phase_perfs = [
        PhasePerf(
            phase=PhaseCost(**perf["phase"]),
            time_ns=perf["time_ns"],
            core=CoreEstimate(**perf["core"]),
            events=EnergyEvents(**perf["events"]),
            core_utilization=perf["core_utilization"],
            limits=dict(perf["limits"]),
        )
        for perf in document["phase_perfs"]
    ]
    metadata = dict(document["metadata"])
    metadata["restored"] = True
    return SystemResult(
        system=document["system"],
        operator=document["operator"],
        variant=document["variant"],
        phase_perfs=phase_perfs,
        energy=EnergyBreakdown(**document["energy"]),
        output=None,
        metadata=metadata,
    )


# ---------------------------------------------------------------------------
# Suite runs: one multi-stage pipeline evaluation per document.
# ---------------------------------------------------------------------------

#: Document schema tag for persisted suite runs (``repro.suites``).
SUITE_SCHEMA = "suite-run/v1"


def suite_run_to_document(
    suite: str,
    family: str,
    system: str,
    stages,
    output_digest: str,
) -> Dict[str, Any]:
    """Serialize one evaluated suite run (a list of per-stage results).

    ``stages`` is an iterable of ``(stage, operator, output_table,
    SystemResult)`` tuples -- the shape :mod:`repro.suites.runner`
    carries.  Each stage's :class:`~repro.perf.result.SystemResult`
    round-trips through :func:`result_to_document` exactly (floats
    byte-for-byte); the functional relations are dropped as usual, with
    the final relation summarized by its ``output_digest`` so golden
    checks survive a store replay.  These are the suite metadata
    columns the tidy records carry: suite, family and per-stage names
    persist alongside the numeric payload.
    """
    return {
        "schema": SUITE_SCHEMA,
        "suite": str(suite),
        "family": str(family),
        "system": str(system),
        "output_digest": str(output_digest),
        "stages": [
            {
                "stage": str(stage),
                "operator": str(operator),
                "output_table": str(output_table),
                "result": result_to_document(result),
            }
            for stage, operator, output_table, result in stages
        ],
    }


def suite_run_from_document(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Rebuild a suite run's stage results from its stored document.

    Returns ``{"suite", "family", "system", "output_digest", "stages"}``
    with ``stages`` as ``(stage, operator, output_table, SystemResult)``
    tuples (results carry the usual ``restored`` marker and
    ``output=None``).  Raises ``ValueError`` on a schema mismatch so the
    runner treats drifted documents as store misses.
    """
    if document.get("schema") != SUITE_SCHEMA:
        raise ValueError(
            f"unsupported stored suite-run schema {document.get('schema')!r}"
        )
    return {
        "suite": document["suite"],
        "family": document["family"],
        "system": document["system"],
        "output_digest": document["output_digest"],
        "stages": [
            (
                entry["stage"],
                entry["operator"],
                entry["output_table"],
                result_from_document(entry["result"]),
            )
            for entry in document["stages"]
        ],
    }
