"""The fleet worker: one evaluation subprocess behind the supervisor.

A worker is a plain ``python -m repro.service.resilience.worker``
process speaking newline-delimited JSON over stdin/stdout -- one task
object in, one response object out.  Verbs:

``ping``
    Heartbeat: answers ``{"ok": true, "pong": true, "pid": ...}``
    immediately.  The supervisor pings idle workers and declares a
    silent one wedged.
``evaluate``
    ``{"scenario": {...}, "store": dir-or-null, "cache": bool}`` ->
    the scenario's tidy records plus the store-counter delta its
    evaluation caused (the supervisor folds deltas into the parent
    handle, keeping fleet-run store stats truthful).
``exit``
    Acknowledge and leave the loop (clean drain at fleet shutdown).

Workers exit on stdin EOF, so an orphaned worker (its supervisor was
``kill -9``-ed) dies with its parent instead of leaking.

**Deterministic fault injection.**  The ``REPRO_WORKER_CHAOS``
environment variable (comma-separated ``k=v`` pairs) arms seeded
crash/stall faults the chaos harness uses::

    kill_after=N[,mode=pre|post]   SIGKILL itself on its (N+1)-th
                                   evaluate task -- before doing any
                                   work (``pre``) or after evaluating
                                   and writing the store but *before*
                                   replying (``post``, which is how
                                   replays exercise store-level dedup).
    stall_after=N[,stall=SECONDS]  sleep mid-task instead of dying
                                   (exceeds the supervisor's task
                                   deadline -> treated as wedged).

Faults live *here*, in the victim process, so the failure is a real
``SIGKILL`` mid-batch -- the supervisor sees exactly what a production
crash looks like -- while remaining schedulable from a seed.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from typing import Any, Dict, Optional, TextIO


def parse_chaos(spec: Optional[str]) -> Dict[str, Any]:
    """``REPRO_WORKER_CHAOS`` -> a normalized fault plan (empty if unset)."""
    plan: Dict[str, Any] = {}
    if not spec:
        return plan
    for pair in spec.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, _, value = pair.partition("=")
        key = key.strip()
        if key in ("kill_after", "stall_after"):
            plan[key] = int(value)
        elif key == "stall":
            plan[key] = float(value)
        elif key == "mode":
            if value not in ("pre", "post"):
                raise ValueError(f"chaos mode must be pre|post, got {value!r}")
            plan[key] = value
        else:
            raise ValueError(f"unknown chaos key {key!r} in {spec!r}")
    plan.setdefault("mode", "pre")
    plan.setdefault("stall", 5.0)
    return plan


def _self_destruct() -> None:
    """Die the way a crashed worker dies: un-catchable, mid-write-nothing."""
    os.kill(os.getpid(), signal.SIGKILL)


def _evaluate(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one scenario with the task's store/cache selection installed.

    A task carrying ``"trace": true`` additionally runs under a fresh
    worker-local tracer and ships the finished spans back in the
    response (the supervisor re-parents them under the batch span) --
    the JSON-lines side channel the telemetry layer documents.
    """
    from repro.api.scenario import Scenario
    from repro.experiments import common
    from repro.telemetry import trace as _trace

    common.set_cache_enabled(bool(task.get("cache", True)))
    store_dir = task.get("store")
    if store_dir != common.store_path():
        common.configure_store(store_dir)
    handle = common.active_store()
    before = handle.counters() if handle is not None else None
    spans = None
    if task.get("trace"):
        with _trace.tracing() as tracer:
            with tracer.span(
                "fleet_worker", category="service", pid=os.getpid()
            ):
                records = Scenario.from_dict(task["scenario"]).records()
            spans = tracer.to_dicts()
    else:
        records = Scenario.from_dict(task["scenario"]).records()
    delta = None
    if handle is not None:
        after = handle.counters()
        delta = {k: after[k] - before[k] for k in before}
    response = {"records": records, "store_delta": delta}
    if spans is not None:
        response["spans"] = spans
    return response


def run(
    infile: TextIO,
    outfile: TextIO,
    chaos: Optional[Dict[str, Any]] = None,
    kill=_self_destruct,
) -> None:
    """The worker loop: read task lines, write response lines.

    ``chaos`` and ``kill`` are injectable so unit tests can drive the
    loop in-process (StringIO streams, recorded kills) while the real
    entry point wires stdio and ``SIGKILL``.
    """
    chaos = parse_chaos(os.environ.get("REPRO_WORKER_CHAOS")) if chaos is None else chaos
    evaluated = 0
    for line in infile:
        if not line.strip():
            continue
        task = None
        try:
            task = json.loads(line)
            verb = task.get("verb", "evaluate")
            task_id = task.get("id")
            if verb == "ping":
                response = {"id": task_id, "ok": True, "pong": True, "pid": os.getpid()}
            elif verb == "exit":
                outfile.write(json.dumps({"id": task_id, "ok": True, "bye": True}) + "\n")
                outfile.flush()
                return
            elif verb == "evaluate":
                if chaos.get("kill_after") is not None and evaluated >= chaos["kill_after"]:
                    if chaos["mode"] == "post":
                        # Evaluate first: the store write lands, the
                        # reply never does -- the requeued replay then
                        # dedups against the store.
                        _evaluate(task)
                    kill()
                    # A real kill never reaches here; the injectable
                    # test kill returns, so answer with a marker the
                    # supervisor would never see in production.
                    response = {"id": task_id, "ok": False, "error": "chaos: killed"}
                elif (
                    chaos.get("stall_after") is not None
                    and evaluated >= chaos["stall_after"]
                ):
                    time.sleep(chaos["stall"])
                    response = {"id": task_id, "ok": True, **_evaluate(task)}
                else:
                    response = {"id": task_id, "ok": True, **_evaluate(task)}
                evaluated += 1
            else:
                response = {"id": task_id, "ok": False, "error": f"unknown verb {verb!r}"}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            response = {
                "id": task.get("id") if isinstance(task, dict) else None,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        outfile.write(json.dumps(response) + "\n")
        outfile.flush()


def main() -> None:
    run(sys.stdin, sys.stdout)


if __name__ == "__main__":
    main()
