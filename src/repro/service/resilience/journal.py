"""Write-ahead intent journal for crash-safe multi-file store puts.

A store put touches two files (the object and, later, the index), and a
process can die between any two syscalls -- ``kill -9``, OOM, power
loss.  The journal makes the object write *recoverable*: before
touching anything, the writer persists a tiny **intent record** naming
the digest, the temp file it will write, and the final path; only after
the object is durably renamed into place is the intent retired.

On the next store open, :meth:`IntentJournal.recover` walks the
surviving intents and classifies each one:

``rolled_forward``
    The final object exists and validates (the crash happened after the
    rename, or a complete temp file was still on disk and could be
    renamed into place).  The entry is served as if the put completed.
``discarded``
    Neither a valid final object nor a valid temp file exists: the
    write never reached a consistent state, so its debris is deleted
    and the put simply never happened (content-addressed entries make
    this safe -- the next writer recreates identical bytes).

A final object that exists but fails validation is handed to the
caller's ``quarantine`` hook (never served, never silently unlinked),
and the intent's temp file -- if complete -- still rolls the entry
forward over it.

Intent files are one JSON object each, written atomically with fsync,
named ``<digest>.<pid>.json`` so concurrent writers of the same digest
never share a record.  All paths inside the record are store-root
relative: a store directory can be archived and moved without breaking
recovery.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional


def fsync_path(path: Path) -> None:
    """fsync an existing file by path (used on completed temp files)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    POSIX-only by nature; on platforms (or filesystems) where
    directories cannot be opened for fsync this is a silent no-op --
    the rename is still atomic, just not durability-ordered.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Path, text: str, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` via same-directory temp + rename.

    With ``fsync`` (the default) the temp file is fsynced **before** the
    rename and the directory after it, so a rename that is visible is
    also durable: a reader can never observe an entry that a power loss
    would then un-write.  ``fsync=False`` is the fast path for tests and
    throwaway stores.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(path.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


class IntentJournal:
    """The store's write-ahead journal, one intent file per in-flight put."""

    def __init__(self, root: Path, fsync: bool = True) -> None:
        self._root = Path(root)
        self._dir = self._root / "journal"
        self._fsync = fsync

    @property
    def directory(self) -> Path:
        return self._dir

    def pending(self):
        """The intent files currently on disk (crashed or in-flight puts)."""
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob("*.json"))

    def _relative(self, path: Path) -> str:
        return os.path.relpath(path, self._root)

    @contextlib.contextmanager
    def intent(self, digest: str, final: Path, tmp: Path):
        """Journal one put: record the intent, yield, retire it.

        The caller performs the actual temp-write + rename inside the
        ``with`` block; the intent is removed only on success, so any
        crash inside the block leaves a record for :meth:`recover`.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        record = self._dir / f"{digest}.{os.getpid()}.json"
        atomic_write_text(
            record,
            json.dumps(
                {
                    "digest": digest,
                    "final": self._relative(final),
                    "tmp": self._relative(tmp),
                }
            ),
            fsync=self._fsync,
        )
        yield
        with contextlib.suppress(OSError):
            record.unlink()

    def recover(
        self,
        validate: Callable[[Path], bool],
        quarantine: Optional[Callable[[Path], None]] = None,
    ) -> Dict[str, int]:
        """Roll forward or discard every surviving intent.

        ``validate(path)`` decides whether a file is a complete, servable
        document; ``quarantine(path)`` receives a final object that
        exists but fails validation (a torn or corrupted entry that must
        never be served).  Returns the classification counters.
        """
        counts = {"rolled_forward": 0, "discarded": 0, "quarantined": 0}
        for record in self.pending():
            try:
                meta = json.loads(record.read_text())
                final = self._root / meta["final"]
                tmp = self._root / meta["tmp"]
            except (OSError, ValueError, KeyError, TypeError):
                # The intent record itself is torn: there is nothing it
                # can name reliably, so the put is discarded.
                with contextlib.suppress(OSError):
                    record.unlink()
                counts["discarded"] += 1
                continue

            if final.is_file() and not validate(final):
                # The final object is present but torn (a corruption
                # injected *after* the rename, or a non-atomic overwrite
                # by something else): never serve it.
                if quarantine is not None:
                    quarantine(final)
                counts["quarantined"] += 1
            if final.is_file() and validate(final):
                counts["rolled_forward"] += 1
            elif tmp.is_file() and validate(tmp):
                # Crash landed between the temp write and the rename:
                # finish the job.
                os.replace(tmp, final)
                if self._fsync:
                    fsync_dir(final.parent)
                counts["rolled_forward"] += 1
            else:
                with contextlib.suppress(OSError):
                    tmp.unlink()
                counts["discarded"] += 1
            with contextlib.suppress(OSError):
                record.unlink()
        return counts
