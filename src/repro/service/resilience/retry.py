"""Retry/backoff policy and circuit breaker for the service layer.

Both primitives are deliberately tiny and deterministic-by-injection:

- :class:`RetryPolicy` computes bounded exponential backoff delays.
  Jitter is drawn from a caller-supplied ``random.Random`` (or skipped
  when none is given), so tests and the seeded chaos harness replay the
  exact same schedule while production callers still decorrelate.
- :class:`CircuitBreaker` is the classic closed -> open -> half-open
  state machine over *consecutive* failures.  The clock is injectable
  (``time.monotonic`` by default) so the open->half-open transition is
  testable without sleeping.

They are shared by the resilient :class:`~repro.service.client.ServiceClient`
(transport retries) and the :class:`~repro.service.resilience.supervisor.WorkerFleet`
(worker restart pacing and the stop-restarting-a-crashing-fleet guard).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**attempt``, capped.

    ``jitter`` is the maximum *fraction* added on top of the computed
    delay (0.5 means "up to +50%"); it only applies when the caller
    passes an rng, so un-seeded use stays deterministic.
    """

    retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")

    def delay(self, attempt: int, rng=None) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def delays(self, rng=None) -> Iterator[float]:
        """One delay per allowed retry, in order."""
        for attempt in range(self.retries):
            yield self.delay(attempt, rng)


class CircuitBreaker:
    """Trip after ``failure_threshold`` *consecutive* failures.

    While **open**, :meth:`allow` answers ``False`` until ``reset_after``
    seconds pass; then one probe is allowed through (**half-open**).  A
    success closes the circuit, a failure re-opens it with a fresh
    timer.  Any success resets the consecutive-failure count.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._probing or self._clock() - self._opened_at >= self.reset_after:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May the caller attempt the protected operation right now?"""
        if self._opened_at is None:
            return True
        if self._probing:
            # One half-open probe is already in flight; hold the line.
            return False
        if self._clock() - self._opened_at >= self.reset_after:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        if self._opened_at is not None:
            self._flip("closed")
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._probing or self._failures >= self.failure_threshold:
            if self._opened_at is None or self._probing:
                self._flip("opened")
            self._opened_at = self._clock()
            self._probing = False

    @staticmethod
    def _flip(transition: str) -> None:
        """Count a state flip in the telemetry registry.

        Imported lazily so the breaker stays usable in contexts that
        never touch telemetry (and import cycles stay impossible).
        """
        from repro.telemetry import registry

        registry().counter(f"service.breaker.{transition}").inc()
