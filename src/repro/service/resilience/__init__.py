"""Resilience layer for the evaluation service.

Everything that makes the service survive real-world failure:

- :mod:`repro.service.resilience.retry` -- :class:`RetryPolicy`
  (bounded exponential backoff with injectable jitter) and
  :class:`CircuitBreaker` (closed/open/half-open over consecutive
  failures), shared by the resilient client and the worker fleet.
- :mod:`repro.service.resilience.journal` -- the store's write-ahead
  :class:`IntentJournal` plus the fsync helpers behind crash-safe
  atomic writes; interrupted puts are rolled forward or discarded by a
  startup recovery scan, never half-served.
- :mod:`repro.service.resilience.supervisor` -- :class:`WorkerFleet`:
  N supervised worker subprocesses behind one dispatch queue, with
  heartbeat health checks, backoff-paced restarts, crash requeue with
  store-deduped idempotent task ids, and in-process degradation when
  the circuit opens.
- :mod:`repro.service.resilience.worker` -- the worker subprocess main
  loop, including the seeded ``REPRO_WORKER_CHAOS`` fault hooks the
  chaos harness (``tools/chaos.py`` / ``make chaos-test``) arms.

See docs/ARCHITECTURE.md, "Resilience & failure semantics".
"""

from repro.service.resilience.journal import IntentJournal, atomic_write_text
from repro.service.resilience.retry import CircuitBreaker, RetryPolicy
from repro.service.resilience.supervisor import WorkerFleet, WorkerTaskError

__all__ = [
    "CircuitBreaker",
    "IntentJournal",
    "RetryPolicy",
    "WorkerFleet",
    "WorkerTaskError",
    "atomic_write_text",
]
