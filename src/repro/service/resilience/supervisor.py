"""The supervised worker fleet: N evaluation subprocesses, one front door.

A :class:`WorkerFleet` owns ``size`` worker subprocesses (see
:mod:`repro.service.resilience.worker`) and drives batches of scenario
evaluations through them with production-grade supervision:

- **Dispatch.**  One slot thread per worker pulls tasks off a shared
  queue -- a crashed or slow worker never blocks the others.
- **Heartbeat.**  Idle slots ping their worker every
  ``heartbeat_interval`` seconds; a worker that stays silent past the
  ping timeout is declared wedged, killed and replaced.
- **Restart with backoff.**  A dead worker is respawned lazily, paced
  by exponential backoff on the slot's consecutive-crash count, so a
  worker that dies on arrival cannot hot-loop the supervisor.
- **Circuit breaker.**  Consecutive fleet-wide failures trip a
  :class:`~repro.service.resilience.retry.CircuitBreaker`; while open,
  tasks are not fed to workers at all but **degrade to in-process
  evaluation** in the caller -- results keep flowing (byte-identical:
  it is the same simulation either way), only the isolation is lost.
- **Requeue on crash.**  A task in flight on a dying worker is
  requeued (bounded by ``max_task_attempts``, then degraded).  Task ids
  are the scenario's **content digest**, the same address
  ``run_cached_result`` consults: if the first attempt died *after*
  writing the store but before replying, the replay is a store hit,
  not a recompute -- replays dedup against the store by construction.

``evaluate`` returns records in submission order regardless of which
worker finished what when, so a fleet-run batch exports byte-identically
to a sequential one.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import threading
import queue as queue_mod
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.service.resilience.retry import CircuitBreaker, RetryPolicy
from repro.telemetry import span as _span
from repro.telemetry import trace as _trace


class WorkerTaskError(RuntimeError):
    """A healthy worker reported a task-level failure (bad scenario)."""


class _WorkerDied(Exception):
    """Transport-level loss of a worker: EOF, timeout, garbage, exit."""


class _Worker:
    """One subprocess plus its line-oriented request/response channel."""

    def __init__(self, command: List[str], env: Dict[str, str]) -> None:
        self._proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
            bufsize=1,
        )

    @property
    def pid(self) -> int:
        return self._proc.pid

    @property
    def alive(self) -> bool:
        return self._proc.poll() is None

    def request(self, payload: Dict[str, Any], timeout: float) -> Dict[str, Any]:
        """One task round trip; raises :class:`_WorkerDied` on any loss.

        The protocol is strictly one-line-in / one-line-out per worker,
        so selecting on the raw pipe before the buffered readline is
        race-free: nothing can sit in the Python-level buffer between
        round trips.
        """
        try:
            self._proc.stdin.write(json.dumps(payload) + "\n")
            self._proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise _WorkerDied(f"worker {self.pid} pipe closed: {exc}") from exc
        ready, _, _ = select.select([self._proc.stdout], [], [], timeout)
        if not ready:
            raise _WorkerDied(f"worker {self.pid} silent for {timeout}s")
        line = self._proc.stdout.readline()
        if not line:
            raise _WorkerDied(f"worker {self.pid} died (exit {self._proc.poll()})")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise _WorkerDied(f"worker {self.pid} spoke garbage: {line!r}") from exc
        if not isinstance(response, dict):
            raise _WorkerDied(f"worker {self.pid} spoke garbage: {line!r}")
        return response

    def stop(self, grace: float = 2.0) -> None:
        """Polite ``exit`` verb, then SIGKILL whatever is left."""
        if self.alive:
            try:
                self.request({"verb": "exit"}, timeout=grace)
            except _WorkerDied:
                pass
        self.kill()

    def kill(self) -> None:
        if self.alive:
            self._proc.kill()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass
        for stream in (self._proc.stdin, self._proc.stdout):
            try:
                stream.close()
            except OSError:  # pragma: no cover - already torn down
                pass


class _Task:
    """One scenario on its way through the fleet."""

    def __init__(self, index: int, task_id: str, scenario: Dict[str, Any],
                 store: Optional[str], cache: bool, batch: "_Batch",
                 trace: bool = False) -> None:
        self.index = index
        self.id = task_id
        self.scenario = scenario
        self.store = store
        self.cache = cache
        self.batch = batch
        self.trace = trace
        self.attempts = 0

    def request(self) -> Dict[str, Any]:
        payload = {
            "verb": "evaluate",
            "id": self.id,
            "scenario": self.scenario,
            "store": self.store,
            "cache": self.cache,
        }
        if self.trace:
            payload["trace"] = True
        return payload


class _Batch:
    """Completion bookkeeping for one ``evaluate`` call."""

    def __init__(self, size: int) -> None:
        self._cond = threading.Condition()
        self._remaining = size
        self.records: Dict[int, List[Dict[str, Any]]] = {}
        self.deltas: List[Dict[str, int]] = []
        self.errors: List[str] = []
        self.local: List[int] = []  # indices degraded to in-process runs
        self.spans: Dict[int, List[Dict[str, Any]]] = {}  # worker trace spans

    def _done_one(self) -> None:
        with self._cond:
            self._remaining -= 1
            if self._remaining <= 0:
                self._cond.notify_all()

    def complete(self, index: int, records, delta, spans=None) -> None:
        self.records[index] = records
        if delta:
            self.deltas.append(delta)
        if spans:
            self.spans[index] = spans
        self._done_one()

    def error(self, index: int, message: str) -> None:
        self.errors.append(message)
        self._done_one()

    def degrade(self, index: int) -> None:
        self.local.append(index)
        self._done_one()

    def wait(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._remaining <= 0, timeout)


_STOP = object()


class WorkerFleet:
    """``size`` supervised evaluation workers behind one dispatch queue."""

    def __init__(
        self,
        size: int,
        task_timeout: float = 300.0,
        heartbeat_interval: float = 5.0,
        heartbeat_timeout: float = 10.0,
        max_task_attempts: int = 3,
        restart_backoff: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        self.size = size
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_task_attempts = max_task_attempts
        self.backoff = restart_backoff if restart_backoff is not None else RetryPolicy(
            base_delay=0.05, max_delay=2.0, jitter=0.0
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._env = env
        self._queue: "queue_mod.Queue" = queue_mod.Queue()
        self._workers: List[Optional[_Worker]] = [None] * size
        self._crashes = [0] * size  # consecutive, per slot; reset on success
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._stats = {
            "spawned": 0,
            "restarts": 0,
            "requeues": 0,
            "completed": 0,
            "degraded_tasks": 0,
            "heartbeats": 0,
            "heartbeat_failures": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._slot_loop, args=(i,), name=f"fleet-slot-{i}", daemon=True
            )
            for i in range(size)
        ]
        for i in range(size):  # eager spawn: warm workers, pids known up front
            self._spawn(i)
        for thread in self._threads:
            thread.start()

    # -- worker lifecycle ----------------------------------------------------

    def _command(self) -> List[str]:
        return [sys.executable, "-m", "repro.service.resilience.worker"]

    def _environment(self) -> Dict[str, str]:
        if self._env is not None:
            return dict(self._env)
        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        current = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not current else src + os.pathsep + current
        return env

    def _spawn(self, slot: int) -> Optional[_Worker]:
        try:
            worker = _Worker(self._command(), self._environment())
        except OSError:
            self.breaker.record_failure()
            return None
        with self._lock:
            self._workers[slot] = worker
            self._stats["spawned"] += 1
            if self._stats["spawned"] > self.size:
                self._stats["restarts"] += 1
        return worker

    def _discard(self, slot: int) -> None:
        worker, self._workers[slot] = self._workers[slot], None
        if worker is not None:
            worker.kill()

    def _ensure_worker(self, slot: int) -> Optional[_Worker]:
        worker = self._workers[slot]
        if worker is not None and worker.alive:
            return worker
        if worker is not None:
            self._discard(slot)
        return self._spawn(slot)

    # -- the slot loop -------------------------------------------------------

    def _slot_loop(self, slot: int) -> None:
        while not self._closed.is_set():
            try:
                task = self._queue.get(timeout=self.heartbeat_interval)
            except queue_mod.Empty:
                self._heartbeat(slot)
                continue
            if task is _STOP:
                break
            if not self.breaker.allow():
                # Open circuit: the fleet has been failing consistently;
                # stop feeding it and let the caller evaluate locally.
                with self._lock:
                    self._stats["degraded_tasks"] += 1
                task.batch.degrade(task.index)
                continue
            worker = self._ensure_worker(slot)
            if worker is None:
                self._on_failure(slot, task)
                continue
            try:
                response = worker.request(task.request(), timeout=self.task_timeout)
            except _WorkerDied:
                self._discard(slot)
                self._on_failure(slot, task)
                continue
            self.breaker.record_success()
            self._crashes[slot] = 0
            if response.get("ok"):
                with self._lock:
                    self._stats["completed"] += 1
                task.batch.complete(
                    task.index,
                    response.get("records"),
                    response.get("store_delta"),
                    response.get("spans"),
                )
            else:
                # The worker is healthy; the *task* is bad.  Replaying a
                # deterministic failure elsewhere cannot help: surface it.
                task.batch.error(
                    task.index, response.get("error", "unknown worker error")
                )

    def _on_failure(self, slot: int, task: _Task) -> None:
        self.breaker.record_failure()
        task.attempts += 1
        if task.attempts >= self.max_task_attempts:
            with self._lock:
                self._stats["degraded_tasks"] += 1
            task.batch.degrade(task.index)
        else:
            with self._lock:
                self._stats["requeues"] += 1
            self._queue.put(task)
        # Pace the respawn: a crash-on-arrival worker must not hot-loop.
        self._closed.wait(self.backoff.delay(self._crashes[slot]))
        self._crashes[slot] += 1

    def _heartbeat(self, slot: int) -> None:
        worker = self._workers[slot]
        if worker is None:
            if self.breaker.allow():
                self._spawn(slot)
            return
        with self._lock:
            self._stats["heartbeats"] += 1
        try:
            response = worker.request(
                {"verb": "ping", "id": "heartbeat"}, timeout=self.heartbeat_timeout
            )
            if not response.get("pong"):
                raise _WorkerDied(f"worker {worker.pid} mis-answered the heartbeat")
        except _WorkerDied:
            with self._lock:
                self._stats["heartbeat_failures"] += 1
            self.breaker.record_failure()
            self._discard(slot)

    # -- the batch API -------------------------------------------------------

    def evaluate(
        self,
        scenarios,
        store: Optional[str] = None,
        cache: bool = True,
        timeout: Optional[float] = None,
    ) -> Tuple[List[List[Dict[str, Any]]], Dict[str, int], int]:
        """Run one batch; returns (records per scenario, store-counter
        delta summed over workers, number of tasks degraded in-process).

        ``scenarios`` are :class:`~repro.api.scenario.Scenario` objects;
        degraded tasks (circuit open, attempts exhausted, no spawnable
        worker) are evaluated in the *caller's* process at the end, so
        the batch always completes and always against the caller's
        active store selection.
        """
        if self._closed.is_set():
            raise RuntimeError("fleet is closed")
        scenarios = list(scenarios)
        tracer = _trace.active_tracer()
        batch = _Batch(len(scenarios))
        with _span(
            "fleet_batch", category="service", tasks=len(scenarios)
        ) as batch_sp:
            for index, scenario in enumerate(scenarios):
                batch_task = _Task(
                    index,
                    self._task_id(scenario, index),
                    scenario.to_dict(),
                    store,
                    cache,
                    batch,
                    trace=tracer is not None,
                )
                self._queue.put(batch_task)
            if not batch.wait(timeout):
                raise TimeoutError(
                    f"fleet batch did not complete within {timeout}s"
                )
            if batch.errors:
                raise WorkerTaskError(batch.errors[0])
            for index in sorted(batch.local):
                batch.records[index] = scenarios[index].records()
            batch_sp.set(degraded=len(batch.local))
            if tracer is not None:
                # Re-parent the worker-subprocess spans (shipped back on
                # the JSON-lines side channel) under this batch span, in
                # task order so ids stay deterministic.
                parent = tracer.current_span_id()
                for index in sorted(batch.spans):
                    tracer.adopt(batch.spans[index], parent_id=parent)
        delta: Dict[str, int] = {}
        for partial in batch.deltas:
            for key, value in partial.items():
                delta[key] = delta.get(key, 0) + value
        return (
            [batch.records[i] for i in range(len(scenarios))],
            delta,
            len(batch.local),
        )

    @staticmethod
    def _task_id(scenario, index: int) -> str:
        """Idempotent request id: the scenario's store content address.

        A replayed task carries the same id and therefore the same
        digest ``run_cached_result`` probes -- which is what lets a
        replay of a crashed-after-put attempt dedup against the store.
        """
        if getattr(scenario, "is_query", False):
            return f"query-{index}"
        from repro.experiments import common
        from repro.service.store import digest_payload

        return digest_payload(
            common.result_store_payload(
                scenario.system,
                scenario.operator,
                scenario.model_scale,
                scenario.seed,
                scenario.num_partitions,
            )
        )

    # -- introspection / shutdown --------------------------------------------

    def pids(self) -> List[int]:
        """Live worker pids (the chaos harness's kill list)."""
        with self._lock:
            return [w.pid for w in self._workers if w is not None and w.alive]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            alive = sum(1 for w in self._workers if w is not None and w.alive)
            return dict(
                self._stats,
                size=self.size,
                alive=alive,
                circuit=self.breaker.state,
                pids=[w.pid for w in self._workers if w is not None and w.alive],
            )

    def close(self) -> None:
        """Drain the slot threads and stop every worker."""
        if self._closed.is_set():
            return
        self._closed.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=30)
        for slot in range(self.size):
            worker, self._workers[slot] = self._workers[slot], None
            if worker is not None:
                worker.stop()

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
