"""Self-contained HTML report generation (``python -m repro.report``).

Three layers, all stdlib-only:

- :mod:`repro.report.palette` -- the validated color tokens and the
  report's stylesheet (light + dark mode from one set of roles);
- :mod:`repro.report.charts` -- pure inline-SVG chart builders (grouped
  bars, stacked fractions, heatmap, gated trajectory bars) plus the
  table view every chart ships with;
- :mod:`repro.report.sections` -- marshals real experiment outputs
  (figures 6-9, pipeline bottlenecks, sweep records, suite scores, the
  BENCH_PR* trajectory) into those charts.

The CLI front end lives in :mod:`repro.report.__main__`; see
``docs/USAGE.md`` for the flag reference.
"""

from repro.report.sections import (
    render_bench,
    render_figures,
    render_pipelines,
    render_suites,
    render_sweep,
)

__all__ = [
    "render_bench",
    "render_figures",
    "render_pipelines",
    "render_suites",
    "render_sweep",
]
