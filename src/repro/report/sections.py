"""Report sections: real experiment data -> chart cards + table views.

Each ``render_*`` function returns one ``<section>`` of HTML.  The data
comes from the same experiment modules the terminal report uses
(``fig6_probe`` ... ``fig9_efficiency``, ``pipeline_queries``, the suite
scorer), so a chart can never drift from the printed tables -- both are
projections of the same ``run()`` outputs, and the shared caches mean a
report generated after ``run_all`` replays without re-simulating.

Every chart ships with its table view (the accessibility fallback and
the exact numbers), and series identity is carried by a legend plus the
fixed categorical slot order -- never by color alone.
"""

from __future__ import annotations

import json
import re
from html import escape
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.report.charts import (
    bars_with_threshold,
    chart_block,
    grouped_bars,
    heatmap,
    html_table,
    stacked_hbars,
)

#: Display names for the system/series tokens the experiments use.
DISPLAY = {
    "cpu": "CPU",
    "nmp": "NMP",
    "nmp-rand": "NMP-rand",
    "nmp-seq": "NMP-seq",
    "nmp-perm": "NMP-perm",
    "mondrian": "Mondrian",
}


def _display(token: str) -> str:
    return DISPLAY.get(token, token)


def _legend(names: Sequence[str]) -> List[Tuple[str, str]]:
    """Series names -> (label, slot color) pairs, in fixed slot order."""
    return [
        (_display(name), f"var(--series-{i + 1})")
        for i, name in enumerate(names)
    ]


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def _speedup_chart(title: str, note: str, speedups: Dict, series) -> str:
    operators = list(speedups)
    svg = grouped_bars(
        operators, list(series), lambda g, s: speedups[g][s], unit="x"
    )
    table = html_table(
        ["Operator"] + [_display(s) for s in series],
        [
            [op] + [f"{speedups[op][s]:.1f}x" for s in series]
            for op in operators
        ],
    )
    return chart_block(title, note, _legend(series), svg + table)


def render_figures(scale: float, seed: int = 17) -> str:
    """Figures 6-9: the paper's headline charts from live model runs."""
    from repro.experiments import fig6_probe, fig7_overall, fig8_energy, fig9_efficiency

    fig6 = fig6_probe.run(scale=scale, seed=seed)
    fig7 = fig7_overall.run(scale=scale, seed=seed)
    fig8 = fig8_energy.run(scale=scale, seed=seed)
    fig9 = fig9_efficiency.run(scale=scale, seed=seed)

    parts = ['<section id="figures"><h2>Paper figures (6&ndash;9)</h2>']
    parts.append(_speedup_chart(
        "Figure 6: probe-phase speedup vs CPU",
        f"Per-operator probe speedup over the CPU baseline at {scale:.0f}x "
        "model scale.",
        fig6["speedups"], fig6_probe.SYSTEMS,
    ))
    parts.append(_speedup_chart(
        "Figure 7: overall speedup vs CPU",
        "End-to-end (partition + probe) speedup; the paper reports "
        "Mondrian peaks up to 49x.",
        fig7["speedups"], fig7_overall.SERIES,
    ))

    components = fig8_energy.COMPONENTS
    component_names = ("DRAM dynamic", "DRAM static", "Cores", "SerDes+NOC")
    rows = [
        (
            _display(system),
            [fig8["fractions"][system][c] for c in components],
            f"{fig8['totals_j'][system]:.3f} J",
        )
        for system in fig8_energy.SYSTEMS
    ]
    fig8_table = html_table(
        ["System"] + list(component_names) + ["Total"],
        [
            [_display(system)]
            + [f"{fig8['fractions'][system][c] * 100:.1f}%" for c in components]
            + [f"{fig8['totals_j'][system]:.3f} J"]
            for system in fig8_energy.SYSTEMS
        ],
    )
    parts.append(chart_block(
        "Figure 8: energy breakdown",
        "Share of total energy per component, all four operators "
        "combined; bar ends carry absolute totals.",
        _legend(component_names),
        stacked_hbars(rows) + fig8_table,
    ))

    parts.append(_speedup_chart(
        "Figure 9: efficiency improvement vs CPU",
        "Performance per watt relative to the CPU baseline "
        "(paper: Mondrian up to 28x).",
        fig9["improvements"], fig9_efficiency.SERIES,
    ))
    parts.append("</section>")
    return "".join(parts)


def render_pipelines(scale: float, seed: int = 17) -> str:
    """Per-stage bottleneck breakdowns for the canonical query pipelines."""
    from repro.experiments import pipeline_queries

    out = pipeline_queries.run(scale=scale, seed=seed)
    parts = [
        '<section id="pipelines">'
        "<h2>Query pipelines: per-stage bottlenecks</h2>"
    ]
    for query, series in out["perfs"].items():
        stages = [s.stage for s in next(iter(series.values())).stages]
        rows = []
        annotate = {}
        for system in pipeline_queries.SYSTEMS:
            perf = series[system]
            fractions = perf.time_fractions()
            bottleneck = perf.bottleneck()
            rows.append((
                _display(system),
                [fractions[stage] for stage in stages],
                f"{_ms(perf.runtime_s)} ms",
            ))
            annotate[_display(system)] = (
                f"(bottleneck: {bottleneck.stage}, "
                f"{bottleneck.dominant_limit}-bound)"
            )
        table = html_table(
            ["System"] + stages + ["Total", "Speedup vs CPU"],
            [
                [_display(system)]
                + [
                    f"{series[system].time_fractions()[stage] * 100:.1f}%"
                    for stage in stages
                ]
                + [
                    f"{_ms(series[system].runtime_s)} ms",
                    f"{out['speedups'][query][system]:.1f}x",
                ]
                for system in pipeline_queries.SYSTEMS
            ],
        )
        parts.append(chart_block(
            f"Pipeline: {query}",
            "Share of end-to-end runtime per stage; the right-hand note "
            "names each machine's bottleneck stage and its dominant "
            "resource limit.",
            _legend(stages),
            stacked_hbars(rows, annotate=annotate) + table,
        ))
    parts.append("</section>")
    return "".join(parts)


def render_sweep(records: List[dict]) -> str:
    """A sweep ResultSet (tidy records JSON) as a time heatmap."""
    totals: Dict[Tuple[str, str], float] = {}
    for record in records:
        key = (record["system"], record["workload"])
        totals[key] = totals.get(key, 0.0) + record["time_s"]
    systems = sorted({s for s, _ in totals})
    workloads = sorted({w for _, w in totals})
    svg = heatmap(systems, workloads, totals, fmt=lambda v: f"{_ms(v)} ms")
    table = html_table(
        ["System"] + workloads,
        [
            [system] + [f"{_ms(totals[(system, w)])} ms" for w in workloads]
            for system in systems
        ],
    )
    return (
        '<section id="sweep"><h2>Scenario sweep</h2>'
        + chart_block(
            "Total modeled time per grid point",
            f"{len(records)} records; darker cells are slower "
            "(single-hue magnitude ramp, identical in both modes).",
            [],
            svg + table,
        )
        + "</section>"
    )


def render_suites(records: List[dict]) -> str:
    """The suite grid's ranked cross-suite score report as tier tables."""
    from repro.suites.scoring import score_records

    report = score_records(records)
    parts = ['<section id="suites"><h2>Benchmark suites</h2>']

    ranking = report["ranking"]
    svg = grouped_bars(
        [entry["system"] for entry in ranking],
        ["score"],
        lambda system, _s: next(
            e["score"] for e in ranking if e["system"] == system
        ),
    )
    rank_table = html_table(
        ["Rank", "System", "Score"],
        [
            [str(i + 1), entry["system"], f"{entry['score']:.3f}"]
            for i, entry in enumerate(ranking)
        ],
    )
    parts.append(chart_block(
        "Cross-suite ranking",
        "Weighted composite score across every suite (higher is "
        "better); weights cover time, energy, balance and resilience "
        "layers.",
        [],
        svg + rank_table,
    ))

    suite_rows = []
    winners = set()
    for suite, entry in sorted(report["suites"].items()):
        for system in sorted(entry["systems"]):
            cell = entry["systems"][system]
            row_index = len(suite_rows)
            suite_rows.append([
                suite,
                entry["family"],
                system,
                f"{cell['time_s'] * 1e3:.3f} ms",
                f"{cell['energy_j']:.4f} J",
                f"{cell['composite']:.3f}",
                cell["tier"] + (" *" if system == entry["winner"] else ""),
            ])
            if system == entry["winner"]:
                winners.add((row_index, 6))
    parts.append("<h3>Per-suite tiers</h3>")
    parts.append(html_table(
        ["Suite", "Family", "System", "Time", "Energy", "Composite", "Tier"],
        suite_rows,
        numeric_from=3,
        winners=winners,
    ))
    parts.append(
        '<p class="sub">Tier A: within 90% of the suite winner\'s '
        "composite; tier B: within 65%; * marks the winner.</p>"
    )

    parts.append("<h3>Family winners</h3>")
    parts.append(html_table(
        ["Family", "Winner", "Mean composite per system"],
        [
            [
                family,
                entry["winner"],
                ", ".join(
                    f"{system} {mean:.3f}"
                    for system, mean in sorted(entry["mean_composite"].items())
                ),
            ]
            for family, entry in sorted(report["families"].items())
        ],
    ))
    parts.append("</section>")
    return "".join(parts)


def _bench_means(path: Path) -> Dict[str, float]:
    """benchmark name -> representative seconds (min round, mean fallback).

    Mirrors ``benchmarks/compare.py``'s ``load_means`` -- kept local so
    the installed package never imports from the repo checkout.
    """
    payload = json.loads(path.read_text())
    return {
        b["name"]: b["stats"].get("min", b["stats"].get("mean"))
        for b in payload.get("benchmarks", [])
    }


def render_bench(bench_dir: Path, gate_pct: float = 10.0) -> str:
    """The BENCH_PR* trajectory with the regression gate visualized."""

    def pr_number(path: Path) -> int:
        match = re.search(r"(\d+)", path.stem)
        return int(match.group(1)) if match else -1

    files = sorted(Path(bench_dir).glob("BENCH_*.json"), key=pr_number)
    if len(files) < 2:
        return (
            '<section id="bench"><h2>Performance trajectory</h2>'
            f'<p class="sub">Fewer than two BENCH_*.json trajectory '
            f"points in {escape(str(bench_dir))}; nothing to compare "
            "yet.</p></section>"
        )
    labels, geomeans, details = [], [], []
    gate_ok = True
    for old_path, new_path in zip(files, files[1:]):
        old, new = _bench_means(old_path), _bench_means(new_path)
        shared = [
            name for name in sorted(set(old) & set(new))
            if old[name] > 0 and new[name] > 0
        ]
        if not shared:
            continue
        geomean = 1.0
        worst = 0.0
        regressed = 0
        for name in shared:
            ratio = old[name] / new[name]
            geomean *= ratio
            pct = (new[name] / old[name] - 1.0) * 100.0
            worst = max(worst, pct)
            if pct > gate_pct:
                regressed += 1
        geomean **= 1.0 / len(shared)
        labels.append(f"{old_path.stem.replace('BENCH_', '')} → "
                      f"{new_path.stem.replace('BENCH_', '')}")
        geomeans.append(geomean)
        details.append((len(shared), worst, regressed))
        gate_ok = gate_ok and regressed == 0
    threshold = 1.0 / (1.0 + gate_pct / 100.0)
    svg = bars_with_threshold(
        labels, geomeans, threshold,
        f"per-benchmark gate (−{gate_pct:.0f}%)", unit="x",
    )
    table = html_table(
        ["Transition", "Shared benches", "Geomean speedup",
         "Worst regression", "Gate"],
        [
            [
                label,
                str(shared),
                f"{geomean:.2f}x",
                f"+{worst:.1f}%",
                "pass" if regressed == 0 else f"FAIL ({regressed})",
            ]
            for label, geomean, (shared, worst, regressed)
            in zip(labels, geomeans, details)
        ],
    )
    verdict = (
        '<p class="sub">Gate: no shared benchmark may regress more than '
        f"{gate_pct:.0f}% between consecutive trajectory points "
        f"(<code>make bench-compare</code>) &mdash; currently "
        f'<span class="{"pass" if gate_ok else "fail"}">'
        f'{"passing" if gate_ok else "FAILING"}</span>.</p>'
    )
    return (
        '<section id="bench"><h2>Performance trajectory</h2>'
        + chart_block(
            "Geomean speedup per trajectory step",
            "Each bar is the geomean speedup of the newer benchmark "
            "snapshot over its predecessor across their shared "
            "benchmarks; above 1x is faster. The dashed line marks the "
            "per-benchmark regression gate.",
            [],
            svg + table,
        )
        + verdict
        + "</section>"
    )
