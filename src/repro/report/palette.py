"""The report's visual tokens: one validated palette, two modes.

Every color in the generated HTML is referenced by *role* through a CSS
custom property declared here -- the chart-building code never touches a
hex value directly, so light and dark mode swap in one place.  The hues
are a validated categorical order (adjacent-pair CVD distance >= 8 in
both modes), a single-hue sequential blue ramp for magnitude encodings,
and recessive chrome inks for axes, gridlines and labels.

Rules the charts in :mod:`repro.report.charts` follow:

- categorical slots are assigned in fixed order, never cycled;
- sequential magnitude (the sweep heatmap) uses the one blue ramp,
  light -> dark, identical in both modes;
- text always wears a text token (primary/secondary/muted ink), never a
  series color;
- one y-axis per chart, hairline gridlines, a baseline heavier than the
  grid but lighter than the ink.
"""

from __future__ import annotations

#: Categorical series slots, in validated order (light mode / dark mode).
#: Four slots are used at most (figure 8's energy components); stacked
#: segments and grouped bars read adjacent pairs, which this order
#: clears in both modes.
CATEGORICAL = (
    ("#2a78d6", "#3987e5"),  # 1 blue
    ("#eb6834", "#d95926"),  # 2 orange
    ("#1baf7a", "#199e70"),  # 3 aqua
    ("#eda100", "#c98500"),  # 4 yellow
    ("#e87ba4", "#d55181"),  # 5 magenta
    ("#008300", "#008300"),  # 6 green
    ("#4a3aa7", "#9085e9"),  # 7 violet
    ("#e34948", "#e66767"),  # 8 red
)

#: Single-hue sequential ramp (blue, steps 100..700): continuous
#: magnitude only.  Identical in both modes -- the lightest step means
#: "near zero" and is allowed to recede toward the light surface.
SEQUENTIAL = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Index into :data:`SEQUENTIAL` from which white ink beats dark ink.
SEQUENTIAL_DARK_TEXT_FROM = 6

#: Status hues (fixed, never themed, never reused as series colors).
STATUS = {"good": "#0ca30c", "critical": "#d03b3b"}

_LIGHT = {
    "surface": "#fcfcfb",
    "page": "#f9f9f7",
    "ink": "#0b0b0b",
    "ink-2": "#52514e",
    "muted": "#898781",
    "grid": "#e1e0d9",
    "baseline": "#c3c2b7",
    "border": "rgba(11,11,11,0.10)",
}
_DARK = {
    "surface": "#1a1a19",
    "page": "#0d0d0d",
    "ink": "#ffffff",
    "ink-2": "#c3c2b7",
    "muted": "#898781",
    "grid": "#2c2c2a",
    "baseline": "#383835",
    "border": "rgba(255,255,255,0.10)",
}


def _declarations(mode: int) -> str:
    chrome = _DARK if mode else _LIGHT
    lines = [f"  --{role}: {value};" for role, value in chrome.items()]
    lines += [
        f"  --series-{i}: {pair[mode]};"
        for i, pair in enumerate(CATEGORICAL, start=1)
    ]
    return "\n".join(lines)


def stylesheet() -> str:
    """The report's full ``<style>`` body (light + dark scopes).

    Dark mode is *selected*, not an automatic inversion: the dark
    declarations are the same hues re-stepped for the dark surface.
    They apply under the OS preference (``prefers-color-scheme``) and
    under an explicit ``data-theme`` attribute, which wins both ways.
    """
    dark = _declarations(1)
    return f"""\
:root {{
  color-scheme: light;
{_declarations(0)}
}}
@media (prefers-color-scheme: dark) {{
  :root:where(:not([data-theme="light"])) {{
    color-scheme: dark;
{dark}
  }}
}}
:root[data-theme="dark"] {{
  color-scheme: dark;
{dark}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 2rem 2.5rem; background: var(--page);
  color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
h1 {{ font-size: 1.5rem; margin: 0 0 .25rem; }}
h2 {{ font-size: 1.15rem; margin: 2.5rem 0 .5rem; }}
h3 {{ font-size: 1rem; margin: 1.5rem 0 .25rem; }}
p.sub {{ color: var(--ink-2); margin: 0 0 1rem; }}
.chart {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 1rem 1.25rem 1.25rem; margin: 1rem 0;
  max-width: 760px;
}}
.chart h3 {{ margin: 0 0 .125rem; }}
.chart .note {{ color: var(--ink-2); font-size: .85rem; margin: 0 0 .75rem; }}
.legend {{
  display: flex; flex-wrap: wrap; gap: .4rem 1.1rem;
  margin: .25rem 0 .6rem; font-size: .85rem; color: var(--ink-2);
}}
.legend .swatch {{
  display: inline-block; width: 10px; height: 10px; border-radius: 3px;
  margin-right: .4rem; vertical-align: baseline;
}}
svg text {{ font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }}
svg .tick {{ fill: var(--muted); font-variant-numeric: tabular-nums; }}
svg .label {{ fill: var(--ink-2); }}
table {{ border-collapse: collapse; font-size: .9rem; margin: .5rem 0 1rem; }}
th, td {{
  text-align: left; padding: .3rem .9rem .3rem 0;
  border-bottom: 1px solid var(--grid);
}}
th {{ color: var(--ink-2); font-weight: 600; }}
td.num {{ font-variant-numeric: tabular-nums; }}
td.win {{ font-weight: 600; }}
.pass {{ color: {STATUS['good']}; font-weight: 600; }}
.fail {{ color: {STATUS['critical']}; font-weight: 600; }}
"""
