"""Self-contained HTML report: ``python -m repro.report``.

Usage::

    python -m repro.report --out report.html              # figures + bench
    python -m repro.report --out - --sections figures     # HTML to stdout
    python -m repro.report --out report.html --fast \\
        --sweep records.json --suites suite_records.json  # everything

Renders the reproduction's results as one dependency-free HTML file:
inline SVG charts (no JavaScript, no external assets) with light/dark
theming, each chart paired with its exact-numbers table view.

Sections:

==========  ===========================================================
figures     paper figures 6-9 from live model runs (honours --scale)
pipelines   per-stage bottleneck breakdowns for the canonical queries
sweep       heatmap of a sweep ResultSet (needs --sweep RECORDS.json)
suites      ranked cross-suite tier tables (--suites RECORDS.json, or
            evaluates the full suite grid live when omitted)
bench       BENCH_PR*.json perf trajectory with the regression gate
==========  ===========================================================

By default the report contains ``figures``, ``pipelines`` and ``bench``
plus any section whose input file was supplied; ``--sections`` picks an
explicit subset.  Record files are the JSON exports of
``python -m repro.api --json`` and ``python -m repro.suites run --json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from html import escape
from pathlib import Path

from repro.experiments.common import MODEL_SCALE
from repro.experiments.run_all import FAST_SCALE
from repro.report import sections as S
from repro.report.palette import stylesheet
from repro.version import __version__

#: Renderable sections, in report order.
SECTIONS = ("figures", "pipelines", "sweep", "suites", "bench")


def build_parser() -> argparse.ArgumentParser:
    """The report CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--out", metavar="PATH", default="report.html",
        help="write the HTML report to PATH ('-' for stdout; "
             "default report.html)",
    )
    parser.add_argument(
        "--sections", metavar="LIST",
        help=f"comma-separated subset of {','.join(SECTIONS)} (default: "
             "figures,pipelines,bench plus any section whose input file "
             "was supplied)",
    )
    parser.add_argument(
        "--scale", type=float, default=MODEL_SCALE, metavar="X",
        help=f"cost-model scale for the live sections (default "
             f"{MODEL_SCALE:.0f}x)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help=f"shorthand for --scale {FAST_SCALE:.0f} (matches "
             "run_all --fast, so a report after a fast run replays "
             "from cache)",
    )
    parser.add_argument(
        "--seed", type=int, default=17, metavar="N",
        help="workload-generation seed for the live sections (default 17)",
    )
    parser.add_argument(
        "--sweep", metavar="RECORDS.json",
        help="sweep ResultSet records (python -m repro.api --json PATH) "
             "to render as the 'sweep' heatmap section",
    )
    parser.add_argument(
        "--suites", metavar="RECORDS.json",
        help="suite-grid records (python -m repro.suites run --json PATH) "
             "to score for the 'suites' section instead of evaluating "
             "the full grid live",
    )
    parser.add_argument(
        "--bench-dir", metavar="DIR", default=".",
        help="directory holding the BENCH_PR*.json trajectory points "
             "(default: current directory)",
    )
    return parser


def _chosen_sections(args) -> list:
    if args.sections:
        chosen = [name.strip() for name in args.sections.split(",") if name.strip()]
        unknown = [name for name in chosen if name not in SECTIONS]
        if unknown:
            raise SystemExit(
                f"unknown sections {unknown}; choose from {', '.join(SECTIONS)}"
            )
        return [name for name in SECTIONS if name in chosen]
    chosen = ["figures", "pipelines", "bench"]
    if args.sweep:
        chosen.append("sweep")
    if args.suites:
        chosen.append("suites")
    return [name for name in SECTIONS if name in chosen]


def _load_records(path: str, flag: str) -> list:
    try:
        records = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"{flag} {path}: {exc}")
    if not isinstance(records, list) or not all(
        isinstance(r, dict) for r in records
    ):
        raise SystemExit(f"{flag} {path}: expected a JSON list of records")
    if not records:
        raise SystemExit(f"{flag} {path}: no records to render")
    return records


def _render_section(name: str, args) -> str:
    if name == "figures":
        return S.render_figures(args.scale, seed=args.seed)
    if name == "pipelines":
        return S.render_pipelines(args.scale, seed=args.seed)
    if name == "sweep":
        if not args.sweep:
            raise SystemExit("the 'sweep' section needs --sweep RECORDS.json")
        return S.render_sweep(_load_records(args.sweep, "--sweep"))
    if name == "suites":
        if args.suites:
            records = _load_records(args.suites, "--suites")
        else:
            from repro.suites import SuiteRun

            records = SuiteRun().run().to_records()
        return S.render_suites(records)
    return S.render_bench(Path(args.bench_dir))


def render_report(args) -> str:
    """The complete HTML document for the chosen sections."""
    body = "".join(_render_section(name, args) for name in _chosen_sections(args))
    title = "Mondrian Data Engine reproduction"
    subtitle = (
        f"repro {escape(__version__)} &middot; model scale "
        f"{args.scale:g}x &middot; seed {args.seed}"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{escape(title)} &mdash; report</title>
<style>
{stylesheet()}</style>
</head>
<body>
<h1>{escape(title)}</h1>
<p class="sub">{subtitle}</p>
{body}</body>
</html>
"""


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.fast:
        args.scale = FAST_SCALE
    html = render_report(args)
    if args.out == "-":
        sys.stdout.write(html)
    else:
        Path(args.out).write_text(html)
        print(f"wrote report to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
