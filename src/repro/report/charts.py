"""Inline-SVG chart builders (stdlib only, deterministic output).

Each function returns an ``<svg>`` string sized by its content; the
colors are CSS custom properties from :mod:`repro.report.palette`, so
one SVG renders correctly on both the light and dark surface.  Marks
follow the house rules: thin bars with rounded data-ends anchored to the
baseline, 2px surface gaps between adjacent fills, hairline gridlines,
one value axis per chart, and selective direct labels (a chart labels
its peak, not every mark).

Nothing here does I/O or touches the simulation -- the section builders
in :mod:`repro.report.sections` marshal real data into these shapes.
"""

from __future__ import annotations

import math
from html import escape
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.report.palette import SEQUENTIAL, SEQUENTIAL_DARK_TEXT_FROM

#: Gap between adjacent fills (bars, stacked segments), in px.
GAP = 2

#: Radius of a bar's rounded data-end, in px.
END_RADIUS = 4


def _fmt(value: float) -> str:
    """Compact numeric label: 0.5, 2.4, 12, 1200."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}".rstrip("0").rstrip(".")
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _nice_ticks(vmax: float, count: int = 4) -> List[float]:
    """~``count`` round tick values covering [0, vmax]."""
    if vmax <= 0:
        return [0.0, 1.0]
    raw = vmax / count
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw:
            break
    top = step * math.ceil(vmax / step)
    n = int(round(top / step))
    return [step * i for i in range(n + 1)]


def _bar_path(x: float, y: float, w: float, h: float, up: bool = True) -> str:
    """A bar with a rounded data-end and a square baseline end."""
    r = min(END_RADIUS, w / 2, h)
    if h <= 0 or w <= 0:
        return ""
    if up:  # vertical bar: rounded top, flat bottom at y+h
        return (
            f"M{x:.1f},{y + h:.1f} V{y + r:.1f} Q{x:.1f},{y:.1f} "
            f"{x + r:.1f},{y:.1f} H{x + w - r:.1f} Q{x + w:.1f},{y:.1f} "
            f"{x + w:.1f},{y + r:.1f} V{y + h:.1f} Z"
        )
    # horizontal bar: rounded right end, flat left at x
    return (
        f"M{x:.1f},{y:.1f} H{x + w - r:.1f} Q{x + w:.1f},{y:.1f} "
        f"{x + w:.1f},{y + r:.1f} V{y + h - r:.1f} Q{x + w:.1f},{y + h:.1f} "
        f"{x + w - r:.1f},{y + h:.1f} H{x:.1f} Z"
    )


def grouped_bars(
    groups: Sequence[str],
    series: Sequence[str],
    value: Callable[[str, str], float],
    unit: str = "",
) -> str:
    """Vertical grouped bars: one group per x position, one bar per series.

    The single y axis carries round ticks and hairline gridlines; only
    the chart's peak value gets a direct label.
    """
    left, bottom, top = 44, 22, 12
    bar_w, plot_h = 22, 180
    group_w = len(series) * bar_w + (len(series) - 1) * GAP
    group_pitch = group_w + 28
    width = left + len(groups) * group_pitch + 8
    height = top + plot_h + bottom
    vmax = max(value(g, s) for g in groups for s in series)
    ticks = _nice_ticks(vmax)
    scale = plot_h / ticks[-1]
    peak = max(
        ((value(g, s), g, s) for g in groups for s in series),
        key=lambda t: t[0],
    )
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for tick in ticks:
        y = top + plot_h - tick * scale
        stroke = "var(--baseline)" if tick == 0 else "var(--grid)"
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - 4}" y2="{y:.1f}" '
            f'stroke="{stroke}" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{left - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_fmt(tick)}{escape(unit)}</text>'
        )
    for gi, group in enumerate(groups):
        gx = left + gi * group_pitch + (group_pitch - group_w) / 2
        for si, name in enumerate(series):
            v = value(group, name)
            h = v * scale
            x = gx + si * (bar_w + GAP)
            y = top + plot_h - h
            parts.append(
                f'<path d="{_bar_path(x, y, bar_w, h)}" '
                f'fill="var(--series-{si + 1})"/>'
            )
            if (v, group, name) == peak:
                parts.append(
                    f'<text class="label" x="{x + bar_w / 2:.1f}" '
                    f'y="{y - 4:.1f}" text-anchor="middle">'
                    f"{_fmt(v)}{escape(unit)}</text>"
                )
        parts.append(
            f'<text class="tick" x="{gx + group_w / 2:.1f}" '
            f'y="{top + plot_h + 15}" text-anchor="middle">'
            f"{escape(group)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def stacked_hbars(
    rows: Sequence[Tuple[str, Sequence[float], str]],
    annotate: Optional[Dict[str, str]] = None,
) -> str:
    """Horizontal 100%-stacked bars: ``(label, fractions, right_label)``.

    Fractions are drawn left to right in series-slot order with a 2px
    surface gap between segments; ``right_label`` (totals, bottleneck
    notes) renders in secondary ink past the bar's end.
    """
    left, bar_h, pitch, plot_w = 92, 18, 30, 420
    width, height = left + plot_w + 170, 8 + pitch * len(rows)
    annotate = annotate or {}
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for ri, (label, fractions, right) in enumerate(rows):
        y = 8 + ri * pitch
        parts.append(
            f'<text class="label" x="{left - 8}" y="{y + bar_h - 5}" '
            f'text-anchor="end">{escape(label)}</text>'
        )
        gaps = GAP * max(0, sum(1 for f in fractions if f > 0) - 1)
        usable = plot_w - gaps
        x = float(left)
        for si, fraction in enumerate(fractions):
            if fraction <= 0:
                continue
            w = fraction * usable
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{bar_h}" rx="2" fill="var(--series-{si + 1})"/>'
            )
            x += w + GAP
        note = right if label not in annotate else f"{right} {annotate[label]}"
        parts.append(
            f'<text class="label" x="{left + plot_w + 8}" '
            f'y="{y + bar_h - 5}">{escape(note)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Dict[Tuple[str, str], float],
    fmt: Callable[[float], str] = _fmt,
) -> str:
    """A magnitude grid on the single-hue sequential ramp.

    Values are normalized across the whole grid (light = low, dark =
    high); every cell carries its value in whichever ink clears the
    cell's fill, so the encoding never relies on color alone.
    """
    left, top, cell_w, cell_h = 110, 20, 86, 30
    width = left + len(col_labels) * (cell_w + GAP) + 8
    height = top + len(row_labels) * (cell_h + GAP) + 8
    vmin = min(values.values())
    vmax = max(values.values())
    span = (vmax - vmin) or 1.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for ci, col in enumerate(col_labels):
        parts.append(
            f'<text class="tick" x="{left + ci * (cell_w + GAP) + cell_w / 2:.1f}" '
            f'y="{top - 7}" text-anchor="middle">{escape(col)}</text>'
        )
    for ri, row in enumerate(row_labels):
        y = top + ri * (cell_h + GAP)
        parts.append(
            f'<text class="label" x="{left - 8}" y="{y + cell_h / 2 + 4:.1f}" '
            f'text-anchor="end">{escape(row)}</text>'
        )
        for ci, col in enumerate(col_labels):
            v = values[(row, col)]
            step = round((v - vmin) / span * (len(SEQUENTIAL) - 1))
            fill = SEQUENTIAL[step]
            ink = "#ffffff" if step >= SEQUENTIAL_DARK_TEXT_FROM else "#0b0b0b"
            x = left + ci * (cell_w + GAP)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_w}" height="{cell_h}" '
                f'rx="3" fill="{fill}"/>'
            )
            parts.append(
                f'<text x="{x + cell_w / 2:.1f}" y="{y + cell_h / 2 + 4:.1f}" '
                f'text-anchor="middle" fill="{ink}">{escape(fmt(v))}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def bars_with_threshold(
    labels: Sequence[str],
    values: Sequence[float],
    threshold: float,
    threshold_label: str,
    unit: str = "",
) -> str:
    """Vertical bars against a dashed threshold line (the perf gate).

    Few enough marks that each bar carries its value; a bar that falls
    below the threshold would sit under the dashed gate line.
    """
    left, bottom, top = 50, 34, 16
    bar_w, pitch, plot_h = 34, 96, 150
    width = left + len(labels) * pitch + 8
    height = top + plot_h + bottom
    vmax = max(list(values) + [threshold]) * 1.15
    ticks = _nice_ticks(vmax, 3)
    scale = plot_h / ticks[-1]
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for tick in ticks:
        y = top + plot_h - tick * scale
        stroke = "var(--baseline)" if tick == 0 else "var(--grid)"
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - 4}" y2="{y:.1f}" '
            f'stroke="{stroke}" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{left - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_fmt(tick)}{escape(unit)}</text>'
        )
    for i, (label, v) in enumerate(zip(labels, values)):
        x = left + i * pitch + (pitch - bar_w) / 2
        h = v * scale
        y = top + plot_h - h
        parts.append(
            f'<path d="{_bar_path(x, y, bar_w, h)}" fill="var(--series-1)"/>'
        )
        parts.append(
            f'<text class="label" x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
            f'text-anchor="middle">{_fmt(v)}{escape(unit)}</text>'
        )
        parts.append(
            f'<text class="tick" x="{x + bar_w / 2:.1f}" '
            f'y="{top + plot_h + 15}" text-anchor="middle">'
            f"{escape(label)}</text>"
        )
    ty = top + plot_h - threshold * scale
    parts.append(
        f'<line x1="{left}" y1="{ty:.1f}" x2="{width - 4}" y2="{ty:.1f}" '
        f'stroke="var(--series-8)" stroke-width="1.5" stroke-dasharray="5 4"/>'
    )
    parts.append(
        f'<text class="label" x="{width - 4}" y="{ty - 5:.1f}" '
        f'text-anchor="end">{escape(threshold_label)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def chart_block(
    title: str,
    note: str,
    legend: Sequence[Tuple[str, str]],
    body: str,
) -> str:
    """One chart card: heading, explanatory note, legend, then the SVG.

    ``legend`` pairs series names with CSS color expressions; a single
    series needs no legend box (the title names it) -- pass an empty
    sequence.
    """
    legend_html = ""
    if len(legend) >= 2:
        items = "".join(
            f'<span><span class="swatch" style="background:{color}"></span>'
            f"{escape(name)}</span>"
            for name, color in legend
        )
        legend_html = f'<div class="legend">{items}</div>'
    return (
        f'<div class="chart"><h3>{escape(title)}</h3>'
        f'<p class="note">{escape(note)}</p>{legend_html}{body}</div>'
    )


def html_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    numeric_from: int = 1,
    winners: Optional[set] = None,
) -> str:
    """A plain data table (the charts' always-available table view)."""
    winners = winners or set()
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = []
    for ri, row in enumerate(rows):
        cells = []
        for ci, cell in enumerate(row):
            classes = []
            if ci >= numeric_from:
                classes.append("num")
            if (ri, ci) in winners:
                classes.append("win")
            attr = f' class="{" ".join(classes)}"' if classes else ""
            cells.append(f"<td{attr}>{escape(str(cell))}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )
