"""2D mesh network-on-chip connecting the vaults of one stack.

Table 3: 2D mesh, 16 B links, 3 cycles/hop.  Sixteen vaults form a 4x4
mesh; messages are routed dimension-ordered (X then Y).  The model
provides hop counts, per-message latency, serialization delay and the
bit-distance product the energy model charges (0.04 pJ/bit/mm).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.config.energy import EnergyConfig
from repro.config.interconnect import InterconnectConfig


@dataclass(frozen=True)
class MeshCoord:
    x: int
    y: int


@functools.lru_cache(maxsize=None)
def _mean_hops(side: int) -> float:
    """Mean Manhattan distance over all ordered tile pairs of a
    ``side x side`` mesh, memoized per geometry.

    The sum over ordered pairs decomposes per axis: each axis
    contributes ``side**2`` (the free axis combinations) times
    ``sum(|i - j|) = side * (side**2 - 1) / 3`` (an exact integer).
    The integer total divided by the pair count is bit-identical to
    brute-force summation, and the cache means the 50+ evaluations per
    figure run cost one dict hit each instead of an O(tiles**2) loop.
    """
    total = 2 * side * side * (side * (side * side - 1) // 3)
    num_pairs = side ** 4
    return total / num_pairs


class MeshNoc:
    """Dimension-ordered-routing 2D mesh over one stack's vaults."""

    def __init__(
        self,
        num_tiles: int,
        config: InterconnectConfig,
        energy: EnergyConfig = None,
    ) -> None:
        if num_tiles < 1:
            raise ValueError("mesh needs at least one tile")
        side = int(math.isqrt(num_tiles))
        if side * side != num_tiles:
            raise ValueError(f"{num_tiles} tiles do not form a square mesh")
        self._side = side
        self._config = config
        self._energy = energy if energy is not None else EnergyConfig()

    @property
    def side(self) -> int:
        return self._side

    @property
    def num_tiles(self) -> int:
        return self._side * self._side

    def coord(self, tile: int) -> MeshCoord:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return MeshCoord(x=tile % self._side, y=tile // self._side)

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance under dimension-ordered routing."""
        if not 0 <= src < self.num_tiles:
            raise ValueError(f"tile {src} out of range")
        if not 0 <= dst < self.num_tiles:
            raise ValueError(f"tile {dst} out of range")
        side = self._side
        return abs(src % side - dst % side) + abs(src // side - dst // side)

    def mean_hops(self) -> float:
        """Average hop count over all ordered tile pairs (uniform traffic).

        Memoized per mesh side (see :func:`_mean_hops`): the performance
        model asks for this once per evaluated phase, which used to
        recompute the same all-pairs sum dozens of times per figure run.
        """
        return _mean_hops(self._side)

    def latency_ns(self, src: int, dst: int, message_b: int) -> float:
        """Head latency plus serialization for one message."""
        hop_ns = self._config.noc_hop_latency_ns()
        return self.hops(src, dst) * hop_ns + self._config.noc_serialization_ns(message_b)

    def transfer_energy_j(self, src: int, dst: int, message_b: int) -> float:
        """Bit x millimetre energy of moving a message (Table 4's NOC row)."""
        distance_mm = self.hops(src, dst) * self._config.noc_hop_distance_mm
        return message_b * 8 * distance_mm * self._energy.noc_j_per_bit_mm

    def mean_transfer_energy_j(self, message_b: int) -> float:
        """Energy of an average-distance message (uniform traffic)."""
        distance_mm = self.mean_hops() * self._config.noc_hop_distance_mm
        return message_b * 8 * distance_mm * self._energy.noc_j_per_bit_mm
