"""Interconnect models: on-chip 2D mesh, inter-stack SerDes links, and the
two system topologies (star for the CPU-centric machine, fully connected
for the NMP machines).
"""

from repro.interconnect.mesh import MeshNoc
from repro.interconnect.serdes import SerdesLink
from repro.interconnect.topology import (
    FullyConnectedTopology,
    Route,
    StarTopology,
    Topology,
    build_topology,
)

__all__ = [
    "FullyConnectedTopology",
    "MeshNoc",
    "Route",
    "SerdesLink",
    "StarTopology",
    "Topology",
    "build_topology",
]
