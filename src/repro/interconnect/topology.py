"""System topologies: star (CPU-centric) and fully connected (NMP).

The CPU-centric machine (paper figure 5) attaches four passive HMC
stacks to the CPU chip in a star: every memory access crosses exactly one
SerDes link (vault -> CPU), and shuffle traffic between two stacks must
cross twice (up to the CPU, back down).

The NMP machines (figure 3a) fully connect the four stacks: vault-local
traffic never leaves the stack, and remote traffic crosses exactly one
inter-stack link.  Inside a stack both use the 4x4 mesh.

The topology object answers two questions for the performance model:

- :meth:`route`: per-message cost (SerDes crossings, mesh hops);
- :meth:`shuffle_egress_bw_bps`: the aggregate rate at which one stack
  can push uniform all-to-all shuffle traffic out, which is what caps the
  Mondrian partitioning phase (section 7.1: "shifts the performance
  bottleneck to the SerDes links' bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram import HmcGeometry
from repro.config.energy import EnergyConfig
from repro.config.interconnect import InterconnectConfig
from repro.config.system import TOPOLOGY_FULL, TOPOLOGY_STAR
from repro.interconnect.mesh import MeshNoc
from repro.interconnect.serdes import SerdesLink


@dataclass(frozen=True)
class Route:
    """Cost summary of one message's path."""

    serdes_crossings: int
    mesh_hops: int
    is_vault_local: bool


class Topology:
    """Shared plumbing for both topologies."""

    def __init__(
        self,
        geometry: HmcGeometry,
        interconnect: InterconnectConfig,
        energy: EnergyConfig,
    ) -> None:
        self._geo = geometry
        self._cfg = interconnect
        self._energy = energy
        self._mesh = MeshNoc(geometry.vaults_per_stack, interconnect)
        self._link = SerdesLink(interconnect, energy)

    @property
    def geometry(self) -> HmcGeometry:
        return self._geo

    @property
    def mesh(self) -> MeshNoc:
        return self._mesh

    @property
    def link(self) -> SerdesLink:
        return self._link

    @property
    def num_serdes_links(self) -> int:
        raise NotImplementedError

    def route(self, src_vault: int, dst_vault: int) -> Route:
        raise NotImplementedError

    def shuffle_egress_bw_bps(self) -> float:
        raise NotImplementedError

    def _stack_of(self, vault: int) -> int:
        if not 0 <= vault < self._geo.total_vaults:
            raise ValueError(f"vault {vault} out of range")
        return vault // self._geo.vaults_per_stack

    def _local_tile(self, vault: int) -> int:
        return vault % self._geo.vaults_per_stack

    def message_latency_ns(self, route: Route, message_b: int) -> float:
        """End-to-end latency of one message along a route."""
        latency = route.mesh_hops * self._cfg.noc_hop_latency_ns()
        latency += self._cfg.noc_serialization_ns(message_b)
        latency += route.serdes_crossings * self._link.transfer_ns(message_b)
        return latency

    def message_energy_j(self, route: Route, message_b: int) -> float:
        """Marginal (busy) network energy of one message."""
        bits = message_b * 8
        noc_j = (
            bits
            * route.mesh_hops
            * self._cfg.noc_hop_distance_mm
            * self._energy.noc_j_per_bit_mm
        )
        serdes_j = route.serdes_crossings * self._link.busy_energy_j(message_b)
        return noc_j + serdes_j


class StarTopology(Topology):
    """Four passive stacks hanging off the CPU (figure 5).

    All compute lives at the hub, so every memory access crosses the
    vault's stack-to-CPU link once; stack-to-stack traffic crosses two.
    """

    @property
    def num_serdes_links(self) -> int:
        return self._geo.num_stacks

    def route(self, src_vault: int, dst_vault: int) -> Route:
        # src/dst are the endpoints of a *data movement*; for the star all
        # movement is mediated by the CPU hub.
        src_stack = self._stack_of(src_vault)
        dst_stack = self._stack_of(dst_vault)
        crossings = 2 if src_stack != dst_stack else 2  # up and back down
        if src_vault == dst_vault:
            crossings = 2  # even same-vault movement round-trips via the CPU
        mesh_hops = self._mesh.hops(self._local_tile(src_vault), 0) + self._mesh.hops(
            0, self._local_tile(dst_vault)
        )
        return Route(serdes_crossings=crossings, mesh_hops=mesh_hops, is_vault_local=False)

    def cpu_access_route(self, vault: int) -> Route:
        """Route of one CPU load/store to a vault (single crossing)."""
        mesh_hops = self._mesh.hops(self._local_tile(vault), 0)
        return Route(serdes_crossings=1, mesh_hops=mesh_hops, is_vault_local=False)

    def shuffle_egress_bw_bps(self) -> float:
        """Shuffle data funnels through the CPU: the four links' ingress
        is the bottleneck, and every byte crosses twice."""
        total_link_bw = self.num_serdes_links * self._link.bw_bps_per_dir
        return total_link_bw / 2


class FullyConnectedTopology(Topology):
    """Active stacks, all-to-all SerDes (figure 3a)."""

    @property
    def num_serdes_links(self) -> int:
        n = self._geo.num_stacks
        return n * (n - 1) // 2

    def route(self, src_vault: int, dst_vault: int) -> Route:
        if src_vault == dst_vault:
            return Route(serdes_crossings=0, mesh_hops=0, is_vault_local=True)
        src_stack = self._stack_of(src_vault)
        dst_stack = self._stack_of(dst_vault)
        mesh_hops = 0
        crossings = 0
        if src_stack == dst_stack:
            mesh_hops = self._mesh.hops(
                self._local_tile(src_vault), self._local_tile(dst_vault)
            )
        else:
            crossings = 1
            # To the edge of the source mesh, across, then to the target tile.
            mesh_hops = self._mesh.hops(self._local_tile(src_vault), 0) + self._mesh.hops(
                0, self._local_tile(dst_vault)
            )
        return Route(
            serdes_crossings=crossings, mesh_hops=mesh_hops, is_vault_local=False
        )

    def shuffle_egress_bw_bps(self) -> float:
        """Uniform all-to-all: a stack sends (S-1)/S of its data over its
        S-1 egress links; the links, not the mesh, are the cap."""
        links_per_stack = self._geo.num_stacks - 1
        if links_per_stack == 0:
            return float("inf")
        egress_bw = links_per_stack * self._link.bw_bps_per_dir
        remote_fraction = links_per_stack / self._geo.num_stacks
        return egress_bw / remote_fraction


def build_topology(
    kind: str,
    geometry: HmcGeometry,
    interconnect: InterconnectConfig,
    energy: EnergyConfig,
) -> Topology:
    """Construct the topology named by a system preset."""
    if kind == TOPOLOGY_STAR:
        return StarTopology(geometry, interconnect, energy)
    if kind == TOPOLOGY_FULL:
        return FullyConnectedTopology(geometry, interconnect, energy)
    raise ValueError(f"unknown topology kind: {kind!r}")
