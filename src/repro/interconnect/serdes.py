"""Inter-stack SerDes link model.

Table 3: SerDes links at 10 GHz, 160 Gb/s per direction.  Table 4: 1
pJ/bit idle, 3 pJ/bit busy.  SerDes energy is dominated by the *idle*
term whenever utilization is low -- the links burn 1 pJ for every bit
slot whether or not data flows, which is why the paper's figure 8 shows a
large SerDes+NOC share for the underutilizing baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.energy import EnergyConfig
from repro.config.interconnect import InterconnectConfig


@dataclass(frozen=True)
class SerdesLink:
    """One bidirectional SerDes link between two devices."""

    config: InterconnectConfig
    energy: EnergyConfig

    @property
    def bw_bps_per_dir(self) -> float:
        return self.config.serdes_bw_bps_per_dir

    def transfer_ns(self, size_b: int) -> float:
        """Serialization time of a message on one direction."""
        if size_b < 0:
            raise ValueError("size must be non-negative")
        return size_b / self.bw_bps_per_dir * 1e9

    def busy_energy_j(self, bytes_transferred: int) -> float:
        """Marginal energy of the bits actually moved."""
        if bytes_transferred < 0:
            raise ValueError("bytes must be non-negative")
        return bytes_transferred * 8 * self.energy.serdes_busy_j_per_bit

    def idle_energy_j(self, duration_s: float, directions: int = 2) -> float:
        """Idle-slot energy over a wall-clock interval.

        Every bit slot of every direction costs the idle energy; busy
        slots additionally pay the busy-minus-idle difference, which
        :meth:`busy_energy_j` approximates by the full busy cost for
        simplicity (< 2% error at the utilizations seen here).
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        bit_slots = self.bw_bps_per_dir * 8 * duration_s * directions
        return bit_slots * self.energy.serdes_idle_j_per_bit
