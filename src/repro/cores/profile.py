"""The operator <-> core-model interface.

A :class:`WorkProfile` describes the dynamic work of one phase *per
compute unit* in machine-independent terms; a :class:`MemEnvironment`
describes what the memory system offers that unit.  Together they are all
a core model needs.

Field conventions:

- ``instructions`` counts the scalar dynamic instructions of the phase
  (loads/stores included), the quantity the paper multiplies by IPC.
- ``simd_ops`` counts element operations that a SIMD unit could absorb
  (compare/merge/aggregate steps on tuples).  Scalar machines execute
  them inside ``instructions``; the Mondrian model replaces their scalar
  cost with wide operations.
- ``dep_ilp`` is the instruction-level parallelism the phase's dependency
  structure exposes (1.0 = a serial chain; histogram maintenance in the
  partitioning phase is the canonical low-ILP offender, section 7.1).
- ``mem_parallelism`` is the number of *independent* concurrent memory
  accesses the algorithm exposes (hash probes to independent keys are
  plentiful; a single merge cursor is 1 per stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WorkProfile:
    """Dynamic work of one phase on one compute unit."""

    name: str
    instructions: float
    simd_ops: float = 0.0
    dep_ilp: float = 2.0
    mem_parallelism: float = 8.0
    rand_reads: float = 0.0
    rand_writes: float = 0.0
    rand_access_b: int = 64
    seq_read_b: float = 0.0
    seq_write_b: float = 0.0
    remote_fraction: float = 0.0
    simd_vectorizable: bool = False

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.simd_ops < 0:
            raise ValueError("work counts must be non-negative")
        if self.dep_ilp <= 0:
            raise ValueError("dep_ilp must be positive")
        if self.mem_parallelism <= 0:
            raise ValueError("mem_parallelism must be positive")
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ValueError("remote_fraction must be in [0, 1]")
        for name in ("rand_reads", "rand_writes", "seq_read_b", "seq_write_b"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def rand_accesses(self) -> float:
        return self.rand_reads + self.rand_writes

    @property
    def total_bytes(self) -> float:
        return (
            self.rand_accesses * self.rand_access_b + self.seq_read_b + self.seq_write_b
        )

    def scaled(self, factor: float) -> "WorkProfile":
        """Scale all work linearly (dataset-size extrapolation)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            instructions=self.instructions * factor,
            simd_ops=self.simd_ops * factor,
            rand_reads=self.rand_reads * factor,
            rand_writes=self.rand_writes * factor,
            seq_read_b=self.seq_read_b * factor,
            seq_write_b=self.seq_write_b * factor,
        )


@dataclass(frozen=True)
class MemEnvironment:
    """What the memory system offers one compute unit.

    Latencies are average load-to-use times for cache-block/object-sized
    random accesses; bandwidths are the per-unit sustainable rates the
    DRAM analytic model and the topology derive (device-side limits --
    the core model applies its own MLP limit on top).
    """

    rand_latency_ns: float
    seq_bw_bps: float
    rand_bw_bps: float
    remote_extra_latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.rand_latency_ns <= 0:
            raise ValueError("latency must be positive")
        if self.seq_bw_bps <= 0 or self.rand_bw_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.remote_extra_latency_ns < 0:
            raise ValueError("extra latency must be non-negative")

    def effective_rand_latency_ns(self, remote_fraction: float) -> float:
        return self.rand_latency_ns + remote_fraction * self.remote_extra_latency_ns
