"""Analytic compute-unit performance models.

The paper's methodology (section 6) measures IPC with sampled
cycle-accurate simulation and multiplies by functionally-measured
instruction counts.  We mirror the structure: operators produce
:class:`~repro.cores.profile.WorkProfile` descriptions of their dynamic
work (instruction counts, data-dependency ILP, memory accesses by
pattern), and the core models turn a profile plus a
:class:`~repro.cores.profile.MemEnvironment` into cycles, an effective
IPC and a bandwidth demand.

Two model families cover the three machines:

- :class:`~repro.cores.ooo.OutOfOrderCoreModel` -- Cortex-A57 (CPU) and
  Krait400 (NMP baseline): ROB-limited memory-level parallelism,
  overlap of compute and memory.
- :class:`~repro.cores.inorder_simd.InOrderSimdCoreModel` -- the Mondrian
  unit: dual-issue in-order with a wide fixed-point SIMD unit fed by
  stream buffers.
"""

from repro.cores.base import CoreEstimate, CoreModel
from repro.cores.inorder_simd import InOrderSimdCoreModel
from repro.cores.mlp import mlp_limited_bandwidth_bps, outstanding_accesses
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.profile import MemEnvironment, WorkProfile

__all__ = [
    "CoreEstimate",
    "CoreModel",
    "InOrderSimdCoreModel",
    "MemEnvironment",
    "OutOfOrderCoreModel",
    "WorkProfile",
    "mlp_limited_bandwidth_bps",
    "outstanding_accesses",
]


def build_core_model(core_config) -> CoreModel:
    """Pick the model family matching a :class:`repro.config.CoreConfig`."""
    if core_config.out_of_order:
        return OutOfOrderCoreModel(core_config)
    return InOrderSimdCoreModel(core_config)
