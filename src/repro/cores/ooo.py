"""Out-of-order core model (Cortex-A57 CPU baseline, Krait400 NMP baseline).

Component times for a phase:

- **Compute**: ``instructions / min(issue_width, dep_ilp)`` cycles.  The
  profile's ``dep_ilp`` captures dependency-chained code (histogram
  maintenance) that cannot fill a 3-wide pipeline.
- **Random-access latency**: by Little's law, ``n * latency / MLP`` where
  MLP is the least of the ROB window, the MSHRs, and the algorithm's
  independent accesses.
- **Sequential streaming**: the next-line prefetcher sustains at most
  ``(depth + 1) * block / latency`` per stream; the device's sustainable
  bandwidth caps it from the other side.

An OoO window overlaps compute with memory well; we combine with a high
overlap factor.
"""

from __future__ import annotations

from repro.cores.base import CoreEstimate, CoreModel
from repro.cores.mlp import mlp_limited_bandwidth_bps
from repro.cores.profile import MemEnvironment, WorkProfile

#: Paper section 3.2 assumes one memory access every 6 instructions.
INSTRUCTIONS_PER_MEM = 6.0

#: Fraction of compute/memory time an OoO window hides under the other.
OOO_OVERLAP = 0.85

#: Reference ROB size for the profiles' ``mem_parallelism`` values: the
#: chain-limited MLP constants in :mod:`repro.operators.costs` are
#: calibrated against the paper's NMP baseline (Krait400, 48-entry ROB).
#: A larger window overlaps proportionally more independent chains
#: across loop iterations (e.g. the A57's 128 entries nearly triple it).
REFERENCE_ROB = 48.0


class OutOfOrderCoreModel(CoreModel):
    """ROB-windowed OoO core with next-line prefetching."""

    def estimate(self, profile: WorkProfile, env: MemEnvironment) -> CoreEstimate:
        cfg = self._config
        cycle_ns = cfg.cycle_time_ns

        # Compute component.  Scalar machines execute the element
        # operations (simd_ops) as part of `instructions`; no SIMD credit
        # beyond what the profile already folded in.
        issue_ipc = min(float(cfg.issue_width), profile.dep_ilp)
        compute_ns = profile.instructions / issue_ipc * cycle_ns

        # Random-access latency component.
        latency_ns_total = 0.0
        if profile.rand_accesses:
            latency = env.effective_rand_latency_ns(profile.remote_fraction)
            hw_mlp = cfg.max_outstanding_mem(INSTRUCTIONS_PER_MEM)
            algo_mlp = profile.mem_parallelism
            if algo_mlp > 1.0:
                # Window scaling: chain-limited parallelism grows with the
                # ROB relative to the 48-entry reference (see REFERENCE_ROB).
                algo_mlp *= max(1.0, cfg.rob_entries / REFERENCE_ROB)
            mlp = max(1.0, min(hw_mlp, algo_mlp))
            device_bw = env.rand_bw_bps
            core_bw = mlp_limited_bandwidth_bps(mlp, latency, profile.rand_access_b)
            effective_bw = min(device_bw, core_bw)
            bytes_rand = profile.rand_accesses * profile.rand_access_b
            latency_ns_total = bytes_rand / effective_bw * 1e9

        # Sequential streaming component.  The environment's seq_bw
        # already folds in the prefetcher's depth limit at unloaded
        # latency (see repro.perf.memenv), so no further cap here.
        bandwidth_ns = 0.0
        seq_bytes = profile.seq_read_b + profile.seq_write_b
        if seq_bytes:
            bandwidth_ns = seq_bytes / env.seq_bw_bps * 1e9

        return self._finish(
            profile, compute_ns, latency_ns_total, bandwidth_ns, OOO_OVERLAP
        )
