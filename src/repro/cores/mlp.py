"""Memory-level-parallelism arithmetic (paper section 3.2).

The paper's worked example: an ARM Cortex-A57 with a 128-entry ROB and
one 8-byte access every 6 instructions can keep ~20 accesses in flight;
at 30 ns memory latency that is at most ``20 * 64 B / 30 ns = 5.3 GB/s``
of the vault's 8 GB/s (using cache-block transfers), while the core burns
1.5 W -- several times the 312 mW vault budget.  These helpers reproduce
that arithmetic and are exercised directly by the section 3.2 experiment.
"""

from __future__ import annotations

from repro.config.cores import CoreConfig


def outstanding_accesses(
    rob_entries: int, instructions_per_mem: float, mshrs: int
) -> float:
    """In-flight memory accesses an OoO window can sustain."""
    if rob_entries <= 0 or instructions_per_mem <= 0 or mshrs <= 0:
        raise ValueError("all arguments must be positive")
    return min(rob_entries / instructions_per_mem, mshrs)


def mlp_limited_bandwidth_bps(
    mlp: float, latency_ns: float, access_b: int
) -> float:
    """Bandwidth achievable from ``mlp`` concurrent accesses (Little's law)."""
    if mlp <= 0 or latency_ns <= 0 or access_b <= 0:
        raise ValueError("all arguments must be positive")
    return mlp * access_b / (latency_ns * 1e-9)


def core_random_bandwidth_bps(
    core: CoreConfig,
    latency_ns: float,
    access_b: int,
    instructions_per_mem: float = 6.0,
    mem_parallelism: float = float("inf"),
) -> float:
    """Random-access bandwidth one core can generate.

    The effective MLP is the lesser of what the hardware window sustains
    and the independent accesses the algorithm exposes
    (``mem_parallelism``).
    """
    hw_mlp = core.max_outstanding_mem(instructions_per_mem)
    mlp = min(hw_mlp, mem_parallelism)
    return mlp_limited_bandwidth_bps(mlp, latency_ns, access_b)
