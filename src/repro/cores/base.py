"""Core-model interface and shared result type."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import CoreConfig
from repro.cores.profile import MemEnvironment, WorkProfile


@dataclass(frozen=True)
class CoreEstimate:
    """Performance estimate of one phase on one compute unit."""

    time_ns: float
    compute_time_ns: float
    memory_time_ns: float
    effective_ipc: float
    bw_demand_bps: float
    bound: str  # "compute" | "latency" | "bandwidth"

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError("time must be non-negative")
        if self.bound not in ("compute", "latency", "bandwidth", "idle"):
            raise ValueError(f"unknown bound: {self.bound!r}")


class CoreModel:
    """Base class: turn (WorkProfile, MemEnvironment) into a CoreEstimate."""

    def __init__(self, config: CoreConfig) -> None:
        self._config = config

    @property
    def config(self) -> CoreConfig:
        return self._config

    def estimate(self, profile: WorkProfile, env: MemEnvironment) -> CoreEstimate:
        raise NotImplementedError

    def _classify(
        self, compute_ns: float, latency_ns: float, bandwidth_ns: float
    ) -> str:
        worst = max(compute_ns, latency_ns, bandwidth_ns)
        if worst <= 0:
            return "idle"
        if worst == compute_ns:
            return "compute"
        if worst == latency_ns:
            return "latency"
        return "bandwidth"

    def _finish(
        self,
        profile: WorkProfile,
        compute_ns: float,
        latency_ns: float,
        bandwidth_ns: float,
        overlap: float,
    ) -> CoreEstimate:
        """Combine component times.

        ``overlap`` in [0, 1]: 1 means perfect overlap (total = max of the
        components, an idealized OoO core), 0 means fully serialized
        (total = sum).  Real machines sit in between.
        """
        if not 0.0 <= overlap <= 1.0:
            raise ValueError("overlap must be in [0, 1]")
        memory_ns = max(latency_ns, bandwidth_ns)
        total_max = max(compute_ns, memory_ns)
        total_sum = compute_ns + memory_ns
        time_ns = overlap * total_max + (1.0 - overlap) * total_sum
        cycles = time_ns / self._config.cycle_time_ns
        ipc = profile.instructions / cycles if cycles > 0 else 0.0
        bw_demand = profile.total_bytes / (time_ns * 1e-9) if time_ns > 0 else 0.0
        return CoreEstimate(
            time_ns=time_ns,
            compute_time_ns=compute_ns,
            memory_time_ns=memory_ns,
            effective_ipc=ipc,
            bw_demand_bps=bw_demand,
            bound=self._classify(compute_ns, latency_ns, bandwidth_ns),
        )
