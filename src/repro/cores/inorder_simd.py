"""The Mondrian compute unit: in-order dual-issue core + wide SIMD +
stream buffers (paper section 5.2).

Model highlights:

- Element operations marked SIMD-vectorizable execute ``lanes`` at a
  time (a 1024-bit unit processes eight 16 B tuples per instruction --
  the paper's sizing argument: one tuple every 4 cycles at 1 GHz matches
  8 GB/s, so 8 lanes give 8 tuples per 32 cycles of slack).
- Streams are fed by the binding-prefetch stream buffers, which decouple
  memory from the pipeline: a streaming phase runs at
  ``min(compute rate, vault bandwidth)`` with no latency stalls
  (validated by :meth:`repro.memctrl.stream_buffer.StreamBufferSet.steady_state_stall_free`).
- Random accesses are poison for this core: in-order, no ROB, MLP is
  essentially the stream-buffer count when accesses are independent and
  1 otherwise.  Mondrian's algorithms avoid them; the model charges the
  full penalty when a profile contains them (that is what the
  Mondrian-noperm / NMP-seq comparisons exercise).
"""

from __future__ import annotations

from repro.cores.base import CoreEstimate, CoreModel
from repro.cores.mlp import mlp_limited_bandwidth_bps
from repro.cores.profile import MemEnvironment, WorkProfile

#: In-order pipelines expose less compute/memory overlap than OoO ones,
#: but the stream buffers decouple streaming loads; dependency stalls on
#: random loads are what remains.
INORDER_STREAM_OVERLAP = 0.95
INORDER_RANDOM_OVERLAP = 0.30


class InOrderSimdCoreModel(CoreModel):
    """Dual-issue in-order core with a wide fixed-point SIMD unit."""

    def estimate(self, profile: WorkProfile, env: MemEnvironment) -> CoreEstimate:
        cfg = self._config
        cycle_ns = cfg.cycle_time_ns

        # Compute: vectorizable element ops collapse into wide
        # instructions; the scalar remainder issues at the dependency-
        # limited rate on the dual-issue pipeline.
        issue_ipc = min(float(cfg.issue_width), profile.dep_ilp)
        if profile.simd_vectorizable and profile.simd_ops and cfg.simd_width_bits:
            lanes = cfg.simd_lanes_64b
            simd_instructions = profile.simd_ops / lanes
            scalar_instructions = max(
                0.0, profile.instructions - profile.simd_ops
            )
            # The SIMD unit issues one wide op per cycle alongside the
            # scalar pipe (dual issue).
            compute_cycles = max(
                simd_instructions, scalar_instructions / issue_ipc
            )
        else:
            compute_cycles = profile.instructions / issue_ipc
        compute_ns = compute_cycles * cycle_ns

        # Random-access latency: in-order core, accesses stall the pipe.
        latency_ns_total = 0.0
        if profile.rand_accesses:
            latency = env.effective_rand_latency_ns(profile.remote_fraction)
            mlp = max(1.0, min(float(cfg.mshrs), profile.mem_parallelism))
            core_bw = mlp_limited_bandwidth_bps(mlp, latency, profile.rand_access_b)
            effective_bw = min(env.rand_bw_bps, core_bw)
            bytes_rand = profile.rand_accesses * profile.rand_access_b
            latency_ns_total = bytes_rand / effective_bw * 1e9

        # Streaming: stream buffers sustain the device's sequential rate.
        bandwidth_ns = 0.0
        seq_bytes = profile.seq_read_b + profile.seq_write_b
        if seq_bytes:
            bandwidth_ns = seq_bytes / env.seq_bw_bps * 1e9

        overlap = (
            INORDER_STREAM_OVERLAP
            if profile.rand_accesses == 0
            else INORDER_RANDOM_OVERLAP
        )
        return self._finish(
            profile, compute_ns, latency_ns_total, bandwidth_ns, overlap
        )
