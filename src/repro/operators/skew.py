"""Two-round partitioning for skewed datasets (paper section 5.4's
deferred future work, implemented).

Protocol:

1. **Round one** runs the normal histogram build.  During shuffle_begin
   every vault sums its announced inbound bytes; a vault whose total
   exceeds its destination-buffer capacity raises
   :class:`PartitionOverflowError` -- the exception the paper says the
   CPU must handle.
2. **Round two (the CPU's handler)**: the supervisor re-plans using the
   *global* histogram it already has.  Buckets are assigned to vaults by
   a greedy longest-processing-time bin packing, splitting any single
   bucket larger than a vault's budget across several vaults (correct
   for Join/Group by because a split bucket's sub-ranges are re-merged
   locally in the probe phase; the engine records which buckets were
   split so callers can account for the extra merge).
3. The shuffle then runs once with the rebalanced destination map --
   one extra histogram exchange, no extra data pass, exactly the
   "second round of partitioning in order to balance the resulting
   partitions' sizes" the paper sketches.

The cost model charges the second histogram/prefix pass; the data
distribution itself is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analytics.histogram import build_histogram
from repro.analytics.tuples import TUPLE_B, Relation
from repro.faults.plan import stream_salt
from repro.operators import costs
from repro.operators.base import (
    PHASE_HISTOGRAM,
    OperatorVariant,
    PhaseCost,
)
from repro.operators.partition import (
    PartitionOutcome,
    destination_map,
    histogram_cost,
    priced_distribute_cost,
)
from repro.shuffle.engine import ShuffleEngine
from repro.shuffle.interleave import get_interleave


class PartitionOverflowError(RuntimeError):
    """A destination vault's inbound data exceeds its buffer capacity.

    Raised at shuffle_begin time (before any data moves), carrying what
    the CPU's handler needs to re-plan.
    """

    def __init__(self, vault: int, inbound_b: int, capacity_b: int) -> None:
        super().__init__(
            f"vault {vault} would receive {inbound_b} bytes, exceeding its "
            f"{capacity_b}-byte destination buffer; retry with two-round "
            "partitioning (paper section 5.4)"
        )
        self.vault = vault
        self.inbound_b = inbound_b
        self.capacity_b = capacity_b


@dataclass
class RebalancePlan:
    """Round-two output: bucket -> vault assignment."""

    #: bucket id -> list of (vault, tuple_count) shares; a bucket mapped
    #: to one vault has a single (vault, full_count) entry.  Counts are
    #: exact so the shuffle never exceeds a vault's budget.
    assignment: Dict[int, List[Tuple[int, int]]]
    split_buckets: List[int]
    imbalance_before: float
    imbalance_after: float


def check_overflow(
    inbound_tuples: np.ndarray, capacity_tuples: int
) -> None:
    """Raise :class:`PartitionOverflowError` for the worst offender."""
    worst = int(np.argmax(inbound_tuples))
    if inbound_tuples[worst] > capacity_tuples:
        raise PartitionOverflowError(
            vault=worst,
            inbound_b=int(inbound_tuples[worst]) * TUPLE_B,
            capacity_b=capacity_tuples * TUPLE_B,
        )


def plan_rebalance(
    bucket_histogram: np.ndarray, num_vaults: int, capacity_tuples: int
) -> RebalancePlan:
    """Greedy LPT bin packing of buckets onto vaults.

    Buckets descend by size into the least-loaded vault; a bucket that
    alone exceeds ``capacity_tuples`` is split proportionally across the
    least-loaded vaults.
    """
    sizes = np.asarray(bucket_histogram, dtype=np.int64)
    if sizes.sum() > num_vaults * capacity_tuples:
        raise ValueError(
            "dataset exceeds aggregate destination capacity; no "
            "rebalancing can fix that"
        )
    naive = np.zeros(num_vaults, dtype=np.int64)
    for b, size in enumerate(sizes):
        naive[b % num_vaults] += size
    mean = max(1.0, sizes.sum() / num_vaults)
    imbalance_before = float(naive.max() / mean)

    loads = np.zeros(num_vaults, dtype=np.int64)
    assignment: Dict[int, List[Tuple[int, int]]] = {}
    split_buckets: List[int] = []
    order = np.argsort(sizes)[::-1]
    for b in order:
        b = int(b)
        size = int(sizes[b])
        if size == 0:
            assignment[b] = [(int(np.argmin(loads)), 0)]
            continue
        if size > capacity_tuples:
            # Split the hot bucket across enough vaults (exact counts).
            shares = []
            remaining = size
            while remaining > 0:
                vault = int(np.argmin(loads))
                room = capacity_tuples - int(loads[vault])
                if room <= 0:
                    raise ValueError("no vault has room for a hot-bucket share")
                take = min(room, remaining)
                shares.append((vault, take))
                loads[vault] += take
                remaining -= take
            assignment[b] = shares
            split_buckets.append(b)
        else:
            vault = int(np.argmin(loads))
            if loads[vault] + size > capacity_tuples:
                raise ValueError("LPT packing failed: insufficient headroom")
            loads[vault] += size
            assignment[b] = [(vault, size)]
    imbalance_after = float(loads.max() / mean)
    return RebalancePlan(
        assignment=assignment,
        split_buckets=split_buckets,
        imbalance_before=imbalance_before,
        imbalance_after=imbalance_after,
    )


class _PlanApplier:
    """Maps tuples' buckets to vaults, consuming exact share budgets.

    One applier covers all sources: a per-(bucket, share) cursor spreads
    the bucket's tuples over its shares in plan order, so the global
    totals match the plan exactly -- no vault receives more than its
    budget regardless of how tuples split across sources.
    """

    def __init__(self, plan: RebalancePlan) -> None:
        self._plan = plan
        self._cursor: Dict[int, int] = {}  # bucket -> tuples already routed

    def apply(self, buckets: np.ndarray) -> np.ndarray:
        n = len(buckets)
        dest = np.empty(n, dtype=np.int64)
        if n == 0:
            return dest
        # One stable sort groups each bucket's tuples in occurrence
        # order (the per-bucket ``buckets == b`` masks scanned the whole
        # array once per distinct bucket -- quadratic with the CPU's
        # 2**16 radix buckets).
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
        starts = np.flatnonzero(change)
        counts = np.diff(np.append(starts, n))
        for first, count, b in zip(
            starts.tolist(), counts.tolist(), sorted_buckets[starts].tolist()
        ):
            shares = self._plan.assignment[b]
            start = self._cursor.get(b, 0)
            # Assign positions [start, start+count) of the bucket's global
            # order to shares in plan order.
            vault_seq = np.empty(count, dtype=np.int64)
            pos = 0
            offset = 0
            for vault, take in shares:
                lo = max(start, offset)
                hi = min(start + count, offset + take)
                if hi > lo:
                    vault_seq[lo - start : hi - start] = vault
                    pos += hi - lo
                offset += take
            if pos != count:
                raise ValueError(
                    f"bucket {b}: {count} tuples exceed the planned "
                    f"{offset} shares"
                )
            dest[order[first : first + count]] = vault_seq
            self._cursor[b] = start + count
        return dest


def second_round_cost(n: int, variant: OperatorVariant) -> PhaseCost:
    """Cost of the retry: one more histogram exchange + re-planning.

    No extra data pass -- the plan reuses the round-one histogram; the
    dominant extra work is the second shuffle_begin (prefix sums and the
    all-to-all announcement), charged as a histogram-class phase over the
    bucket table.
    """
    num_buckets = 1 << variant.radix_bits
    instructions = (
        num_buckets * (costs.PREFIX_STEP + 4)  # re-plan: sort + pack
        + n * 1  # re-tag each tuple's destination during distribution
    )
    return PhaseCost(
        name="rebalance",
        category=PHASE_HISTOGRAM,
        instructions=instructions,
        dep_ilp=costs.PARTITION_DEP_ILP,
        mem_parallelism=4.0,
        rand_reads=num_buckets,
        rand_writes=num_buckets,
        rand_access_b=8,
        rand_region_b=num_buckets * 8,
        notes="two-round partitioning retry (section 5.4 future work)",
    )


def run_partitioning_skew_aware(
    sources: List[Relation],
    variant: OperatorVariant,
    key_space_bits: int,
    capacity_factor: float = 1.5,
    seed: int = 0,
    model_scale: float = 1.0,
    segmented: bool = True,
) -> Tuple[PartitionOutcome, RebalancePlan]:
    """Partition with overflow detection and the two-round retry.

    ``capacity_factor`` models the CPU's overprovisioned destination
    buffers: each vault can absorb ``capacity_factor x fair-share``
    tuples.  Returns the outcome plus the rebalance plan (``plan`` is
    trivial when round one fit).
    """
    if capacity_factor < 1.0:
        raise ValueError("capacity factor must be >= 1.0")
    n = sum(len(rel) for rel in sources)
    num_vaults = variant.num_partitions
    capacity_tuples = max(1, int(np.ceil(n / num_vaults * capacity_factor)))

    # Round one: normal low-bit bucketing + histogram exchange.
    dest_maps = [
        destination_map(rel, variant, "low", key_space_bits) for rel in sources
    ]
    inbound = np.zeros(num_vaults, dtype=np.int64)
    for dests in dest_maps:
        inbound += build_histogram(dests, num_vaults)

    phases = [histogram_cost(int(n * model_scale), variant, label="histogram")]
    try:
        check_overflow(inbound, capacity_tuples)
        plan = RebalancePlan(
            assignment={}, split_buckets=[],
            imbalance_before=float(inbound.max() / max(1.0, inbound.mean())),
            imbalance_after=float(inbound.max() / max(1.0, inbound.mean())),
        )
        final_maps = dest_maps
    except PartitionOverflowError:
        # Round two: re-plan from the global bucket histogram.
        num_buckets = 1 << variant.radix_bits
        bucket_hist = np.zeros(num_buckets, dtype=np.int64)
        bucket_maps = []
        from repro.analytics.hashing import bucket_of_low_bits

        for rel in sources:
            buckets = bucket_of_low_bits(rel.keys, variant.radix_bits)
            bucket_maps.append(buckets)
            bucket_hist += build_histogram(buckets, num_buckets)
        plan = plan_rebalance(bucket_hist, num_vaults, capacity_tuples)
        applier = _PlanApplier(plan)
        final_maps = [applier.apply(buckets) for buckets in bucket_maps]
        phases.append(second_round_cost(int(n * model_scale), variant))

    engine = ShuffleEngine(
        num_destinations=num_vaults,
        object_b=TUPLE_B,
        permutable=variant.permutable,
        interleave=get_interleave(variant.interleave),
        segmented=segmented,
        faults=variant.faults,
        fault_salt=stream_salt("skew"),
    )
    shuffle = engine.run(sources, final_maps)
    phases.append(
        priced_distribute_cost(
            int(n * model_scale),
            variant,
            "distribute",
            shuffle.resilience,
            model_scale,
        )
    )
    outcome = PartitionOutcome(
        partitions=shuffle.destinations,
        phases=phases,
        shuffle=shuffle,
        resilience=shuffle.resilience,
    )
    return outcome, plan
