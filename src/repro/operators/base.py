"""Operator/phase result types -- the operator <-> system interface.

An operator run produces a list of :class:`PhaseCost` records (one per
algorithmic phase, Table 2's rows) plus a functional output.  PhaseCost
aggregates machine-independent work totals *across the whole machine*;
the systems layer divides them over compute units, feeds the core
models, constructs the DRAM access patterns and applies network limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.analytics.tuples import TUPLE_B
from repro.config.system import INTERLEAVE_MODELS, INTERLEAVE_ROUND_ROBIN
from repro.faults.plan import NULL_FAULTS, FaultSpec

#: Phase categories (Table 2 columns).
PHASE_HISTOGRAM = "histogram"
PHASE_DISTRIBUTE = "distribute"
PHASE_PROBE = "probe"


@dataclass(frozen=True)
class PhaseCost:
    """Aggregate dynamic work of one phase across all data.

    Memory quantities are split by pattern class:

    - ``seq_read_b`` / ``seq_write_b``: bytes streamed sequentially in the
      compute unit's local partition;
    - ``rand_reads`` / ``rand_writes``: random accesses of
      ``rand_access_b`` bytes over a ``rand_region_b``-byte local region;
    - ``shuffle_b``: bytes crossing memory partitions (the network sees
      them; destinations see interleaved ``object_b``-sized writes,
      permutable or addressed per ``permutable_writes``).
    """

    name: str
    category: str
    instructions: float
    simd_ops: float = 0.0
    dep_ilp: float = 2.0
    mem_parallelism: float = 8.0
    simd_vectorizable: bool = False
    rand_reads: float = 0.0
    rand_writes: float = 0.0
    rand_access_b: int = 64
    rand_region_b: int = 1 << 29
    seq_read_b: float = 0.0
    seq_write_b: float = 0.0
    shuffle_b: float = 0.0
    object_b: int = TUPLE_B
    permutable_writes: bool = False
    #: Bytes re-sent over the network (retries + discarded duplicates)
    #: by the fault-injection retry protocol; wire + SerDes cost, no
    #: destination DRAM commit (drops are lost, duplicates discarded).
    retry_shuffle_b: float = 0.0
    #: Retry/timeout backoff and straggler stall, expressed as byte-time
    #: at shuffle egress bandwidth so the interconnect cap prices it.
    backoff_stall_b: float = 0.0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.category not in (PHASE_HISTOGRAM, PHASE_DISTRIBUTE, PHASE_PROBE):
            raise ValueError(f"unknown phase category {self.category!r}")
        for attr in (
            "instructions",
            "simd_ops",
            "rand_reads",
            "rand_writes",
            "seq_read_b",
            "seq_write_b",
            "shuffle_b",
            "retry_shuffle_b",
            "backoff_stall_b",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    @property
    def is_partitioning(self) -> bool:
        return self.category in (PHASE_HISTOGRAM, PHASE_DISTRIBUTE)

    @property
    def total_bytes(self) -> float:
        return (
            self.seq_read_b
            + self.seq_write_b
            + self.shuffle_b
            + (self.rand_reads + self.rand_writes) * self.rand_access_b
        )

    def scaled(self, factor: float) -> "PhaseCost":
        """Scale all totals linearly (dataset-size extrapolation)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            instructions=self.instructions * factor,
            simd_ops=self.simd_ops * factor,
            rand_reads=self.rand_reads * factor,
            rand_writes=self.rand_writes * factor,
            seq_read_b=self.seq_read_b * factor,
            seq_write_b=self.seq_write_b * factor,
            shuffle_b=self.shuffle_b * factor,
            retry_shuffle_b=self.retry_shuffle_b * factor,
            backoff_stall_b=self.backoff_stall_b * factor,
        )


@dataclass
class OperatorRun:
    """The outcome of functionally executing one operator variant."""

    operator: str
    variant: str
    phases: List[PhaseCost]
    output: Any
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def partitioning_phases(self) -> List[PhaseCost]:
        return [p for p in self.phases if p.is_partitioning]

    @property
    def probe_phases(self) -> List[PhaseCost]:
        return [p for p in self.phases if not p.is_partitioning]

    def phase(self, name: str) -> PhaseCost:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r} in {self.operator}/{self.variant}")

    @property
    def total_instructions(self) -> float:
        return sum(p.instructions for p in self.phases)


@dataclass(frozen=True)
class OperatorVariant:
    """How an operator should be executed on a given machine.

    - ``radix_bits``: partitioning hash width (paper: 16 low-order bits
      on the CPU, 6 bits -- one per vault -- on the NMP machines).
    - ``probe_algorithm``: ``"hash"`` or ``"sort"``.
    - ``permutable``: partitioning uses permutable stores.
    - ``simd``: probe/partition loops are written for the wide SIMD unit
      (Mondrian); controls which phases are marked vectorizable.
    """

    radix_bits: int
    probe_algorithm: str
    permutable: bool
    simd: bool
    num_partitions: int
    #: Local in-partition sort used by the Sort operator's probe phase:
    #: quicksort on the CPU, mergesort on the NMP machines (section 6).
    local_sort: str = "mergesort"
    #: Arrival-order model of the shuffle network (see
    #: ``repro.shuffle.interleave.NAMED_INTERLEAVES``).
    interleave: str = INTERLEAVE_ROUND_ROBIN
    #: Deterministic fault schedule replayed through the shuffle barrier
    #: (:mod:`repro.faults`); the default injects nothing.
    faults: FaultSpec = NULL_FAULTS

    def __post_init__(self) -> None:
        if not isinstance(self.faults, FaultSpec):
            raise TypeError("faults must be a FaultSpec")
        if self.probe_algorithm not in ("hash", "sort"):
            raise ValueError(f"unknown probe algorithm {self.probe_algorithm!r}")
        if self.local_sort not in ("quicksort", "mergesort"):
            raise ValueError(f"unknown local sort {self.local_sort!r}")
        if self.interleave not in INTERLEAVE_MODELS:
            raise ValueError(f"unknown interleave model {self.interleave!r}")
        if self.radix_bits < 1:
            raise ValueError("radix_bits must be >= 1")
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")

    @property
    def label(self) -> str:
        parts = [
            self.probe_algorithm,
            "perm" if self.permutable else "addr",
            "simd" if self.simd else "scalar",
        ]
        return "-".join(parts)
