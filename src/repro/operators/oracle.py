"""Reference (oracle) implementations the operator tests compare against.

Deliberately naive: plain numpy / Python dictionaries, no partitioning,
no custom data structures.  If an operator variant and its oracle agree
on every workload, the partitioning, shuffle, hash table and sort
substrates all composed correctly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analytics.tuples import Relation
from repro.analytics.workload import (
    GroupByWorkload,
    JoinWorkload,
    ScanWorkload,
    SortWorkload,
)


def _concat(parts: List[Relation]) -> Relation:
    # One concatenation: the pairwise loop recopied the growing prefix
    # (quadratic) and re-promoted the structured dtype per partition.
    return Relation(np.concatenate([p.data for p in parts]), parts[0].name)


def oracle_scan(workload: ScanWorkload) -> Tuple[int, int]:
    """(match count, payload sum) for the searched key."""
    rel = _concat(workload.partitions)
    hit = rel.keys == np.uint64(workload.search_key)
    return int(np.count_nonzero(hit)), int(rel.payloads[hit].sum(dtype=np.uint64))


def oracle_sort(workload: SortWorkload) -> Relation:
    """Globally key-sorted relation."""
    return _concat(workload.partitions).sorted_by_key("oracle_sorted")


def oracle_join(workload: JoinWorkload) -> Tuple[int, int]:
    """(match count, checksum) of R join S.

    Checksum is the sum over matches of (R payload + S payload), the same
    order-insensitive digest the operators produce.
    """
    r = _concat(workload.r_partitions)
    s = _concat(workload.s_partitions)
    lookup = {int(k): int(p) for k, p in zip(r.keys, r.payloads)}
    matches = 0
    checksum = 0
    for k, p in zip(s.keys, s.payloads):
        r_payload = lookup.get(int(k))
        if r_payload is not None:
            matches += 1
            checksum = (checksum + r_payload + int(p)) % (1 << 64)
    return matches, checksum


def oracle_groupby(workload: GroupByWorkload) -> Dict[int, Dict[str, float]]:
    """Per-key aggregates: count, sum, min, max, avg, sumsq."""
    rel = _concat(workload.partitions)
    groups: Dict[int, List[float]] = {}
    for k, p in zip(rel.keys, rel.payloads):
        groups.setdefault(int(k), []).append(float(p))
    result = {}
    for key, values in groups.items():
        arr = np.array(values)
        result[key] = {
            "count": float(len(arr)),
            "sum": float(arr.sum()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "avg": float(arr.mean()),
            "sumsq": float((arr * arr).sum()),
        }
    return result
