"""The partitioning phase shared by Join, Group by and Sort (Table 2).

Two steps:

1. **Histogram build** -- every source partition hashes its keys and
   counts tuples per destination; prefix sums give exact write offsets
   and the per-destination totals that shuffle_begin announces.
2. **Data distribution** -- tuples are copied to their destination
   partitions.  Addressed mode computes each tuple's exact destination
   address (per-bucket cursor chains -- the dependency bottleneck);
   permutable mode streams tuples through the object buffer and lets the
   destination vault controller place them (simpler code, sequential
   DRAM writes).

Join and Group by bucket by **low-order** key bits; Sort buckets by
**high-order** bits so partitions hold disjoint key ranges (section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.analytics.hashing import bucket_of_high_bits, bucket_of_low_bits
from repro.analytics.tuples import TUPLE_B, Relation
from repro.faults.plan import stream_salt
from repro.faults.protocol import ResilienceStats
from repro.operators import costs
from repro.operators.base import (
    PHASE_DISTRIBUTE,
    PHASE_HISTOGRAM,
    OperatorVariant,
    PhaseCost,
)
from repro.shuffle.engine import ShuffleEngine, ShuffleResult
from repro.shuffle.interleave import get_interleave

#: Partitioning key-bit schemes.
SCHEME_LOW_BITS = "low"
SCHEME_HIGH_BITS = "high"


@dataclass
class PartitionOutcome:
    """Functional result + cost records of one partitioning phase."""

    partitions: List[Relation]
    phases: List[PhaseCost]
    shuffle: ShuffleResult
    #: Retry/backoff accounting when a fault schedule was active
    #: (``None`` on fault-free runs, keeping their records unchanged).
    resilience: Optional[ResilienceStats] = None


def priced_distribute_cost(
    n_model: int,
    variant: OperatorVariant,
    label: str,
    resilience: Optional[ResilienceStats],
    model_scale: float,
) -> PhaseCost:
    """The distribute phase's cost, with fault overhead priced in.

    The functional shuffle moves the small test-sized relations; the
    cost model describes a dataset ``model_scale`` times larger.  The
    protocol's byte quantities are strictly per-delivery linear, so they
    extrapolate with the same factor: re-sent + duplicated bytes become
    ``retry_shuffle_b`` (wire + SerDes, no DRAM commit) and the
    backoff + straggler critical-path stall becomes ``backoff_stall_b``
    (idle wire time the interconnect cap prices).
    """
    cost = distribute_cost(n_model, variant, label=label)
    if resilience is None:
        return cost
    return replace(
        cost,
        retry_shuffle_b=(resilience.retried_b + resilience.duplicate_b)
        * model_scale,
        backoff_stall_b=(
            resilience.backoff_stall_b + resilience.straggler_stall_b
        )
        * model_scale,
    )


def destination_map(
    relation: Relation,
    variant: OperatorVariant,
    scheme: str,
    key_space_bits: int,
) -> np.ndarray:
    """Destination partition of every tuple.

    The radix hash produces ``2**radix_bits`` buckets (16 bits on the
    CPU, 6 on the NMP machines); buckets fold onto the
    ``num_partitions`` memory partitions.
    """
    if scheme == SCHEME_LOW_BITS:
        buckets = bucket_of_low_bits(relation.keys, variant.radix_bits)
        return buckets % variant.num_partitions
    if scheme == SCHEME_HIGH_BITS:
        # Sort requires *order-preserving* range partitions: partition i
        # holds keys strictly smaller than partition i+1's.  Folding a
        # wider radix onto the partitions with a modulo would alias
        # disjoint ranges, so the high-bit scheme maps key ranges to
        # partitions directly (for power-of-two partition counts this is
        # exactly "hash keys with high order bits").
        p = variant.num_partitions
        if key_space_bits + p.bit_length() > 63:
            raise ValueError("key space too wide for range partitioning math")
        scaled = (relation.keys.astype(np.int64) * p) >> np.int64(key_space_bits)
        return np.minimum(scaled, p - 1)
    raise ValueError(f"unknown partitioning scheme {scheme!r}")


def histogram_cost(
    n: int, variant: OperatorVariant, label: str = "histogram"
) -> PhaseCost:
    """Cost of the histogram-build step over ``n`` tuples.

    The histogram table has ``2**radix_bits`` 8 B counters; with 16 bits
    (CPU) that is 512 KB -- LLC-resident but beyond the L1 -- while the
    NMP machines' 6-bit tables live in L1.  ``rand_region_b`` carries the
    table size so the systems layer can classify those accesses.
    """
    num_buckets = 1 << variant.radix_bits
    inst_per_tuple = costs.TUPLE_LOAD + costs.HASH_KEY + costs.HIST_UPDATE
    instructions = n * inst_per_tuple + num_buckets * costs.PREFIX_STEP
    # SIMD machines keep per-lane private histograms (merged in a
    # negligible tail), so the whole counting loop vectorizes.
    simd_ops = instructions if variant.simd else 0.0
    return PhaseCost(
        name=label,
        category=PHASE_HISTOGRAM,
        instructions=instructions,
        simd_ops=simd_ops,
        dep_ilp=costs.PARTITION_DEP_ILP,
        mem_parallelism=4.0,
        simd_vectorizable=variant.simd,
        rand_reads=n,
        rand_writes=n,
        rand_access_b=8,
        rand_region_b=num_buckets * 8,
        seq_read_b=n * TUPLE_B,
        notes="hash keys, count per destination, prefix-sum",
    )


def distribute_cost(
    n: int, variant: OperatorVariant, label: str = "distribute"
) -> PhaseCost:
    """Cost of the data-distribution step over ``n`` tuples."""
    if variant.permutable:
        inst_per_tuple = costs.TUPLE_LOAD + costs.HASH_KEY + costs.PERM_STORE
        instructions = n * inst_per_tuple
        simd_ops = instructions if variant.simd else 0.0
        return PhaseCost(
            name=label,
            category=PHASE_DISTRIBUTE,
            instructions=instructions,
            simd_ops=simd_ops,
            dep_ilp=costs.PARTITION_DEP_ILP,
            mem_parallelism=8.0,
            simd_vectorizable=variant.simd,
            seq_read_b=n * TUPLE_B,
            shuffle_b=n * TUPLE_B,
            object_b=TUPLE_B,
            permutable_writes=True,
            notes="stream tuples via object buffers; controller places them",
        )
    inst_per_tuple = (
        costs.TUPLE_LOAD + costs.HASH_KEY + costs.ADDR_CALC + costs.TUPLE_STORE
    )
    instructions = n * inst_per_tuple
    # Addressed code vectorizes only the load+hash slice (paper: Mondrian-
    # noperm "cannot use SIMD instructions throughout the partition loop").
    simd_ops = n * (costs.TUPLE_LOAD + costs.HASH_KEY) if variant.simd else 0.0
    return PhaseCost(
        name=label,
        category=PHASE_DISTRIBUTE,
        instructions=instructions,
        simd_ops=simd_ops,
        dep_ilp=costs.PARTITION_DEP_ILP,
        # Addressed writes serialize through per-bucket cursor chains and
        # the store queue; effectively one access in flight.
        mem_parallelism=1.0,
        simd_vectorizable=variant.simd,
        rand_writes=n,
        rand_access_b=TUPLE_B,
        rand_region_b=1 << 29,
        seq_read_b=n * TUPLE_B,
        shuffle_b=n * TUPLE_B,
        object_b=TUPLE_B,
        permutable_writes=False,
        notes="compute exact destination addresses via per-bucket cursors",
    )


def run_partitioning(
    sources: List[Relation],
    variant: OperatorVariant,
    scheme: str,
    key_space_bits: int,
    label_prefix: str = "",
    model_scale: float = 1.0,
    segmented: bool = True,
) -> PartitionOutcome:
    """Execute the full partitioning phase functionally and cost it.

    ``model_scale`` sizes the *cost model's* dataset relative to the
    functionally executed one: the tuples really moved stay small (so
    tests run fast), while the PhaseCost records describe a dataset
    ``model_scale`` times larger -- the partitioning phase is strictly
    per-tuple linear, so the extrapolation is exact.

    ``segmented`` selects the whole-relation shuffle materialization
    (:mod:`repro.columnar`); ``False`` keeps the per-destination
    reference path.  Both are byte-identical.
    """
    if model_scale <= 0:
        raise ValueError("model_scale must be positive")
    dest_maps = [
        destination_map(rel, variant, scheme, key_space_bits) for rel in sources
    ]
    engine = ShuffleEngine(
        num_destinations=variant.num_partitions,
        object_b=TUPLE_B,
        permutable=variant.permutable,
        interleave=get_interleave(variant.interleave),
        segmented=segmented,
        faults=variant.faults,
        # Salted by the pass label so e.g. a join's R- and S-shuffles
        # draw independent-but-reproducible schedules from one seed.
        fault_salt=stream_salt(label_prefix),
    )
    shuffle = engine.run(sources, dest_maps)
    n = sum(len(rel) for rel in sources)
    n_model = int(round(n * model_scale))
    phases = [
        histogram_cost(n_model, variant, label=f"{label_prefix}histogram"),
        priced_distribute_cost(
            n_model,
            variant,
            f"{label_prefix}distribute",
            shuffle.resilience,
            model_scale,
        ),
    ]
    return PartitionOutcome(
        partitions=shuffle.destinations,
        phases=phases,
        shuffle=shuffle,
        resilience=shuffle.resilience,
    )
