"""The Join operator (R join S, foreign-key relationship).

Partitioning: both relations are range-partitioned by the low-order key
bits and shuffled so matching tuples co-locate (histogram + distribute,
Table 2).  Probe, per partition:

- **hash variant** (CPU / NMP-rand): build a hash table plus prefix-sum
  index ranges over the smaller relation R, then probe it with every S
  tuple -- fast lookups, random memory accesses.
- **sort variant** (NMP-seq / Mondrian): sort both relations with
  mergesort (bitonic-seeded when SIMD is available) and merge-join them
  in one final sequential pass -- higher algorithmic complexity
  (O(n log n)), purely sequential memory accesses (section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analytics.tuples import TUPLE_B, Relation
from repro.analytics.workload import JoinWorkload
from repro.columnar import (
    SegmentedColumns,
    segment_ids,
    segmented_mergesort,
    segmented_searchsorted,
)
from repro.columnar.hashtable import SegmentedLinearProbingTable
from repro.faults.protocol import combine_stats
from repro.operators import costs
from repro.operators.base import PHASE_PROBE, OperatorRun, OperatorVariant, PhaseCost
from repro.operators.hashtable import LinearProbingHashTable
from repro.operators.partition import SCHEME_LOW_BITS, run_partitioning
from repro.operators.sort_algos import merge_passes_needed, mergesort

#: Output tuple: key + R payload + S payload, padded to 32 B.
JOIN_OUT_B = 32


@dataclass(frozen=True)
class JoinOutput:
    """Join result summary (matches plus an order-insensitive checksum)."""

    matches: int
    checksum: int


def hash_probe_costs(
    n_r: int, n_s: int, variant: OperatorVariant, probe_steps_per_lookup: float
) -> List[PhaseCost]:
    """Cost of hash-table build + probe over one partitioning of R, S.

    The random-access region is the *per-partition* table (the working
    set one compute unit walks); each lookup chases the bucket header,
    the index range and the match -- a dependent chain, hence the low
    effective MLP (paper's NMP-rand IPC of 0.24).
    """
    per_part_r = max(1, n_r // variant.num_partitions)
    table_b = max(
        costs.HASH_SLOT_B,
        int(per_part_r / costs.HASH_TABLE_LOAD_FACTOR) * costs.HASH_SLOT_B,
    )
    build = PhaseCost(
        name="hash-build",
        category=PHASE_PROBE,
        instructions=n_r * costs.HT_BUILD,
        dep_ilp=costs.PROBE_DEP_ILP,
        mem_parallelism=4.0,
        rand_writes=n_r,
        rand_access_b=costs.HASH_SLOT_B,
        rand_region_b=table_b,
        seq_read_b=n_r * TUPLE_B,
        notes="hash R keys, build table + prefix-sum index ranges",
    )
    accesses = max(probe_steps_per_lookup, costs.PROBE_ACCESSES_PER_LOOKUP)
    probe = PhaseCost(
        name="hash-probe",
        category=PHASE_PROBE,
        instructions=n_s * costs.HT_PROBE,
        dep_ilp=costs.PROBE_DEP_ILP,
        mem_parallelism=costs.PROBE_MEM_PARALLELISM,
        rand_reads=n_s * accesses,
        rand_access_b=costs.HASH_SLOT_B,
        rand_region_b=table_b,
        seq_read_b=n_s * TUPLE_B,
        seq_write_b=n_s * JOIN_OUT_B,
        notes="probe the R index range for every S tuple",
    )
    return [build, probe]


def sort_probe_costs(
    n_r: int, n_s: int, variant: OperatorVariant, num_partitions: int
) -> List[PhaseCost]:
    """Cost of sort-merge join: sort R, sort S, merge-join pass.

    Pass counts follow the per-partition sizes (mergesort's log factor is
    local to each partition).
    """
    initial_run = costs.BITONIC_RUN_TUPLES if variant.simd else 1
    way = costs.MERGE_WAY_SIMD if variant.simd else costs.MERGE_WAY_SCALAR
    per_part_r = max(1, n_r // num_partitions)
    per_part_s = max(1, n_s // num_partitions)
    phases = []
    for label, n, per_part in (
        ("sort-R", n_r, per_part_r),
        ("sort-S", n_s, per_part_s),
    ):
        passes = merge_passes_needed(per_part, initial_run, way)
        bitonic_inst = (
            n * costs.BITONIC_STEP * _bitonic_stages(costs.BITONIC_RUN_TUPLES)
            if variant.simd
            else 0.0
        )
        merge_inst = n * costs.MERGE_STEP * passes
        instructions = merge_inst + bitonic_inst
        phases.append(
            PhaseCost(
                name=label,
                category=PHASE_PROBE,
                instructions=instructions,
                simd_ops=instructions if variant.simd else 0.0,
                dep_ilp=costs.MERGE_DEP_ILP,
                mem_parallelism=8.0,
                simd_vectorizable=variant.simd,
                seq_read_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
                seq_write_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
                notes=f"mergesort, {passes} merge passes, initial run {initial_run}",
            )
        )
    merge_join = PhaseCost(
        name="merge-join",
        category=PHASE_PROBE,
        instructions=(n_r + n_s) * costs.MERGE_JOIN_STEP,
        simd_ops=(n_r + n_s) * costs.MERGE_JOIN_STEP if variant.simd else 0.0,
        dep_ilp=costs.MERGE_DEP_ILP,
        mem_parallelism=8.0,
        simd_vectorizable=variant.simd,
        seq_read_b=(n_r + n_s) * TUPLE_B,
        seq_write_b=n_s * JOIN_OUT_B,
        notes="final sequential pass joining the sorted relations",
    )
    return phases + [merge_join]


def _bitonic_stages(run: int) -> int:
    """Compare-exchange stages of a bitonic network over ``run`` keys."""
    k = run.bit_length() - 1
    return k * (k + 1) // 2


def _hash_join_partition(r: Relation, s: Relation) -> tuple:
    """Functional hash join of one partition; returns (matches, checksum,
    probe_steps_per_lookup)."""
    if len(r) == 0:
        return 0, 0, 1.0
    table = LinearProbingHashTable(len(r), costs.HASH_TABLE_LOAD_FACTOR)
    table.insert_batch(r.keys, r.payloads)
    payloads, found = table.lookup_batch(s.keys)
    matches = int(np.count_nonzero(found))
    checksum = _payload_checksum(payloads[found], s.payloads[found])
    steps = table.lookup_probe_steps / max(1, len(s))
    return matches, checksum, steps


def _payload_checksum(r_payloads: np.ndarray, s_payloads: np.ndarray) -> int:
    """Order-insensitive exact digest: sum of payload pairs mod 2**64."""
    with np.errstate(over="ignore"):
        total = (r_payloads + s_payloads).sum(dtype=np.uint64)
    return int(total)


def _merge_join_partition(r: Relation, s: Relation, simd: bool) -> tuple:
    """Functional sort-merge join of one partition."""
    if len(r) == 0 or len(s) == 0:
        return 0, 0
    r_sorted, _ = mergesort(r.data, bitonic_initial=simd)
    s_sorted, _ = mergesort(s.data, bitonic_initial=simd)
    r_keys = r_sorted["key"]
    idx = np.searchsorted(r_keys, s_sorted["key"])
    idx = np.minimum(idx, len(r_keys) - 1)
    found = r_keys[idx] == s_sorted["key"]
    matches = int(np.count_nonzero(found))
    checksum = _payload_checksum(
        r_sorted["payload"][idx[found]], s_sorted["payload"][found]
    )
    return matches, checksum


def _hash_join_segmented(
    r_cols: SegmentedColumns, s_cols: SegmentedColumns
) -> tuple:
    """Hash join of all partitions at once; returns (matches, checksum,
    per-partition probe steps).

    Builds every partition's linear-probing table inside one
    :class:`~repro.columnar.hashtable.SegmentedLinearProbingTable` and
    probes them together.  Partitions with an empty R side build no
    table and probe nothing, contributing the reference's sentinel 1.0
    probe-step figure.  Collision behaviour, per-partition step counts
    (which feed the cost model) and the checksum are all byte-identical
    to the per-partition loop.
    """
    r_lens = r_cols.segment_lengths()
    s_lens = s_cols.segment_lengths()
    active = r_lens > 0
    probe_steps = np.ones(len(r_lens), dtype=np.float64)
    if not np.any(active):
        return 0, 0, probe_steps.tolist()
    # Remap active segments to dense table indices.
    table_idx = np.cumsum(active) - 1
    r_mask = np.repeat(active, r_lens)
    s_mask = np.repeat(active, s_lens)
    table = SegmentedLinearProbingTable(
        r_lens[active], costs.HASH_TABLE_LOAD_FACTOR
    )
    r_segs = table_idx[segment_ids(r_cols.segments)[r_mask]]
    table.insert_batch(r_cols.keys[r_mask], r_cols.payloads[r_mask], r_segs)
    s_keys = s_cols.keys[s_mask]
    s_payloads = s_cols.payloads[s_mask]
    s_segs = table_idx[segment_ids(s_cols.segments)[s_mask]]
    payloads, found = table.lookup_batch(s_keys, s_segs)
    matches = int(np.count_nonzero(found))
    checksum = _payload_checksum(payloads[found], s_payloads[found])
    # lookup_probe_steps / max(1, len(s)) per partition, as the scalar
    # table reports them.
    probe_steps[active] = table.lookup_probe_steps / np.maximum(
        1, s_lens[active]
    )
    return matches, checksum, probe_steps.tolist()


def _merge_join_segmented(
    r_cols: SegmentedColumns,
    s_cols: SegmentedColumns,
    simd: bool,
    key_space_bits: int,
) -> tuple:
    """Sort-merge join of all partitions at once; returns (matches,
    checksum).

    Segmented mergesort on both sides, then one per-segment
    ``searchsorted`` (composite-key kernel); partitions where either
    side is empty contribute nothing, matching the reference's early
    return.
    """
    r_keys, r_payloads = segmented_mergesort(
        r_cols.keys, r_cols.payloads, r_cols.segments, bitonic_initial=simd
    )
    s_keys, s_payloads = segmented_mergesort(
        s_cols.keys, s_cols.payloads, s_cols.segments, bitonic_initial=simd
    )
    if len(r_keys) == 0 or len(s_keys) == 0:
        return 0, 0
    idx, valid = segmented_searchsorted(
        r_keys, r_cols.segments, s_keys, s_cols.segments, key_space_bits
    )
    found = valid & (r_keys[idx] == s_keys)
    matches = int(np.count_nonzero(found))
    checksum = _payload_checksum(r_payloads[idx[found]], s_payloads[found])
    return matches, checksum


def run_join(
    workload: JoinWorkload,
    variant: OperatorVariant,
    model_scale: float = 1.0,
    segmented: bool = True,
) -> OperatorRun:
    """Execute Join functionally under the given variant and cost it.

    ``model_scale`` sizes the cost model's relations relative to the
    functionally executed ones (see :func:`run_partitioning`); sort pass
    counts and hash-table regions are computed at model size.

    ``segmented=False`` keeps the per-partition reference probe; the
    default joins all partitions with the whole-relation kernels of
    :mod:`repro.columnar`.
    """
    r_part = run_partitioning(
        workload.r_partitions,
        variant,
        SCHEME_LOW_BITS,
        workload.key_space_bits,
        label_prefix="R-",
        model_scale=model_scale,
        segmented=segmented,
    )
    s_part = run_partitioning(
        workload.s_partitions,
        variant,
        SCHEME_LOW_BITS,
        workload.key_space_bits,
        label_prefix="S-",
        model_scale=model_scale,
        segmented=segmented,
    )

    probe_steps = []
    if (
        segmented
        and r_part.shuffle.columns is not None
        and s_part.shuffle.columns is not None
    ):
        r_cols, s_cols = r_part.shuffle.columns, s_part.shuffle.columns
        if variant.probe_algorithm == "hash":
            matches, checksum, probe_steps = _hash_join_segmented(r_cols, s_cols)
        else:
            matches, checksum = _merge_join_segmented(
                r_cols, s_cols, variant.simd, workload.key_space_bits
            )
        checksum %= 1 << 64
    else:
        matches = 0
        checksum = 0
        for r, s in zip(r_part.partitions, s_part.partitions):
            if variant.probe_algorithm == "hash":
                m, c, steps = _hash_join_partition(r, s)
                probe_steps.append(steps)
            else:
                m, c = _merge_join_partition(r, s, variant.simd)
            matches += m
            checksum = (checksum + c) % (1 << 64)

    model_n_r = int(round(workload.n_r * model_scale))
    model_n_s = int(round(workload.n_s * model_scale))
    if variant.probe_algorithm == "hash":
        avg_steps = float(np.mean(probe_steps)) if probe_steps else 1.0
        probe_phases = hash_probe_costs(model_n_r, model_n_s, variant, avg_steps)
    else:
        probe_phases = sort_probe_costs(
            model_n_r, model_n_s, variant, variant.num_partitions
        )

    metadata = {"n_r": workload.n_r, "n_s": workload.n_s}
    resilience = combine_stats(r_part.resilience, s_part.resilience)
    if resilience is not None:
        metadata["resilience"] = resilience.to_metadata()

    return OperatorRun(
        operator="join",
        variant=variant.label,
        phases=r_part.phases + s_part.phases + probe_phases,
        output=JoinOutput(matches=matches, checksum=checksum),
        metadata=metadata,
    )
