"""The four basic data operators (paper Table 2) in every evaluated
algorithmic variant, executed functionally (real tuples move, real
outputs are produced) while emitting the per-phase cost records the
performance and energy models consume.

=========  =======================  ==================================
Operator   Partitioning             Probe variants
=========  =======================  ==================================
Scan       (none)                   streaming compare
Join       low-order-bit shuffle    hash build+probe / sort-merge join
Group by   low-order-bit shuffle    hash aggregate / sort + seq fold
Sort       high-order-bit shuffle   quicksort (CPU) / mergesort (NMP)
=========  =======================  ==================================

Exported names, by role:

- Runners -- ``run_scan`` / ``run_sort`` / ``run_groupby`` / ``run_join``
  execute one operator functionally and cost it; ``OPERATOR_RUNNERS``
  / ``OPERATOR_NAMES`` is the dispatch table the systems layer uses;
  ``run_partitioning`` is the shared shuffle phase and
  ``run_partitioning_skew_aware`` its two-round variant for skewed keys
  (with ``plan_rebalance``, ``RebalancePlan`` and
  ``PartitionOverflowError`` as its protocol pieces).
- Contracts -- ``PhaseCost`` (one phase's machine-independent work),
  ``OperatorRun`` (phases + functional output), ``OperatorVariant`` (how
  a machine runs an operator), and the phase categories
  ``PHASE_HISTOGRAM`` / ``PHASE_DISTRIBUTE`` / ``PHASE_PROBE``.
- Outputs -- ``ScanOutput``, ``JoinOutput``, ``GroupByOutput``: each
  operator's verifiable functional result.
- Building blocks -- ``LinearProbingHashTable`` (the probe substrate),
  ``destination_map`` with ``SCHEME_LOW_BITS`` / ``SCHEME_HIGH_BITS``
  (bucket routing), and the sort kernels ``quicksort`` / ``mergesort``
  / ``merge_pass`` / ``bitonic_sort_runs``.
"""

from repro.operators.base import (
    OperatorRun,
    OperatorVariant,
    PhaseCost,
    PHASE_DISTRIBUTE,
    PHASE_HISTOGRAM,
    PHASE_PROBE,
)
from repro.operators.groupby import GroupByOutput, run_groupby
from repro.operators.hashtable import LinearProbingHashTable
from repro.operators.join import JoinOutput, run_join
from repro.operators.partition import (
    SCHEME_HIGH_BITS,
    SCHEME_LOW_BITS,
    destination_map,
    run_partitioning,
)
from repro.operators.scan import ScanOutput, run_scan
from repro.operators.skew import (
    PartitionOverflowError,
    RebalancePlan,
    plan_rebalance,
    run_partitioning_skew_aware,
)
from repro.operators.sort_algos import bitonic_sort_runs, merge_pass, mergesort, quicksort
from repro.operators.sort_op import run_sort

#: Dispatch table used by the systems layer.
OPERATOR_RUNNERS = {
    "scan": run_scan,
    "sort": run_sort,
    "groupby": run_groupby,
    "join": run_join,
}

OPERATOR_NAMES = tuple(OPERATOR_RUNNERS)

__all__ = [
    "GroupByOutput",
    "JoinOutput",
    "LinearProbingHashTable",
    "OPERATOR_NAMES",
    "OPERATOR_RUNNERS",
    "OperatorRun",
    "OperatorVariant",
    "PHASE_DISTRIBUTE",
    "PHASE_HISTOGRAM",
    "PHASE_PROBE",
    "PartitionOverflowError",
    "PhaseCost",
    "RebalancePlan",
    "ScanOutput",
    "plan_rebalance",
    "run_partitioning_skew_aware",
    "SCHEME_HIGH_BITS",
    "SCHEME_LOW_BITS",
    "bitonic_sort_runs",
    "destination_map",
    "merge_pass",
    "mergesort",
    "quicksort",
    "run_groupby",
    "run_join",
    "run_partitioning",
    "run_scan",
    "run_sort",
]
