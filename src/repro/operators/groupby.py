"""The Group by operator.

Partitioning is identical to Join's (low-order bits).  The probe phase
groups each partition's tuples by key and applies the paper's six
aggregation functions -- avg, count, min, max, sum, and sum squared --
to every group (section 6; the modeled query has an average group size
of four tuples).

- **hash variant**: find-or-insert each tuple's group slot in a hash
  table and update the six running aggregates (random read-modify-write
  per tuple).
- **sort variant**: mergesort the partition, then one sequential pass
  detects group boundaries and folds the aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analytics.tuples import TUPLE_B, Relation
from repro.analytics.workload import GroupByWorkload
from repro.columnar import (
    SegmentedColumns,
    segmented_mergesort,
    segmented_sorted_groups,
    segmented_stable_argsort,
    sorted_group_aggregates,
)
from repro.faults.protocol import combine_stats
from repro.operators import costs
from repro.operators.base import PHASE_PROBE, OperatorRun, OperatorVariant, PhaseCost
from repro.operators.hashtable import LinearProbingHashTable
from repro.operators.partition import SCHEME_LOW_BITS, run_partitioning
from repro.operators.sort_algos import merge_passes_needed, mergesort

#: Aggregate record: key + count + sum + min + max + sumsq + avg = 56 B,
#: padded to the 64 B slot of the cost model.
GROUP_OUT_B = 64

AGGREGATE_NAMES = ("count", "sum", "min", "max", "avg", "sumsq")


@dataclass
class GroupByOutput:
    """Per-group aggregates, keyed by group key."""

    groups: Dict[int, Dict[str, float]]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def aggregate(self, key: int, name: str) -> float:
        return self.groups[key][name]


def _aggregate_sorted(keys: np.ndarray, payloads: np.ndarray) -> Dict[int, Dict[str, float]]:
    """Fold the six aggregates over key-sorted data (one sequential pass)."""
    groups: Dict[int, Dict[str, float]] = {}
    if len(keys) == 0:
        return groups
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(keys)]])
    values = payloads.astype(np.float64)
    for start, end in zip(starts, ends):
        chunk = values[start:end]
        count = float(end - start)
        total = float(chunk.sum())
        groups[int(keys[start])] = {
            "count": count,
            "sum": total,
            "min": float(chunk.min()),
            "max": float(chunk.max()),
            "avg": total / count,
            "sumsq": float((chunk * chunk).sum()),
        }
    return groups


def hash_groupby_costs(
    n: int, num_groups: int, variant: OperatorVariant
) -> List[PhaseCost]:
    """Random-access group aggregation cost.

    The region one unit walks is its partition's group table; each tuple
    performs a dependent read-modify-write of its group slot.
    """
    per_part_groups = max(1, num_groups // variant.num_partitions)
    table_b = max(
        costs.GROUP_SLOT_B,
        int(per_part_groups / costs.HASH_TABLE_LOAD_FACTOR) * costs.GROUP_SLOT_B,
    )
    return [
        PhaseCost(
            name="hash-aggregate",
            category=PHASE_PROBE,
            instructions=n * (costs.HASH_KEY + costs.AGG_UPDATE),
            dep_ilp=costs.PROBE_DEP_ILP,
            mem_parallelism=costs.PROBE_MEM_PARALLELISM,
            rand_reads=n,
            rand_writes=n,
            rand_access_b=costs.GROUP_SLOT_B,
            rand_region_b=table_b,
            seq_read_b=n * TUPLE_B,
            seq_write_b=num_groups * GROUP_OUT_B,
            notes="find-or-insert group slot, update six aggregates",
        )
    ]


def sort_groupby_costs(
    n: int, num_groups: int, variant: OperatorVariant, num_partitions: int
) -> List[PhaseCost]:
    """Sort-then-sequential-aggregate cost."""
    initial_run = costs.BITONIC_RUN_TUPLES if variant.simd else 1
    way = costs.MERGE_WAY_SIMD if variant.simd else costs.MERGE_WAY_SCALAR
    per_part = max(1, n // num_partitions)
    passes = merge_passes_needed(per_part, initial_run, way)
    sort_inst = n * costs.MERGE_STEP * passes
    if variant.simd:
        k = costs.BITONIC_RUN_TUPLES.bit_length() - 1
        sort_inst += n * costs.BITONIC_STEP * (k * (k + 1) // 2)
    sort_phase = PhaseCost(
        name="sort-groups",
        category=PHASE_PROBE,
        instructions=sort_inst,
        simd_ops=sort_inst if variant.simd else 0.0,
        dep_ilp=costs.MERGE_DEP_ILP,
        mem_parallelism=8.0,
        simd_vectorizable=variant.simd,
        seq_read_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
        seq_write_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
        notes=f"mergesort partition, {passes} merge passes",
    )
    agg_inst = n * costs.SEQ_AGG
    agg_phase = PhaseCost(
        name="seq-aggregate",
        category=PHASE_PROBE,
        instructions=agg_inst,
        simd_ops=agg_inst if variant.simd else 0.0,
        dep_ilp=costs.MERGE_DEP_ILP,
        mem_parallelism=8.0,
        simd_vectorizable=variant.simd,
        seq_read_b=n * TUPLE_B,
        seq_write_b=num_groups * GROUP_OUT_B,
        notes="one sequential pass folding the six aggregates",
    )
    return [sort_phase, agg_phase]


def _hash_groupby_partition(part: Relation) -> Dict[int, Dict[str, float]]:
    """Functional hash-based grouping of one partition.

    Uses the linear-probing table to assign group slots (exercising the
    same substrate the cost model charges), then vectorized aggregation.
    """
    if len(part) == 0:
        return {}
    unique_keys = np.unique(part.keys)
    table = LinearProbingHashTable(len(unique_keys), costs.HASH_TABLE_LOAD_FACTOR)
    table.insert_batch(unique_keys, np.arange(len(unique_keys), dtype=np.uint64))
    group_ids, found = table.lookup_batch(part.keys)
    if not np.all(found):
        raise AssertionError("hash table lost a group key")
    gid = group_ids.astype(np.int64)
    values = part.payloads.astype(np.float64)
    num = len(unique_keys)
    counts = np.bincount(gid, minlength=num)
    sums = np.bincount(gid, weights=values, minlength=num)
    sumsqs = np.bincount(gid, weights=values * values, minlength=num)
    mins = np.full(num, np.inf)
    maxs = np.full(num, -np.inf)
    np.minimum.at(mins, gid, values)
    np.maximum.at(maxs, gid, values)
    return {
        int(key): {
            "count": float(counts[i]),
            "sum": float(sums[i]),
            "min": float(mins[i]),
            "max": float(maxs[i]),
            "avg": float(sums[i] / counts[i]),
            "sumsq": float(sumsqs[i]),
        }
        for i, key in enumerate(unique_keys)
    }


def _sort_groupby_partition(part: Relation, simd: bool) -> Dict[int, Dict[str, float]]:
    """Functional sort-based grouping of one partition."""
    if len(part) == 0:
        return {}
    sorted_data, _ = mergesort(part.data, bitonic_initial=simd)
    return _aggregate_sorted(sorted_data["key"], sorted_data["payload"])


def _groups_dict(
    group_keys: np.ndarray,
    aggregates,
) -> Dict[int, Dict[str, float]]:
    """Assemble the per-group output dict, detecting misrouted keys.

    Insertion order matches the per-partition reference (partition by
    partition, keys ascending within each); a key surfacing in two
    partitions means the shuffle misrouted tuples, exactly the
    per-partition overlap check.
    """
    counts, sums, mins, maxs, avgs, sumsqs = aggregates
    uniq, dup_counts = np.unique(group_keys, return_counts=True)
    if len(uniq) != len(group_keys):
        overlap = set(uniq[dup_counts > 1].tolist())
        raise AssertionError(f"group keys split across partitions: {overlap}")
    return {
        key: {
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
            "avg": avg,
            "sumsq": sumsq,
        }
        for key, count, total, mn, mx, avg, sumsq in zip(
            group_keys.tolist(),
            counts.tolist(),
            sums.tolist(),
            mins.tolist(),
            maxs.tolist(),
            avgs.tolist(),
            sumsqs.tolist(),
        )
    }


def _sort_groupby_segmented(
    columns: SegmentedColumns, simd: bool
) -> Dict[int, Dict[str, float]]:
    """All partitions' sort-based grouping as whole-relation kernels.

    Byte-identical to mergesorting and sequentially folding each
    partition: the segmented mergesort reproduces the per-partition
    sort, and :func:`~repro.columnar.sorted_group_aggregates` reproduces
    the per-group float arithmetic bit-for-bit.
    """
    keys, payloads = segmented_mergesort(
        columns.keys, columns.payloads, columns.segments, bitonic_initial=simd
    )
    starts, lens, _ = segmented_sorted_groups(keys, columns.segments)
    values = payloads.astype(np.float64)
    aggregates = sorted_group_aggregates(values, starts, lens)
    return _groups_dict(keys[starts], aggregates)


def _hash_groupby_segmented(columns: SegmentedColumns) -> Dict[int, Dict[str, float]]:
    """All partitions' hash-based grouping as whole-relation kernels.

    The reference assigns each partition's tuples group ids via the
    linear-probing table over its unique keys (ids are indices into the
    sorted unique-key array) and folds the aggregates with ``bincount``
    / ``minimum.at`` in partition arrival order.  The segmented twin
    computes the same group ids for *all* partitions with one composite
    sort and folds with the same ufuncs over the flat arrays --
    ``bincount`` accumulation is strictly sequential in input order and
    group bins never cross segments, so every float matches.
    """
    order = segmented_stable_argsort(columns.keys, columns.segments)
    sorted_keys = columns.keys[order]
    starts, _, _ = segmented_sorted_groups(sorted_keys, columns.segments)
    num_groups = len(starts)
    gid_sorted = np.zeros(len(sorted_keys), dtype=np.int64)
    if len(sorted_keys):
        new_group = np.zeros(len(sorted_keys), dtype=np.int64)
        new_group[starts] = 1
        gid_sorted = np.cumsum(new_group) - 1
    gid = np.empty(len(sorted_keys), dtype=np.int64)
    gid[order] = gid_sorted
    values = columns.payloads.astype(np.float64)
    counts = np.bincount(gid, minlength=num_groups)
    sums = np.bincount(gid, weights=values, minlength=num_groups)
    sumsqs = np.bincount(gid, weights=values * values, minlength=num_groups)
    mins = np.full(num_groups, np.inf)
    maxs = np.full(num_groups, -np.inf)
    np.minimum.at(mins, gid, values)
    np.maximum.at(maxs, gid, values)
    avgs = sums / counts  # every group has >= 1 member
    aggregates = (counts.astype(np.float64), sums, mins, maxs, avgs, sumsqs)
    return _groups_dict(sorted_keys[starts], aggregates)


def run_groupby(
    workload: GroupByWorkload,
    variant: OperatorVariant,
    model_scale: float = 1.0,
    segmented: bool = True,
) -> OperatorRun:
    """Execute Group by functionally under the given variant and cost it.

    ``segmented=False`` keeps the per-partition reference probe; the
    default folds every partition's groups with the whole-relation
    kernels of :mod:`repro.columnar`.
    """
    partitioned = run_partitioning(
        workload.partitions,
        variant,
        SCHEME_LOW_BITS,
        workload.key_space_bits,
        model_scale=model_scale,
        segmented=segmented,
    )
    if segmented and partitioned.shuffle.columns is not None:
        columns = partitioned.shuffle.columns
        if variant.probe_algorithm == "hash":
            groups = _hash_groupby_segmented(columns)
        else:
            groups = _sort_groupby_segmented(columns, variant.simd)
    else:
        groups = {}
        for part in partitioned.partitions:
            if variant.probe_algorithm == "hash":
                part_groups = _hash_groupby_partition(part)
            else:
                part_groups = _sort_groupby_partition(part, variant.simd)
            overlap = groups.keys() & part_groups.keys()
            if overlap:
                # Low-bit partitioning sends equal keys to one partition,
                # so a key seen twice means the shuffle misrouted tuples.
                raise AssertionError(
                    f"group keys split across partitions: {overlap}"
                )
            groups.update(part_groups)

    n = workload.total_tuples
    num_groups = len(groups)
    model_n = int(round(n * model_scale))
    model_groups = max(1, int(round(num_groups * model_scale)))
    if variant.probe_algorithm == "hash":
        probe_phases = hash_groupby_costs(model_n, model_groups, variant)
    else:
        probe_phases = sort_groupby_costs(
            model_n, model_groups, variant, variant.num_partitions
        )

    metadata = {"tuples": n, "groups": num_groups}
    resilience = combine_stats(partitioned.resilience)
    if resilience is not None:
        metadata["resilience"] = resilience.to_metadata()

    return OperatorRun(
        operator="groupby",
        variant=variant.label,
        phases=partitioned.phases + probe_phases,
        output=GroupByOutput(groups=groups),
        metadata=metadata,
    )
