"""The Scan operator.

The simplest operator: no partitioning phase; every input partition is
scanned in parallel and each tuple's key is compared against the
searched value (paper section 6).  Identical code for the hash- and
sort-based variants (figure 6 shows NMP-rand == NMP-seq on Scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analytics.tuples import TUPLE_B, Relation
from repro.analytics.workload import ScanWorkload
from repro.operators import costs
from repro.operators.base import PHASE_PROBE, OperatorRun, OperatorVariant, PhaseCost


@dataclass(frozen=True)
class ScanOutput:
    """Matches found by the scan."""

    matches: int
    payload_sum: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScanOutput):
            return NotImplemented
        return self.matches == other.matches and self.payload_sum == other.payload_sum


def scan_probe_cost(n: int, variant: OperatorVariant) -> PhaseCost:
    """Streaming compare of every tuple against the search key."""
    instructions = n * costs.SCAN_CMP
    # SIMD executes the whole compare loop wide: load + compare element ops.
    simd_ops = instructions if variant.simd else 0.0
    return PhaseCost(
        name="scan",
        category=PHASE_PROBE,
        instructions=instructions,
        simd_ops=simd_ops,
        dep_ilp=costs.SCAN_DEP_ILP,
        mem_parallelism=8.0,
        simd_vectorizable=variant.simd,
        seq_read_b=n * TUPLE_B,
        notes="compare every key against the searched value",
    )


def run_scan(
    workload: ScanWorkload,
    variant: OperatorVariant,
    model_scale: float = 1.0,
    segmented: bool = True,
) -> OperatorRun:
    """Functionally execute Scan and produce its cost records.

    ``segmented=False`` keeps the per-partition loop; the default scans
    the workload's zero-copy flat view in one pass.  The reference
    accumulates each partition's *wrapped* (mod 2**64) payload sum into
    an unbounded Python int, so the segmented path folds per-segment
    ``reduceat`` sums the same way rather than summing globally.
    """
    if model_scale <= 0:
        raise ValueError("model_scale must be positive")
    key = np.uint64(workload.search_key)
    if segmented:
        columns = workload.flat
        hit = columns.keys == key
        matches = int(np.count_nonzero(hit))
        masked = np.where(hit, columns.payloads, np.uint64(0))
        starts = columns.segments[:-1][columns.segment_lengths() > 0]
        seg_sums = (
            np.add.reduceat(masked, starts) if len(starts) else np.empty(0, np.uint64)
        )
        payload_sum = sum(seg_sums.tolist())
    else:
        matches = 0
        payload_sum = 0
        for part in workload.partitions:
            hit = part.keys == key
            matches += int(np.count_nonzero(hit))
            payload_sum += int(part.payloads[hit].sum(dtype=np.uint64))
    n = workload.total_tuples
    model_n = int(round(n * model_scale))
    return OperatorRun(
        operator="scan",
        variant=variant.label,
        phases=[scan_probe_cost(model_n, variant)],
        output=ScanOutput(matches=matches, payload_sum=payload_sum),
        metadata={"search_key": workload.search_key, "tuples": n},
    )
