"""Vectorized open-addressing (linear-probing) hash table.

The probe phase of the CPU / NMP-rand operators builds and probes hash
tables; this is a real implementation -- collisions resolved by linear
probing -- written with batched numpy rounds so paper-scale partitions
stay tractable in Python.  Probe-distance statistics are exposed because
they feed the random-access counts of the performance model (every probe
step is one random memory access).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analytics.hashing import hash_table_slot

#: Sentinel for an empty slot.  Workload keys are drawn from a bounded
#: key space (default 48 bits), so the all-ones key cannot occur.
EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def _next_pow2(n: int) -> int:
    return 1 if n <= 1 else 1 << (n - 1).bit_length()


class LinearProbingHashTable:
    """Open-addressing table of (key, payload) pairs.

    ``capacity`` is rounded up to a power of two; the default sizing
    targets a 0.5 load factor.  Duplicate keys occupy separate slots
    (insertion order preserved along each probe chain), so lookups return
    the first inserted match -- the semantics a foreign-key join needs.
    """

    def __init__(self, expected_items: int, load_factor: float = 0.5) -> None:
        if expected_items < 0:
            raise ValueError("expected_items must be non-negative")
        if not 0 < load_factor <= 1:
            raise ValueError("load factor must be in (0, 1]")
        capacity = _next_pow2(max(2, int(np.ceil(max(1, expected_items) / load_factor))))
        self._capacity = capacity
        self._mask = np.uint64(capacity - 1)
        self._keys = np.full(capacity, EMPTY_KEY, dtype=np.uint64)
        self._payloads = np.zeros(capacity, dtype=np.uint64)
        self._items = 0
        self.insert_probe_steps = 0
        self.lookup_probe_steps = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def items(self) -> int:
        return self._items

    @property
    def load(self) -> float:
        return self._items / self._capacity

    @property
    def size_b(self) -> int:
        """Memory footprint: 16 B per slot (key + payload)."""
        return self._capacity * 16

    # -- insertion --------------------------------------------------------

    def insert_batch(self, keys: np.ndarray, payloads: np.ndarray) -> None:
        """Insert all pairs, resolving collisions by linear probing.

        Vectorized rounds: each round every still-pending item proposes
        its next probe slot; the first proposer of each empty slot wins,
        losers advance their probe offset.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        payloads = np.asarray(payloads, dtype=np.uint64)
        if keys.shape != payloads.shape:
            raise ValueError("keys and payloads must align")
        if np.any(keys == EMPTY_KEY):
            raise ValueError("key collides with the empty sentinel")
        n = len(keys)
        if self._items + n > self._capacity:
            raise MemoryError(
                f"inserting {n} items into a table with "
                f"{self._capacity - self._items} free slots"
            )
        home = hash_table_slot(keys, self._capacity).astype(np.uint64)
        pending = np.arange(n)
        offsets = np.zeros(n, dtype=np.uint64)
        while len(pending):
            pos = (home[pending] + offsets[pending]) & self._mask
            empty = self._keys[pos] == EMPTY_KEY
            # Among pending items probing an empty slot, the first
            # proposer of each distinct slot places; everyone else retries.
            placed_mask = np.zeros(len(pending), dtype=bool)
            if np.any(empty):
                cand_pos = pos[empty]
                uniq, first_idx = np.unique(cand_pos, return_index=True)
                winners_local = np.flatnonzero(empty)[first_idx]
                winner_items = pending[winners_local]
                winner_pos = pos[winners_local]
                self._keys[winner_pos] = keys[winner_items]
                self._payloads[winner_pos] = payloads[winner_items]
                placed_mask[winners_local] = True
            self.insert_probe_steps += len(pending)
            losers = ~placed_mask
            offsets[pending[losers]] += np.uint64(1)
            pending = pending[losers]
        self._items += n

    # -- lookup ------------------------------------------------------------

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Find the first-inserted payload for each key.

        Returns ``(payloads, found)``.  Missing keys get payload 0 and
        ``found=False``.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = len(keys)
        result = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        home = hash_table_slot(keys, self._capacity).astype(np.uint64)
        active = np.arange(n)
        offsets = np.zeros(n, dtype=np.uint64)
        max_rounds = self._capacity + 1
        rounds = 0
        while len(active):
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("lookup did not terminate (table corrupt?)")
            pos = (home[active] + offsets[active]) & self._mask
            slot_keys = self._keys[pos]
            hit = slot_keys == keys[active]
            miss = slot_keys == EMPTY_KEY
            self.lookup_probe_steps += len(active)
            if np.any(hit):
                result[active[hit]] = self._payloads[pos[hit]]
                found[active[hit]] = True
            unresolved = ~(hit | miss)
            offsets[active[unresolved]] += np.uint64(1)
            active = active[unresolved]
        return result, found

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        _, found = self.lookup_batch(keys)
        return found
