"""Sorting kernels: multi-pass mergesort with an optional SIMD-style
bitonic first pass, and quicksort (the CPU's probe-phase sort).

The Mondrian probe phase runs mergesort because it "spends most of the
time merging ordered streams of tuples, thus maximizing sequential
memory accesses" (paper section 5.2), seeded by a bitonic network that
sorts 16-tuple runs in-register, eliminating the first four merge
passes.  Both kernels here are real algorithms executed on the data
(vectorized across runs), and both report the pass counts the cost model
converts into sequential DRAM traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analytics.tuples import TUPLE_DTYPE

#: Padding key guaranteed to sort last (workload keys are < 2**63).
_PAD_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SortStats:
    """Work accounting of one sort invocation."""

    n: int
    merge_passes: int
    bitonic_steps: int
    initial_run: int

    @property
    def total_passes(self) -> int:
        """Dataset passes: one per merge pass plus one for the initial
        run-formation pass (bitonic or single-element runs are formed
        while streaming the data in)."""
        return self.merge_passes + (1 if self.n else 0)


def merge_pass(data: np.ndarray, run_len: int) -> np.ndarray:
    """One mergesort pass: merge adjacent sorted runs of ``run_len``.

    Vectorized across *all* run pairs at once: the data is padded to a
    whole number of ``2 * run_len`` pairs with :data:`_PAD_KEY` sentinels
    and each pair-row is stably argsorted.  A stable sort of two
    concatenated sorted runs is exactly their stable merge (run-A
    elements precede equal run-B elements, matching the classic
    searchsorted rank trick), and the pads -- which only ever occupy the
    tail of the final pair -- sort to that row's end, so slicing the
    flattened result back to ``len(data)`` drops precisely them.
    :func:`merge_pass_scalar` keeps the per-pair reference loop that the
    equivalence suite pins this path against.
    """
    if run_len < 1:
        raise ValueError("run length must be >= 1")
    n = len(data)
    if n <= run_len:
        return data.copy()
    pair = 2 * run_len
    blocks = math.ceil(n / pair)
    padded = np.empty(blocks * pair, dtype=data.dtype)
    padded[:n] = data
    if blocks * pair > n:
        padded[n:]["key"] = _PAD_KEY
        padded[n:]["payload"] = 0
    order = np.argsort(padded["key"].reshape(blocks, pair), axis=1, kind="stable")
    flat = (order + (np.arange(blocks, dtype=np.int64) * pair)[:, None]).reshape(-1)
    return padded[flat][:n]


def merge_pass_scalar(data: np.ndarray, run_len: int) -> np.ndarray:
    """Reference merge pass: one pair of runs at a time.

    Each pair is merged with the rank trick: element ranks in the merged
    output are ``index_in_own_run + rank_in_other_run`` (searchsorted
    with sides chosen for stability).
    """
    if run_len < 1:
        raise ValueError("run length must be >= 1")
    n = len(data)
    out = np.empty_like(data)
    pos = 0
    while pos < n:
        a = data[pos : pos + run_len]
        b = data[pos + run_len : pos + 2 * run_len]
        if len(b) == 0:
            out[pos : pos + len(a)] = a
        else:
            a_keys, b_keys = a["key"], b["key"]
            a_rank = np.arange(len(a)) + np.searchsorted(b_keys, a_keys, side="left")
            b_rank = np.arange(len(b)) + np.searchsorted(a_keys, b_keys, side="right")
            merged = np.empty(len(a) + len(b), dtype=data.dtype)
            merged[a_rank] = a
            merged[b_rank] = b
            out[pos : pos + len(merged)] = merged
        pos += 2 * run_len
    return out


def bitonic_sort_runs(data: np.ndarray, run: int = 16) -> Tuple[np.ndarray, int]:
    """Sort each ``run``-tuple block with a bitonic compare-exchange
    network (the SIMD kernel of paper section 5.2).

    Returns ``(data_with_sorted_runs, compare_exchange_steps)`` where the
    step count is per-element network stages, i.e. the number of
    compare-exchange operations each SIMD lane performs.
    """
    if run < 2 or run & (run - 1):
        raise ValueError("run must be a power of two >= 2")
    n = len(data)
    if n == 0:
        return data.copy(), 0
    blocks = math.ceil(n / run)
    padded = np.empty(blocks * run, dtype=data.dtype)
    padded[:n] = data
    if blocks * run > n:
        padded[n:]["key"] = _PAD_KEY
        padded[n:]["payload"] = 0
    grid = padded.reshape(blocks, run)
    keys = grid["key"].copy()
    vals = grid["payload"].copy()

    steps = 0
    k = 2
    while k <= run:
        j = k // 2
        while j >= 1:
            idx = np.arange(run)
            partner = idx ^ j
            upper = partner > idx
            i_lo = idx[upper]
            i_hi = partner[upper]
            ascending = (idx[upper] & k) == 0
            lo_keys, hi_keys = keys[:, i_lo], keys[:, i_hi]
            # swap where order violates the direction of this subsequence
            wrong = np.where(ascending, lo_keys > hi_keys, lo_keys < hi_keys)
            lo_k = np.where(wrong, hi_keys, lo_keys)
            hi_k = np.where(wrong, lo_keys, hi_keys)
            lo_v = np.where(wrong, vals[:, i_hi], vals[:, i_lo])
            hi_v = np.where(wrong, vals[:, i_lo], vals[:, i_hi])
            keys[:, i_lo], keys[:, i_hi] = lo_k, hi_k
            vals[:, i_lo], vals[:, i_hi] = lo_v, hi_v
            steps += 1
            j //= 2
        k *= 2

    result = np.empty(blocks * run, dtype=data.dtype)
    result["key"] = keys.reshape(-1)
    result["payload"] = vals.reshape(-1)
    return result[:n].copy(), steps


def mergesort(
    data: np.ndarray, bitonic_initial: bool = False, bitonic_run: int = 16
) -> Tuple[np.ndarray, SortStats]:
    """Full mergesort; optionally seed with the bitonic run pass.

    Sorting is by key and stable within the merge passes (the bitonic
    network is not stable -- neither is hardware SIMD sorting; tests
    therefore compare key order plus payload multisets).
    """
    if data.dtype != TUPLE_DTYPE:
        raise TypeError(f"expected tuple dtype, got {data.dtype}")
    n = len(data)
    if n <= 1:
        return data.copy(), SortStats(n=n, merge_passes=0, bitonic_steps=0, initial_run=n)

    bitonic_steps = 0
    if bitonic_initial:
        work, bitonic_steps = bitonic_sort_runs(data, bitonic_run)
        run = bitonic_run
    else:
        work = data.copy()
        run = 1

    merge_passes = 0
    while run < n:
        work = merge_pass(work, run)
        run *= 2
        merge_passes += 1
    return work, SortStats(
        n=n,
        merge_passes=merge_passes,
        bitonic_steps=bitonic_steps,
        initial_run=bitonic_run if bitonic_initial else 1,
    )


def quicksort(data: np.ndarray) -> Tuple[np.ndarray, SortStats]:
    """The CPU probe phase's local sort.

    Functionally an introsort (numpy argsort); the cost model charges
    ``QUICKSORT_STEP * n * log2(n)`` instructions for it, matching the
    expected partition-pass structure.
    """
    if data.dtype != TUPLE_DTYPE:
        raise TypeError(f"expected tuple dtype, got {data.dtype}")
    n = len(data)
    order = np.argsort(data["key"], kind="stable")
    passes = max(1, math.ceil(math.log2(n))) if n > 1 else 0
    return data[order], SortStats(n=n, merge_passes=passes, bitonic_steps=0, initial_run=1)


def merge_passes_needed(n: int, initial_run: int = 1, way: int = 2) -> int:
    """Number of dataset passes a ``way``-way mergesort performs on ``n``
    elements starting from sorted runs of ``initial_run``.

    Each pass multiplies the run length by the merge fan-in: scalar
    machines merge pairwise (way=2); the Mondrian unit's stream buffers
    feed a 4-to-1 SIMD merge tree (way=4), which is how the wide unit
    "absorbs the log n complexity bump" (paper section 7.1).
    """
    if n <= 1:
        return 0
    if initial_run < 1:
        raise ValueError("initial run must be >= 1")
    if way < 2:
        raise ValueError("merge fan-in must be >= 2")
    passes = 0
    run = initial_run
    while run < n:
        run *= way
        passes += 1
    return passes
