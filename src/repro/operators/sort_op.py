"""The Sort operator.

Partitioning hashes keys by their **high-order** bits (Table 2), so the
resulting partitions hold strictly disjoint key ranges; sorting each
partition locally then yields a globally sorted relation.  The probe
phase sorts within each partition: quicksort on the CPU, mergesort on
the NMP machines (section 6) -- seeded by the SIMD bitonic pass on
Mondrian.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.analytics.tuples import TUPLE_B, Relation
from repro.analytics.workload import SortWorkload
from repro.columnar import SegmentedColumns, segmented_mergesort, segmented_stable_argsort
from repro.faults.protocol import combine_stats
from repro.operators import costs
from repro.operators.base import PHASE_PROBE, OperatorRun, OperatorVariant, PhaseCost
from repro.operators.partition import SCHEME_HIGH_BITS, run_partitioning
from repro.operators.sort_algos import merge_passes_needed, mergesort, quicksort


def quicksort_probe_cost(n: int, num_partitions: int) -> PhaseCost:
    """In-place quicksort of each partition (CPU probe).

    Quicksort's partition passes are mostly cache-resident once
    subproblems fit; we charge two full streaming passes of DRAM traffic
    plus the n log n instruction cost.
    """
    per_part = max(2, n // num_partitions)
    log_n = max(1.0, math.log2(per_part))
    return PhaseCost(
        name="quicksort",
        category=PHASE_PROBE,
        instructions=n * costs.QUICKSORT_STEP * log_n,
        dep_ilp=costs.QUICKSORT_DEP_ILP,
        mem_parallelism=4.0,
        seq_read_b=n * TUPLE_B * 2,
        seq_write_b=n * TUPLE_B * 2,
        notes=f"local quicksort, ~log2({per_part}) = {log_n:.1f} levels",
    )


def mergesort_probe_cost(
    n: int, num_partitions: int, variant: OperatorVariant
) -> PhaseCost:
    """Multi-pass mergesort of each partition (NMP / Mondrian probe)."""
    initial_run = costs.BITONIC_RUN_TUPLES if variant.simd else 1
    way = costs.MERGE_WAY_SIMD if variant.simd else costs.MERGE_WAY_SCALAR
    per_part = max(1, n // num_partitions)
    passes = merge_passes_needed(per_part, initial_run, way)
    instructions = n * costs.MERGE_STEP * passes
    if variant.simd:
        k = costs.BITONIC_RUN_TUPLES.bit_length() - 1
        instructions += n * costs.BITONIC_STEP * (k * (k + 1) // 2)
    return PhaseCost(
        name="mergesort",
        category=PHASE_PROBE,
        instructions=instructions,
        simd_ops=instructions if variant.simd else 0.0,
        dep_ilp=costs.MERGE_DEP_ILP,
        mem_parallelism=8.0,
        simd_vectorizable=variant.simd,
        seq_read_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
        seq_write_b=n * TUPLE_B * (passes + (1 if variant.simd else 0)),
        notes=f"{passes} merge passes from runs of {initial_run}",
    )


def _local_sort_segmented(
    columns: SegmentedColumns, variant: OperatorVariant, names: List[str]
) -> Relation:
    """Sort every partition locally as one whole-relation kernel.

    Byte-identical to sorting each partition with
    :func:`~repro.operators.sort_algos.quicksort` /
    :func:`~repro.operators.sort_algos.mergesort` and concatenating:
    the local sorts keep rows inside their segment, so the segmented
    stable sort produces exactly the concatenation of the per-partition
    results.  The output tuple array is allocated once and written
    field-wise.
    """
    if variant.local_sort == "quicksort":
        order = segmented_stable_argsort(columns.keys, columns.segments)
        keys, payloads = columns.keys[order], columns.payloads[order]
    else:
        keys, payloads = segmented_mergesort(
            columns.keys,
            columns.payloads,
            columns.segments,
            bitonic_initial=variant.simd,
        )
    sorted_columns = SegmentedColumns(
        keys=keys, payloads=payloads, segments=columns.segments
    )
    # The reference path names the single-partition result after that
    # partition (no concat happens) and "sorted" otherwise.
    name = "sorted" if columns.num_segments > 1 else names[0]
    return Relation(sorted_columns.to_struct(), name)


def run_sort(
    workload: SortWorkload,
    variant: OperatorVariant,
    model_scale: float = 1.0,
    segmented: bool = True,
) -> OperatorRun:
    """Execute Sort functionally under the given variant and cost it.

    ``segmented=False`` keeps the per-partition reference path (scalar
    shuffle materialization + one local sort per partition); the default
    runs the whole-relation kernels of :mod:`repro.columnar`.
    """
    partitioned = run_partitioning(
        workload.partitions,
        variant,
        SCHEME_HIGH_BITS,
        workload.key_space_bits,
        model_scale=model_scale,
        segmented=segmented,
    )
    if segmented and partitioned.shuffle.columns is not None:
        output = _local_sort_segmented(
            partitioned.shuffle.columns,
            variant,
            [part.name for part in partitioned.partitions],
        )
    else:
        sorted_parts: List[Relation] = []
        for part in partitioned.partitions:
            if len(part) == 0:
                sorted_parts.append(part)
                continue
            if variant.local_sort == "quicksort":
                data, _ = quicksort(part.data)
            else:
                data, _ = mergesort(part.data, bitonic_initial=variant.simd)
            sorted_parts.append(Relation(data, part.name))

        # Range partitioning makes concatenation globally sorted -- but
        # only when radix buckets do not alias distinct key ranges onto
        # one partition (radix_bits must not exceed log2(num_partitions)
        # for the high-bit scheme).  The workload keys are uniform, so
        # each partition holds one contiguous key range.
        output = sorted_parts[0]
        for part in sorted_parts[1:]:
            output = output.concat(part, "sorted")

    n = workload.total_tuples
    model_n = int(round(n * model_scale))
    if variant.local_sort == "quicksort":
        probe = quicksort_probe_cost(model_n, variant.num_partitions)
    else:
        probe = mergesort_probe_cost(model_n, variant.num_partitions, variant)

    metadata = {"tuples": n}
    resilience = combine_stats(partitioned.resilience)
    if resilience is not None:
        metadata["resilience"] = resilience.to_metadata()

    return OperatorRun(
        operator="sort",
        variant=variant.label,
        phases=partitioned.phases + [probe],
        output=output,
        metadata=metadata,
    )
