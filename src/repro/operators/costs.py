"""Per-tuple instruction-cost constants for the operator inner loops.

These are the calibration constants of the reproduction's performance
model, playing the role of the instruction counts the paper measures
with functional simulation (section 6, "Performance model").  Each
constant counts the dynamic scalar ARM-like instructions of one inner-
loop iteration; they were set from the loop structure of the reference
radix-join code the paper builds on [Balkesen et al.] and sanity-checked
against the per-phase IPC/bandwidth figures the paper reports
(section 7.1).  Tests pin them so accidental drift is caught.
"""

# -- shared --------------------------------------------------------------

#: Load one 16 B tuple (two 8 B loads or one paired load + addressing).
TUPLE_LOAD = 2
#: Store one 16 B tuple.
TUPLE_STORE = 2
#: Hash a key to a bucket (mask/shift/multiply).
HASH_KEY = 3

# -- partitioning phase ----------------------------------------------------

#: Histogram update: load counter, increment, store (serial dependence
#: through memory on same-bucket collisions).
HIST_UPDATE = 3
#: Per-bucket prefix-sum step (runs over buckets, not tuples).
PREFIX_STEP = 3
#: Addressed data distribution: compute the exact destination address
#: from the per-(source,destination) cursor and bump it (a load-add-store
#: chain per tuple, the dependency bottleneck permutability removes).
ADDR_CALC = 8
#: Permutable data distribution: stream the tuple into the object buffer;
#: no address computation, no cursor chain.
PERM_STORE = 1

#: ILP exposed by the histogram/addressed-distribution loops (heavy
#: serial dependences through cursors; matches the ~0.98 IPC the paper
#: reports for the NMP partition loop on a 3-wide core).
PARTITION_DEP_ILP = 1.05
#: ILP of the permutable distribution loop (no cursor chains left).
PERM_DEP_ILP = 2.2

# -- scan ------------------------------------------------------------------

#: Compare a tuple's key against the searched value + loop overhead.
SCAN_CMP = 4
#: Scan loop ILP on scalar machines (branchy compare loop; calibrated to
#: the paper's 2.5 GB/s per NMP vault and 4.3 GB/s per CPU core).
SCAN_DEP_ILP = 1.1

# -- hash-based probe (CPU / NMP-rand) --------------------------------------

#: Insert one R tuple into the probe hash table (hash, slot load/claim,
#: store key+payload).
HT_BUILD = 8
#: Probe one S tuple: hash, fetch index range, compare keys in range,
#: emit the join result.
HT_PROBE = 12
#: Dependent random accesses per hash-table lookup: the index-range head
#: plus the range walk (bucket header, range entries, match).
PROBE_ACCESSES_PER_LOOKUP = 3.0
#: Aggregate-update one tuple into its group slot (six aggregate
#: functions: avg, count, min, max, sum, sum squared).
AGG_UPDATE = 14
#: Random accesses per Group-by aggregate update (read slot, write slot).
AGG_ACCESSES_PER_TUPLE = 2.0
#: Effective memory-level parallelism of hash-probe loops.  Bucket walks
#: are dependent chains, so the exploitable MLP is far below the OoO
#: window; 2.25 reproduces the paper's NMP-rand IPC of 0.24
#: (12 instructions over ~50 cycles per probe at 3 accesses x 37.6 ns).
PROBE_MEM_PARALLELISM = 2.25
#: ILP of hash-probe loops (issue side; the loops are memory bound).
PROBE_DEP_ILP = 2.0

# -- sort-based probe (NMP-seq / Mondrian) ----------------------------------

#: One merge step: compare stream heads, select, advance, store.
MERGE_STEP = 6
#: ILP of the scalar merge loop (serial through the comparison result;
#: matches the paper's NMP-seq IPC 0.95 on a 3-wide core).
MERGE_DEP_ILP = 1.3
#: Compare-exchange of the bitonic network (SIMD min/max + shuffle).
BITONIC_STEP = 3
#: The initial SIMD bitonic pass sorts runs of 16 tuples, replacing the
#: first four merge passes (paper section 5.2: "reduces the required
#: number of passes on the dataset by four").
BITONIC_RUN_TUPLES = 16
#: Merge fan-in per dataset pass.  The Mondrian unit's eight stream
#: buffers hold eight input streams at once, feeding an 8-to-1 SIMD
#: merge tree per pass (paper section 5.2's 8-streams-to-4 kernel is one
#: level of that tree; the remaining levels merge in-register before the
#: result is written out), so each dataset pass multiplies the run
#: length by 8.  Scalar machines merge pairwise.
MERGE_WAY_SIMD = 8
MERGE_WAY_SCALAR = 2
#: Final merge-join / merge-groupby pass per tuple.
MERGE_JOIN_STEP = 6
#: Sequential aggregation pass per tuple (sort-based Group by).
SEQ_AGG = 10

# -- quicksort (CPU sort probe) ---------------------------------------------

#: Per-element cost of one quicksort partition pass (compare + swap /2 +
#: loop overhead).
QUICKSORT_STEP = 9
QUICKSORT_DEP_ILP = 1.6

# -- hash tables -------------------------------------------------------------

#: Load factor the probe-phase hash tables are sized for.
HASH_TABLE_LOAD_FACTOR = 0.5
#: Bytes of one hash-table slot (key + payload).
HASH_SLOT_B = 16
#: Bytes of one group-by aggregation slot (key + 6 running aggregates).
GROUP_SLOT_B = 64
