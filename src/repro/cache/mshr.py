"""Miss-status holding registers.

MSHRs bound the number of distinct outstanding cache-block misses a core
can sustain -- the hardware half of the memory-level-parallelism limit
the paper's section 3.2 analysis turns on.  Same-block secondary misses
merge into the existing entry.
"""

from __future__ import annotations

from typing import Dict, Set


class MshrFile:
    """Tracks outstanding misses at block granularity."""

    def __init__(self, num_entries: int, block_b: int = 64) -> None:
        if num_entries <= 0 or block_b <= 0:
            raise ValueError("MSHR geometry must be positive")
        self._entries: Dict[int, int] = {}  # block -> merged request count
        self._capacity = num_entries
        self._block_b = block_b
        self.allocations = 0
        self.merges = 0
        self.stalls = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self._capacity

    def _block(self, addr: int) -> int:
        return addr // self._block_b

    def allocate(self, addr: int) -> bool:
        """Register a miss.  Returns False (and counts a stall) when no
        entry is free and the block is not already tracked."""
        block = self._block(addr)
        if block in self._entries:
            self._entries[block] += 1
            self.merges += 1
            return True
        if self.full:
            self.stalls += 1
            return False
        self._entries[block] = 1
        self.allocations += 1
        return True

    def complete(self, addr: int) -> int:
        """Retire the miss for a block; returns merged request count."""
        block = self._block(addr)
        try:
            return self._entries.pop(block)
        except KeyError:
            raise KeyError(f"no outstanding miss for block {block:#x}") from None

    def outstanding_blocks(self) -> Set[int]:
        return set(self._entries)
