"""Next-line prefetcher (Table 3: both baselines, depth 3).

On every demand access the prefetcher issues fills for up to ``depth``
subsequent cache blocks.  Useful for sequential code; on random-access
phases the prefetched blocks are rarely touched and may pollute the cache
(the paper cites exactly this effect in section 3.2).
"""

from __future__ import annotations

from typing import List


class NextLinePrefetcher:
    """Stateless next-N-lines prefetch address generator."""

    def __init__(self, depth: int = 3, block_b: int = 64) -> None:
        if depth < 0 or block_b <= 0:
            raise ValueError("bad prefetcher configuration")
        self._depth = depth
        self._block_b = block_b
        self.issued = 0

    @property
    def depth(self) -> int:
        return self._depth

    def prefetch_addrs(self, addr: int, limit: int = None) -> List[int]:
        """Addresses to prefetch after a demand access to ``addr``.

        ``limit`` caps the generated addresses below an address-space
        bound when provided.
        """
        base_block = addr // self._block_b
        addrs = []
        for i in range(1, self._depth + 1):
            candidate = (base_block + i) * self._block_b
            if limit is not None and candidate >= limit:
                break
            addrs.append(candidate)
        self.issued += len(addrs)
        return addrs
