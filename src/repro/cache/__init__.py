"""Cache hierarchy substrate for the CPU-centric baseline.

The CPU baseline (Table 3) has per-core 32 KB L1d caches with 32 MSHRs
and a shared 4 MB non-inclusive NUCA LLC; both baselines (CPU and NMP)
add a next-line prefetcher of depth 3.  The functional models here serve
two purposes: they provide miss-rate measurements for the performance
model on scaled-down traces, and they count LLC accesses for the Table 4
energy accounting.
"""

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import AccessResult, CacheHierarchy
from repro.cache.mshr import MshrFile
from repro.cache.prefetch import NextLinePrefetcher

__all__ = [
    "AccessResult",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "MshrFile",
    "NextLinePrefetcher",
]
