"""Two-level cache hierarchy (L1 + shared LLC) with next-line prefetch.

Drives demand accesses through L1 then LLC, steering prefetches into L1,
and classifies each access by where it was satisfied.  The LLC access
count feeds the Table 4 LLC energy term; the memory-level miss count is
what reaches DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.prefetch import NextLinePrefetcher


class AccessResult(Enum):
    """Where a demand access was satisfied."""

    L1 = "l1"
    LLC = "llc"
    MEMORY = "memory"


@dataclass
class HierarchyStats:
    l1_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0
    llc_accesses: int = 0  # for energy accounting (demand + fills)

    @property
    def total(self) -> int:
        return self.l1_hits + self.llc_hits + self.memory_accesses


class CacheHierarchy:
    """One core's L1 backed by a (share of the) LLC."""

    def __init__(
        self,
        l1_size_b: int = 32 * 1024,
        l1_assoc: int = 2,
        llc_size_b: int = 4 * 1024 * 1024,
        llc_assoc: int = 16,
        block_b: int = 64,
        prefetch_depth: int = 3,
        address_limit: Optional[int] = None,
    ) -> None:
        self.l1 = Cache(l1_size_b, l1_assoc, block_b, name="l1d")
        self.llc = Cache(llc_size_b, llc_assoc, block_b, name="llc") if llc_size_b else None
        self.prefetcher = NextLinePrefetcher(prefetch_depth, block_b) if prefetch_depth else None
        self._block_b = block_b
        self._address_limit = address_limit
        self.stats = HierarchyStats()

    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """One demand access through the hierarchy."""
        result = self._demand(addr, is_write)
        if self.prefetcher is not None:
            for pf_addr in self.prefetcher.prefetch_addrs(addr, self._address_limit):
                if not self.l1.probe(pf_addr):
                    self.l1.fill_prefetch(pf_addr)
                    if self.llc is not None:
                        self.stats.llc_accesses += 1  # prefetch fill reads LLC/memory
        return result

    def _demand(self, addr: int, is_write: bool) -> AccessResult:
        if self.l1.access(addr, is_write):
            self.stats.l1_hits += 1
            return AccessResult.L1
        if self.llc is not None:
            self.stats.llc_accesses += 1
            if self.llc.access(addr, is_write):
                self.stats.llc_hits += 1
                return AccessResult.LLC
        self.stats.memory_accesses += 1
        return AccessResult.MEMORY

    def miss_rate_to_memory(self) -> Optional[float]:
        total = self.stats.total
        return self.stats.memory_accesses / total if total else None
