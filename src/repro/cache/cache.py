"""Set-associative cache with true-LRU replacement.

A plain, dependable model: no timing, just hit/miss classification and
dirty-line writeback tracking, driven by block-aligned addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.accesses if self.accesses else None

    @property
    def miss_rate(self) -> Optional[float]:
        return self.misses / self.accesses if self.accesses else None


class Cache:
    """One cache level.  ``access`` returns True on hit."""

    def __init__(self, size_b: int, assoc: int, block_b: int = 64, name: str = "cache") -> None:
        if size_b <= 0 or assoc <= 0 or block_b <= 0:
            raise ValueError("cache geometry must be positive")
        if size_b % (assoc * block_b):
            raise ValueError("size must be a whole number of sets")
        self.name = name
        self._block_b = block_b
        self._assoc = assoc
        self._num_sets = size_b // (assoc * block_b)
        # set index -> OrderedDict[tag] = (dirty, was_prefetch); LRU at front.
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    @property
    def block_b(self) -> int:
        return self._block_b

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def assoc(self) -> int:
        return self._assoc

    def _index_tag(self, addr: int) -> tuple:
        block = addr // self._block_b
        return block % self._num_sets, block // self._num_sets

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup (no LRU update, no stats)."""
        index, tag = self._index_tag(addr)
        return tag in self._sets.get(index, ())

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Demand access; fills on miss.  Returns True on hit."""
        index, tag = self._index_tag(addr)
        cache_set = self._sets.setdefault(index, OrderedDict())
        if tag in cache_set:
            dirty, was_prefetch = cache_set.pop(tag)
            if was_prefetch:
                self.stats.prefetch_hits += 1
            cache_set[tag] = (dirty or is_write, False)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._fill(cache_set, tag, dirty=is_write, was_prefetch=False)
        return False

    def fill_prefetch(self, addr: int) -> bool:
        """Install a prefetched block; returns False if already present."""
        index, tag = self._index_tag(addr)
        cache_set = self._sets.setdefault(index, OrderedDict())
        if tag in cache_set:
            return False
        self._fill(cache_set, tag, dirty=False, was_prefetch=True)
        self.stats.prefetch_fills += 1
        return True

    def _fill(self, cache_set: OrderedDict, tag: int, dirty: bool, was_prefetch: bool) -> None:
        if len(cache_set) >= self._assoc:
            _, (victim_dirty, _) = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        cache_set[tag] = (dirty, was_prefetch)

    def invalidate_all(self) -> None:
        self._sets.clear()
