"""Interconnect parameters (paper Table 3, "Common").

- On-chip NOC: 2D mesh, 16 B links, 3 cycles/hop.
- Inter-HMC network: SerDes links at 10 GHz, 160 Gb/s per direction;
  fully connected between the four stacks for the NMP systems, a star
  centered on the CPU for the CPU-centric system.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectConfig:
    """Mesh-NoC and SerDes-link parameters."""

    noc_link_b: int = 16
    noc_cycles_per_hop: int = 3
    noc_frequency_hz: float = 1.0e9
    noc_hop_distance_mm: float = 1.0
    serdes_bw_gbps_per_dir: float = 160.0
    serdes_frequency_hz: float = 10.0e9

    def __post_init__(self) -> None:
        if self.noc_link_b <= 0 or self.noc_cycles_per_hop <= 0:
            raise ValueError("NoC parameters must be positive")
        if self.serdes_bw_gbps_per_dir <= 0:
            raise ValueError("SerDes bandwidth must be positive")

    @property
    def noc_link_bw_bps(self) -> float:
        """Peak bytes/second of one mesh link."""
        return self.noc_link_b * self.noc_frequency_hz

    @property
    def serdes_bw_bps_per_dir(self) -> float:
        """Peak bytes/second of one SerDes link direction."""
        return self.serdes_bw_gbps_per_dir * 1e9 / 8

    def noc_hop_latency_ns(self) -> float:
        return self.noc_cycles_per_hop / self.noc_frequency_hz * 1e9

    def noc_serialization_ns(self, message_b: int) -> float:
        """Time to push a message through one 16 B-wide link."""
        if message_b < 0:
            raise ValueError("message size must be non-negative")
        flits = (message_b + self.noc_link_b - 1) // self.noc_link_b
        return flits / self.noc_frequency_hz * 1e9


def default_interconnect_config() -> InterconnectConfig:
    return InterconnectConfig()
