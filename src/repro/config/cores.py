"""Compute-unit configurations for the three machine classes (Table 3).

- CPU baseline: 16x ARM Cortex-A57 -- 64-bit, 2 GHz, out-of-order,
  3-wide dispatch/retire, 128-entry ROB, 32 KB L1d with 32 MSHRs.
- NMP baseline: 64x Qualcomm Krait400-like -- 1 GHz, out-of-order,
  3-wide, 48-entry ROB (the best OoO core fitting the per-vault power cap).
- Mondrian: 64x ARM Cortex-A35 -- 1 GHz, in-order, dual-issue, with a
  1024-bit fixed-point SIMD unit and stream buffers.

Power figures come from Table 4 (peak core power; energy accounting
scales by utilization).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of one compute unit used by the analytic core models.

    ``simd_width_bits == 0`` means the core has no SIMD unit usable by the
    operators (scalar execution).  ``mem_inst_window`` is the number of
    in-flight memory accesses the core can sustain: for OoO cores this is
    derived from the ROB and MSHRs (see paper section 3.2's Cortex-A57
    estimate of ~20); for the Mondrian core it reflects the eight stream
    buffers.
    """

    name: str
    frequency_hz: float
    issue_width: int
    out_of_order: bool
    rob_entries: int
    mshrs: int
    simd_width_bits: int
    peak_power_w: float
    has_stream_buffers: bool = False
    num_stream_buffers: int = 0
    stream_buffer_b: int = 0
    l1d_b: int = 32 * 1024
    cache_block_b: int = 64
    next_line_prefetch_depth: int = 0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.out_of_order and self.rob_entries < 1:
            raise ValueError("OoO core needs ROB entries")
        if self.peak_power_w <= 0:
            raise ValueError("peak power must be positive")

    @property
    def cycle_time_ns(self) -> float:
        return 1e9 / self.frequency_hz

    @property
    def simd_lanes_64b(self) -> int:
        """Number of 64-bit lanes the SIMD unit processes per instruction."""
        return max(1, self.simd_width_bits // 64)

    def max_outstanding_mem(self, instructions_per_mem: float = 6.0) -> float:
        """Upper bound on memory-level parallelism (paper section 3.2).

        For an OoO core the instruction window limits how many memory
        instructions can be simultaneously in flight: with one memory
        access every ``instructions_per_mem`` instructions, a ROB of R
        entries holds about ``R / instructions_per_mem`` memory
        instructions, further capped by the MSHR count.  In-order cores
        without stream buffers sustain only their prefetch depth plus one.
        """
        if self.out_of_order:
            window = self.rob_entries / instructions_per_mem
            return float(min(window, self.mshrs))
        if self.has_stream_buffers:
            return float(self.num_stream_buffers)
        return float(1 + self.next_line_prefetch_depth)


def cortex_a57_cpu() -> CoreConfig:
    """CPU-baseline core (Table 3 / Table 4): 2 GHz OoO A57, 2.1 W."""
    return CoreConfig(
        name="cortex-a57",
        frequency_hz=2.0e9,
        issue_width=3,
        out_of_order=True,
        rob_entries=128,
        mshrs=32,
        simd_width_bits=128,
        peak_power_w=2.1,
        l1d_b=32 * 1024,
        cache_block_b=64,
        next_line_prefetch_depth=3,
    )


def krait400_nmp() -> CoreConfig:
    """NMP-baseline core: 1 GHz OoO Krait400-like, 48-entry ROB, 312 mW."""
    return CoreConfig(
        name="krait400",
        frequency_hz=1.0e9,
        issue_width=3,
        out_of_order=True,
        rob_entries=48,
        mshrs=32,
        simd_width_bits=128,
        peak_power_w=0.312,
        l1d_b=32 * 1024,
        cache_block_b=64,
        next_line_prefetch_depth=3,
    )


def cortex_a35_mondrian(simd_width_bits: int = 1024) -> CoreConfig:
    """Mondrian compute unit: 1 GHz in-order dual-issue A35 variant.

    The paper extends the A35's 128-bit NEON to a 1024-bit fixed-point
    SIMD unit at ~2x the SIMD power, for an estimated 180 mW total, and
    pairs it with eight 384 B stream buffers (1.5x the row-buffer size).
    ``simd_width_bits`` is exposed for the SIMD-width ablation.
    """
    return CoreConfig(
        name=f"cortex-a35-simd{simd_width_bits}",
        frequency_hz=1.0e9,
        issue_width=2,
        out_of_order=False,
        rob_entries=0,
        mshrs=8,
        simd_width_bits=simd_width_bits,
        peak_power_w=0.180,
        has_stream_buffers=True,
        num_stream_buffers=8,
        stream_buffer_b=384,
        l1d_b=8 * 1024,
        cache_block_b=64,
        next_line_prefetch_depth=0,
    )
