"""DRAM timing and HMC geometry parameters (paper Table 3, "Common").

The paper models a 32 GB system built from four 8 GB HMC stacks.  Each
modeled stack has 16 vaults of 512 MB (the real HMC has 32 x 256 MB; the
authors halve the vault count "because of simulation limitations" and we
follow them).  Each vault is a vertical slice through 8 DRAM layers; we
model each layer slice as one independently schedulable bank, so a vault
has 8 banks.  HMC rows are 256 B -- far smaller than the multi-KB rows of
planar DDR -- and the access granularity is configurable between 8 B and
256 B.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing parameters in nanoseconds (paper Table 3).

    Attributes mirror the conventional JEDEC names:

    - ``t_ck_ns``: clock period of the DRAM command clock.
    - ``t_ras_ns``: minimum time a row must stay open after activation.
    - ``t_rcd_ns``: activate-to-read/write delay.
    - ``t_cas_ns``: read command to first data (CAS latency).
    - ``t_wr_ns``: write recovery time before precharge.
    - ``t_rp_ns``: precharge time before the next activation.
    """

    t_ck_ns: float = 1.6
    t_ras_ns: float = 22.4
    t_rcd_ns: float = 11.2
    t_cas_ns: float = 11.2
    t_wr_ns: float = 14.4
    t_rp_ns: float = 11.2

    def __post_init__(self) -> None:
        for name in ("t_ck_ns", "t_ras_ns", "t_rcd_ns", "t_cas_ns", "t_wr_ns", "t_rp_ns"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def row_miss_latency_ns(self) -> float:
        """Latency of an access that must precharge and activate first."""
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns

    @property
    def row_hit_latency_ns(self) -> float:
        """Latency of an access that hits the open row buffer."""
        return self.t_cas_ns

    @property
    def row_cycle_ns(self) -> float:
        """Minimum activate-to-activate interval for one bank (tRC)."""
        return self.t_ras_ns + self.t_rp_ns


@dataclass(frozen=True)
class HmcGeometry:
    """Geometry of the modeled HMC-based memory system (paper Table 3).

    ``32GB: 8 layers x 16 vaults x 4 stacks`` with 512 MB vaults, 256 B
    rows, and 8 GB/s peak bandwidth per vault.
    """

    num_stacks: int = 4
    vaults_per_stack: int = 16
    layers: int = 8
    vault_capacity_b: int = 512 * 1024 * 1024
    row_size_b: int = 256
    min_access_b: int = 8
    max_access_b: int = 256
    vault_peak_bw_gbps: float = 8.0

    def __post_init__(self) -> None:
        if self.num_stacks < 1 or self.vaults_per_stack < 1 or self.layers < 1:
            raise ValueError("geometry counts must be >= 1")
        if self.row_size_b <= 0 or self.vault_capacity_b <= 0:
            raise ValueError("sizes must be positive")
        if self.vault_capacity_b % self.row_size_b:
            raise ValueError("vault capacity must be a whole number of rows")
        if self.max_access_b < self.min_access_b:
            raise ValueError("max_access_b must be >= min_access_b")

    @property
    def total_vaults(self) -> int:
        return self.num_stacks * self.vaults_per_stack

    @property
    def total_capacity_b(self) -> int:
        return self.total_vaults * self.vault_capacity_b

    @property
    def banks_per_vault(self) -> int:
        """One bank per DRAM layer slice of the vault."""
        return self.layers

    @property
    def rows_per_vault(self) -> int:
        return self.vault_capacity_b // self.row_size_b

    @property
    def rows_per_bank(self) -> int:
        return self.rows_per_vault // self.banks_per_vault

    @property
    def stack_capacity_b(self) -> int:
        return self.vaults_per_stack * self.vault_capacity_b

    @property
    def vault_peak_bw_bps(self) -> float:
        return self.vault_peak_bw_gbps * 1e9


def default_timing() -> DramTiming:
    """Timing parameters exactly as listed in Table 3."""
    return DramTiming()


def default_hmc_geometry() -> HmcGeometry:
    """The paper's 32 GB, 4-stack, 64-vault organization."""
    return HmcGeometry()
