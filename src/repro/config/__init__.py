"""System configuration: the paper's Table 3 (simulation parameters) and
Table 4 (power/energy of system components), plus presets for every
evaluated system configuration.

All quantities carry explicit units in their field names (``_ns``, ``_b``
for bytes, ``_w`` for watts, ``_j`` for joules, ``_hz``).
"""

from repro.config.cores import (
    CoreConfig,
    cortex_a35_mondrian,
    cortex_a57_cpu,
    krait400_nmp,
)
from repro.config.dram import DramTiming, HmcGeometry, default_hmc_geometry, default_timing
from repro.config.energy import EnergyConfig, default_energy_config
from repro.config.interconnect import InterconnectConfig, default_interconnect_config
from repro.config.system import (
    EVALUATED_PRESETS,
    HEADLINE_PRESETS,
    SYSTEM_PRESETS,
    SystemConfig,
    get_preset,
    preset_names,
)

__all__ = [
    "CoreConfig",
    "DramTiming",
    "EVALUATED_PRESETS",
    "EnergyConfig",
    "HEADLINE_PRESETS",
    "HmcGeometry",
    "InterconnectConfig",
    "SYSTEM_PRESETS",
    "SystemConfig",
    "cortex_a35_mondrian",
    "cortex_a57_cpu",
    "default_energy_config",
    "default_hmc_geometry",
    "default_interconnect_config",
    "default_timing",
    "get_preset",
    "krait400_nmp",
    "preset_names",
]
