"""Power and energy constants of system components (paper Table 4).

Every figure is taken verbatim from Table 4:

=====================  =======================================
Component              Power / energy
=====================  =======================================
CPU core               2.1 W peak
NMP baseline core      312 mW peak
Mondrian core          180 mW peak
LLC                    0.09 nJ/access, 110 mW leakage
NOC                    0.04 pJ/bit/mm, 30 mW leakage
HMC (per 8 GB cube)    980 mW background, 0.65 nJ/activation,
                       2 pJ/bit access
SerDes                 1 pJ/bit idle, 3 pJ/bit busy
=====================  =======================================

Core peak powers live in :mod:`repro.config.cores`; this module holds the
shared memory-system and interconnect constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConfig:
    """Energy/power constants consumed by :mod:`repro.energy`."""

    llc_access_j: float = 0.09e-9
    llc_leakage_w: float = 0.110
    noc_j_per_bit_mm: float = 0.04e-12
    noc_leakage_w: float = 0.030
    hmc_background_w_per_cube: float = 0.980
    dram_activation_j: float = 0.65e-9
    dram_access_j_per_bit: float = 2e-12
    serdes_idle_j_per_bit: float = 1e-12
    serdes_busy_j_per_bit: float = 3e-12

    def __post_init__(self) -> None:
        for name in (
            "llc_access_j",
            "llc_leakage_w",
            "noc_j_per_bit_mm",
            "noc_leakage_w",
            "hmc_background_w_per_cube",
            "dram_activation_j",
            "dram_access_j_per_bit",
            "serdes_idle_j_per_bit",
            "serdes_busy_j_per_bit",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def dram_access_j(self, size_b: int) -> float:
        """Row-buffer transfer energy for ``size_b`` bytes (no activation)."""
        if size_b < 0:
            raise ValueError("size_b must be non-negative")
        return self.dram_access_j_per_bit * size_b * 8

    def activation_j_for_row(self, row_size_b: int) -> float:
        """Activation energy of a ``row_size_b``-byte row.

        Table 4's 0.65 nJ is for the HMC's 256 B row; activation energy
        scales with the number of cells copied into the row buffer, so
        larger-row devices (HBM 2 KB, Wide I/O 2 4 KB) pay
        proportionally more -- which is why the paper calls HMC "a
        conservative example" (section 3.1).
        """
        if row_size_b <= 0:
            raise ValueError("row size must be positive")
        return self.dram_activation_j * row_size_b / 256

    def activation_fraction(self, access_b: int, row_size_b: int = 256) -> float:
        """Fraction of a single access' DRAM energy spent on activation.

        Reproduces the paper's section 3.1 observation: for HMC, the row
        activation is ~14% of the energy when the whole 256 B row is used
        but ~80% when only 8 B are transferred, and the gap widens on
        devices with larger row buffers.
        """
        if access_b <= 0:
            raise ValueError("access_b must be positive")
        activation = self.activation_j_for_row(row_size_b)
        transfer = self.dram_access_j(min(access_b, row_size_b))
        return activation / (activation + transfer)


def default_energy_config() -> EnergyConfig:
    """Constants exactly as listed in Table 4."""
    return EnergyConfig()
