"""Presets for the six evaluated system configurations (paper section 6).

=================  ===========  =============  ==============  ============
Preset             Cores        Partitioning   Probe variant   Topology
=================  ===========  =============  ==============  ============
cpu                16x A57      addressed      hash (random)   star
nmp                64x Krait    addressed      best-of (rand)  full mesh
nmp-rand           64x Krait    addressed      hash (random)   full mesh
nmp-seq            64x Krait    addressed      sort (seq)      full mesh
nmp-perm           64x Krait    permutable     hash (random)   full mesh
mondrian-noperm    64x A35+SIMD addressed      sort (seq)      full mesh
mondrian           64x A35+SIMD permutable     sort (seq)      full mesh
=================  ===========  =============  ==============  ============

The ``nmp`` alias composes the paper's "best NMP baseline"
(NMP-perm partitioning is *not* included: plain NMP partitioning with the
NMP-rand probe), matching how figure 7 combines phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.cores import (
    CoreConfig,
    cortex_a35_mondrian,
    cortex_a57_cpu,
    krait400_nmp,
)
from repro.config.dram import DramTiming, HmcGeometry
from repro.config.energy import EnergyConfig
from repro.config.interconnect import InterconnectConfig
from repro.faults.plan import FaultSpec

#: Partitioning-phase write handling.
PARTITION_ADDRESSED = "addressed"
PARTITION_PERMUTABLE = "permutable"

#: Probe-phase algorithm family.
PROBE_HASH = "hash"
PROBE_SORT = "sort"

#: Inter-stack network topologies.
TOPOLOGY_STAR = "star"
TOPOLOGY_FULL = "fully-connected"

#: Shuffle-network arrival-order models (see ``repro.shuffle.interleave``).
INTERLEAVE_ROUND_ROBIN = "round-robin"
INTERLEAVE_RANDOM = "random"
INTERLEAVE_MODELS = (INTERLEAVE_ROUND_ROBIN, INTERLEAVE_RANDOM)

#: The paper's headline comparison (figure 7's series plus the CPU):
#: the ``nmp`` alias composes NMP partitioning with the NMP-rand probe.
HEADLINE_PRESETS = ("cpu", "nmp", "nmp-perm", "mondrian")

#: Every configuration the evaluation section measures, in evaluation
#: order (``experiments.common.ALL_SYSTEMS`` re-exports this).
EVALUATED_PRESETS = (
    "cpu",
    "nmp-rand",
    "nmp-seq",
    "nmp-perm",
    "mondrian-noperm",
    "mondrian",
)


@dataclass(frozen=True)
class SystemConfig:
    """A complete machine + software configuration for one experiment."""

    name: str
    kind: str  # "cpu" | "nmp" | "mondrian"
    core: CoreConfig
    num_cores: int
    partition_scheme: str
    probe_algorithm: str
    topology: str
    has_cache_hierarchy: bool
    llc_b: int
    geometry: HmcGeometry = field(default_factory=HmcGeometry)
    timing: DramTiming = field(default_factory=DramTiming)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    interleave_model: str = INTERLEAVE_ROUND_ROBIN
    #: Deterministic shuffle fault schedule (``repro.faults``); the
    #: default injects nothing and leaves results byte-identical.
    faults: FaultSpec = field(default_factory=FaultSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, FaultSpec):
            raise ValueError("faults must be a FaultSpec")
        if self.kind not in ("cpu", "nmp", "mondrian"):
            raise ValueError(f"unknown system kind: {self.kind!r}")
        if self.partition_scheme not in (PARTITION_ADDRESSED, PARTITION_PERMUTABLE):
            raise ValueError(f"unknown partition scheme: {self.partition_scheme!r}")
        if self.probe_algorithm not in (PROBE_HASH, PROBE_SORT):
            raise ValueError(f"unknown probe algorithm: {self.probe_algorithm!r}")
        if self.topology not in (TOPOLOGY_STAR, TOPOLOGY_FULL):
            raise ValueError(f"unknown topology: {self.topology!r}")
        if self.interleave_model not in INTERLEAVE_MODELS:
            raise ValueError(f"unknown interleave model: {self.interleave_model!r}")
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.kind == "cpu" and self.partition_scheme == PARTITION_PERMUTABLE:
            # Permutable stores live in the vault memory controllers
            # (section 4.1): a CPU-centric system addresses memory from
            # across the SerDes links and cannot delegate placement.
            raise ValueError(
                "permutable partitioning requires near-memory compute "
                "(kind 'nmp' or 'mondrian'); the CPU-centric system has no "
                "vault-controller write path"
            )

    @property
    def is_near_memory(self) -> bool:
        """True when compute units sit on the HMC logic layer."""
        return self.kind in ("nmp", "mondrian")

    @property
    def uses_permutability(self) -> bool:
        return self.partition_scheme == PARTITION_PERMUTABLE

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)


def _cpu_preset() -> SystemConfig:
    return SystemConfig(
        name="cpu",
        kind="cpu",
        core=cortex_a57_cpu(),
        num_cores=16,
        partition_scheme=PARTITION_ADDRESSED,
        probe_algorithm=PROBE_HASH,
        topology=TOPOLOGY_STAR,
        has_cache_hierarchy=True,
        llc_b=4 * 1024 * 1024,
    )


def _nmp_preset(name: str, partition_scheme: str, probe_algorithm: str) -> SystemConfig:
    return SystemConfig(
        name=name,
        kind="nmp",
        core=krait400_nmp(),
        num_cores=64,
        partition_scheme=partition_scheme,
        probe_algorithm=probe_algorithm,
        topology=TOPOLOGY_FULL,
        has_cache_hierarchy=True,
        llc_b=0,
    )


def _mondrian_preset(name: str, partition_scheme: str) -> SystemConfig:
    return SystemConfig(
        name=name,
        kind="mondrian",
        core=cortex_a35_mondrian(),
        num_cores=64,
        partition_scheme=partition_scheme,
        probe_algorithm=PROBE_SORT,
        topology=TOPOLOGY_FULL,
        has_cache_hierarchy=False,
        llc_b=0,
    )


SYSTEM_PRESETS = {
    "cpu": _cpu_preset(),
    "nmp": _nmp_preset("nmp", PARTITION_ADDRESSED, PROBE_HASH),
    "nmp-rand": _nmp_preset("nmp-rand", PARTITION_ADDRESSED, PROBE_HASH),
    "nmp-seq": _nmp_preset("nmp-seq", PARTITION_ADDRESSED, PROBE_SORT),
    "nmp-perm": _nmp_preset("nmp-perm", PARTITION_PERMUTABLE, PROBE_HASH),
    "mondrian-noperm": _mondrian_preset("mondrian-noperm", PARTITION_ADDRESSED),
    "mondrian": _mondrian_preset("mondrian", PARTITION_PERMUTABLE),
}


def preset_names() -> list:
    """Names of all available system presets, in evaluation order."""
    return list(SYSTEM_PRESETS)


def get_preset(name: str) -> SystemConfig:
    """Look up a system preset by name.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        return SYSTEM_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown system preset {name!r}; valid presets: {', '.join(SYSTEM_PRESETS)}"
        ) from None
