"""repro: a reproduction of *The Mondrian Data Engine* (ISCA 2017).

The package implements, from scratch, every subsystem the paper's
evaluation depends on:

- an HMC-style stacked-DRAM model with per-bank row-buffer state and the
  Table 3 timing parameters (:mod:`repro.dram`);
- vault memory controllers with FR-FCFS scheduling, permutable-write
  support, object buffers and stream buffers (:mod:`repro.memctrl`);
- on-chip mesh and inter-device SerDes interconnects
  (:mod:`repro.interconnect`);
- cache hierarchies for the CPU baseline (:mod:`repro.cache`);
- analytic core models for out-of-order and in-order-SIMD compute units
  (:mod:`repro.cores`);
- the four basic data operators -- Scan, Sort, Group by, Join -- in both
  the CPU-preferred hash-based form and the NMP-preferred sort-based form
  (:mod:`repro.operators`);
- the partitioning-phase data shuffle with network message interleaving
  (:mod:`repro.shuffle`);
- the Table 4 energy model (:mod:`repro.energy`) and the paper's
  IPC-times-instructions performance model (:mod:`repro.perf`);
- the six evaluated system configurations (:mod:`repro.systems`);
- one experiment driver per table/figure of the paper
  (:mod:`repro.experiments`); and
- the declarative scenario API -- SystemSpec builders, Scenario/Sweep
  grids and tidy ResultSet exports (:mod:`repro.api`); and
- the evaluation service -- content-addressed persistent result store,
  batching scheduler and serving daemon (:mod:`repro.service`).

Quickstart::

    from repro import systems, analytics
    workload = analytics.make_join_workload(n_r=10_000, n_s=40_000, seed=1)
    machine = systems.build_system("mondrian")
    result = machine.run_operator("join", workload)
    print(result.runtime_s, result.energy.total_j)
"""

import importlib

from repro.version import __version__

_SUBMODULES = (
    "analytics",
    "api",
    "cache",
    "config",
    "cores",
    "dram",
    "energy",
    "engine",
    "experiments",
    "interconnect",
    "mem",
    "memctrl",
    "operators",
    "perf",
    "service",
    "shuffle",
    "systems",
)

__all__ = list(_SUBMODULES) + ["__version__"]


def __getattr__(name):
    """Lazily import subpackages on first attribute access (PEP 562)."""
    if name in _SUBMODULES:
        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
