"""Segmented kernels: per-partition algorithms as whole-relation ops.

Each kernel is the batched twin of a per-partition loop in the operator
layer and is **byte-identical** to it:

- :func:`segmented_stable_argsort` -- one composite ``(segment, key)``
  lexsort equals a stable per-segment argsort (numpy's lexsort is
  stable), which in turn equals the multi-pass stable mergesort of
  ``repro.operators.sort_algos`` (a stable merge of stable runs is a
  stable sort).
- :func:`segmented_bitonic_runs` -- every segment's 16-tuple bitonic
  blocks concatenated into one grid; the compare-exchange network is
  data-independent, so one pass over the grid equals the per-segment
  passes.
- :func:`sorted_group_aggregates` -- groups bucketed by exact length and
  reduced as rows of one matrix; numpy reduces each row with the same
  pairwise routine a 1-D ``chunk.sum()`` uses, so the floats match the
  per-group reference bit-for-bit.
- :func:`segmented_searchsorted` -- per-segment binary search via a
  composite ``(segment << key_bits) | key`` code (with a per-segment
  fallback when the composite would not fit in 64 bits).

**The bit-budget rule.**  Kernels that fuse the segment axis into the
key column do it by packing ``(segment, key)`` into one ``uint64``
code, which is only sound when ``segment_bits + key_space_bits <= 64``
*and* every key actually respects the declared bound
(``key < 2**key_space_bits``).  The same rule governs callers that pack
their own multi-column composite keys (the suite subsystem's
``(region, store, day)``-style keys, see
:mod:`repro.suites.families`): the *total* packed width plus the
segment bits must fit 64, and because the sort kernels reserve
``2**64 - 1`` as the padding sentinel, packed keys themselves must stay
below ``2**63``.  Exceeding the budget is never an error -- the kernels
verify both conditions at runtime and degrade to the per-segment
reference loop, byte-identically -- but the fallback loops over
segments in Python, so callers should keep composite keys inside the
budget when they control the layout.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Padding key guaranteed to sort last (workload keys are < 2**63);
#: mirrors ``repro.operators.sort_algos._PAD_KEY``.
_PAD_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def segment_ids(segments: np.ndarray) -> np.ndarray:
    """Per-row segment index for a ``segments`` offset array."""
    segments = np.asarray(segments, dtype=np.int64)
    return np.repeat(
        np.arange(len(segments) - 1, dtype=np.int64), np.diff(segments)
    )


def segmented_stable_argsort(keys: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Stable within-segment argsort by key, as one global permutation.

    Equivalent to running ``np.argsort(kind="stable")`` on every segment
    independently (rows stay inside their segment), executed as a single
    composite lexsort.
    """
    return np.lexsort((keys, segment_ids(segments)))


def segmented_bitonic_runs(
    keys: np.ndarray,
    payloads: np.ndarray,
    segments: np.ndarray,
    run: int = 16,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Bitonic-sort every segment's ``run``-tuple blocks in one pass.

    Byte-identical to calling
    :func:`repro.operators.sort_algos.bitonic_sort_runs` per segment:
    each segment is padded independently to a whole number of blocks
    (pads only ever occupy its final block), all blocks form one
    ``(total_blocks, run)`` grid, and the data-independent network runs
    once.  Returns ``(keys, payloads, compare_exchange_steps)`` with the
    pads stripped.
    """
    if run < 2 or run & (run - 1):
        raise ValueError("run must be a power of two >= 2")
    segments = np.asarray(segments, dtype=np.int64)
    lens = np.diff(segments)
    n = int(segments[-1])
    if n == 0:
        return keys.copy(), payloads.copy(), 0
    pad_lens = -(-lens // run) * run  # ceil to whole blocks, per segment
    pstarts = np.zeros(len(lens), dtype=np.int64)
    np.cumsum(pad_lens[:-1], out=pstarts[1:])
    total_p = int(pad_lens.sum())
    grid_keys = np.full(total_p, _PAD_KEY, dtype=np.uint64)
    grid_vals = np.zeros(total_p, dtype=np.uint64)
    # Real rows land at the head of their segment's padded range.
    dst = np.arange(n, dtype=np.int64) + np.repeat(pstarts - segments[:-1], lens)
    grid_keys[dst] = keys
    grid_vals[dst] = payloads
    gk = grid_keys.reshape(-1, run)
    gv = grid_vals.reshape(-1, run)

    steps = 0
    k = 2
    while k <= run:
        j = k // 2
        while j >= 1:
            idx = np.arange(run)
            partner = idx ^ j
            upper = partner > idx
            i_lo = idx[upper]
            i_hi = partner[upper]
            ascending = (idx[upper] & k) == 0
            lo_keys, hi_keys = gk[:, i_lo], gk[:, i_hi]
            wrong = np.where(ascending, lo_keys > hi_keys, lo_keys < hi_keys)
            lo_k = np.where(wrong, hi_keys, lo_keys)
            hi_k = np.where(wrong, lo_keys, hi_keys)
            lo_v = np.where(wrong, gv[:, i_hi], gv[:, i_lo])
            hi_v = np.where(wrong, gv[:, i_lo], gv[:, i_hi])
            gk[:, i_lo], gk[:, i_hi] = lo_k, hi_k
            gv[:, i_lo], gv[:, i_hi] = lo_v, hi_v
            steps += 1
            j //= 2
        k *= 2

    flat_keys = gk.reshape(-1)
    flat_vals = gv.reshape(-1)
    # Within every block the pads sorted to the tail, and only a
    # segment's final block holds pads, so the real rows again occupy
    # the head of each segment's padded range.
    return flat_keys[dst], flat_vals[dst], steps


def segmented_mergesort(
    keys: np.ndarray,
    payloads: np.ndarray,
    segments: np.ndarray,
    bitonic_initial: bool = False,
    bitonic_run: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort every segment by key, matching the multi-pass mergesort.

    ``repro.operators.sort_algos.mergesort`` is a (bitonic-seeded) run
    formation followed by stable merge passes; a stable merge of stable
    runs is exactly a stable sort of the run-formed data, so the
    segmented equivalent is the bitonic pass plus one composite stable
    lexsort.  Byte-identical per segment (the equivalence suite pins it).
    """
    if bitonic_initial:
        keys, payloads, _ = segmented_bitonic_runs(
            keys, payloads, segments, bitonic_run
        )
    order = segmented_stable_argsort(keys, segments)
    return keys[order], payloads[order]


def segmented_sorted_groups(
    keys: np.ndarray, segments: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group boundaries of within-segment key-sorted data.

    Returns ``(starts, lens, seg_of_group)``: the flat row index where
    each group begins, its length, and its segment.  A group never
    crosses a segment boundary.
    """
    n = len(keys)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    sids = segment_ids(segments)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = (keys[1:] != keys[:-1]) | (sids[1:] != sids[:-1])
    starts = np.flatnonzero(new_group)
    lens = np.diff(np.append(starts, n))
    return starts, lens, sids[starts]


def sorted_group_aggregates(values: np.ndarray, starts: np.ndarray, lens: np.ndarray):
    """The six aggregates per group, byte-identical to per-group numpy.

    ``values`` is float64 in group order.  min/max are exact under any
    association; count and avg are trivially identical; sum and sum of
    squares must reproduce ``chunk.sum()``'s pairwise association, so
    groups are bucketed by exact length and reduced as the rows of one
    ``(groups_of_len, len)`` matrix -- numpy applies the same pairwise
    reduction per row that it applies to a 1-D chunk of that length.

    Returns ``(counts, sums, mins, maxs, avgs, sumsqs)`` as float64
    arrays in group order.
    """
    num = len(starts)
    counts = lens.astype(np.float64)
    sums = np.empty(num, dtype=np.float64)
    sumsqs = np.empty(num, dtype=np.float64)
    if num:
        mins = np.minimum.reduceat(values, starts)
        maxs = np.maximum.reduceat(values, starts)
        squares = values * values
        for length in np.unique(lens):
            sel = np.flatnonzero(lens == length)
            rows = starts[sel][:, None] + np.arange(int(length))
            sums[sel] = values[rows].sum(axis=1)
            sumsqs[sel] = squares[rows].sum(axis=1)
    else:
        mins = np.empty(0, dtype=np.float64)
        maxs = np.empty(0, dtype=np.float64)
    avgs = sums / counts if num else np.empty(0, dtype=np.float64)
    return counts, sums, mins, maxs, avgs, sumsqs


def segmented_searchsorted(
    sorted_keys: np.ndarray,
    segments: np.ndarray,
    query_keys: np.ndarray,
    query_segments: np.ndarray,
    key_space_bits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``searchsorted`` with the reference's clamping.

    For every query row, finds the insertion point among *its own
    segment's* sorted keys and clamps it to the segment's last row --
    exactly the ``np.minimum(np.searchsorted(...), len - 1)`` step of
    the per-partition merge join.  Returns ``(idx, valid)`` where
    ``idx`` indexes the flat ``sorted_keys`` and ``valid`` is False for
    queries whose segment has no sorted rows (their ``idx`` is clamped
    to 0 and must be ignored).

    Uses a composite ``(segment << key_space_bits) | key`` code when it
    fits 64 bits and the keys respect the bound (the bit-budget rule,
    see the module docstring); otherwise falls back to one
    ``searchsorted`` per segment.  Callers packing multi-column
    composite keys into ``sorted_keys`` must declare the *total* packed
    width as ``key_space_bits`` -- an undersized declaration routes
    valid inputs to the fallback (slower, never wrong), an oversized
    one merely shrinks the segment budget.

    ``query_segments`` must describe the same number of segments as
    ``segments`` (the query rows of segment ``i`` probe the sorted rows
    of segment ``i``); a mismatch raises ``ValueError``.
    """
    segments = np.asarray(segments, dtype=np.int64)
    query_segments = np.asarray(query_segments, dtype=np.int64)
    if len(query_segments) != len(segments):
        # Both execution paths must agree on the contract: the composite
        # path would silently misalign segment ids while the per-segment
        # loop would fail with an opaque IndexError.
        raise ValueError(
            f"query_segments describes {len(query_segments) - 1} segments "
            f"but segments describes {len(segments) - 1}; the kernel "
            "probes segment i's queries against segment i's sorted rows"
        )
    num_segments = len(segments) - 1
    seg_lens = np.diff(segments)
    q_sids = segment_ids(query_segments)
    valid = (seg_lens > 0)[q_sids]

    seg_bits = max(1, num_segments - 1).bit_length() if num_segments > 1 else 1
    composite_ok = (
        key_space_bits + seg_bits <= 64
        and (len(sorted_keys) == 0 or int(sorted_keys.max()) < (1 << key_space_bits))
        and (len(query_keys) == 0 or int(query_keys.max()) < (1 << key_space_bits))
    )
    if composite_ok:
        shift = np.uint64(key_space_bits)
        sids = segment_ids(segments).astype(np.uint64)
        comp_sorted = (sids << shift) | sorted_keys
        comp_query = (q_sids.astype(np.uint64) << shift) | query_keys
        idx = np.searchsorted(comp_sorted, comp_query)
    else:
        idx = np.empty(len(query_keys), dtype=np.int64)
        for seg in range(num_segments):
            lo, hi = query_segments[seg], query_segments[seg + 1]
            if hi > lo:
                idx[lo:hi] = segments[seg] + np.searchsorted(
                    sorted_keys[segments[seg] : segments[seg + 1]],
                    query_keys[lo:hi],
                )
    last_row = segments[1:][q_sids] - 1  # -1 for empty segments: masked out
    idx = np.minimum(idx, np.maximum(last_row, 0))
    return idx.astype(np.int64), valid
