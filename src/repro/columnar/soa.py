"""Structure-of-arrays view of a partitioned relation.

The per-partition ``List[Relation]`` representation the operators pass
around is ideal for provenance but terrible for numpy: every kernel
dispatch pays fixed overhead per partition, and structured-dtype
operations (`np.concatenate`, fancy indexing) re-promote the tuple
dtype on every call.  :class:`SegmentedColumns` flattens the list into
two plain ``uint64`` columns plus one ``segments`` offset array, so a
whole-relation kernel replaces hundreds of partition-sized calls.

Invariants:

- ``segments`` is a non-decreasing ``int64`` array with
  ``segments[0] == 0`` and ``segments[-1] == len(keys)``; segment ``i``
  is the half-open row range ``[segments[i], segments[i+1])``.
- ``keys`` and ``payloads`` are parallel 1-D arrays (they may be strided
  field views of one structured tuple array -- kernels never assume
  contiguity).
- Empty and singleton segments are legal everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analytics.tuples import TUPLE_DTYPE, Relation


def _contiguous_base_slice(parts: Sequence[Relation]) -> Optional[np.ndarray]:
    """The common base slice covering ``parts``, when they are
    consecutive views of one structured array (the ``split_relation``
    layout) -- else ``None``.

    This is what makes :meth:`SegmentedColumns.from_relations` zero-copy
    for workload partitions and shuffle destinations: both are produced
    by slicing a single backing array.
    """
    base = parts[0].data.base
    if base is None or base.dtype != TUPLE_DTYPE or base.ndim != 1:
        return None
    itemsize = base.dtype.itemsize
    base_ptr = base.__array_interface__["data"][0]
    expected = None
    start0 = 0
    total = 0
    for part in parts:
        data = part.data
        if data.base is not base or data.dtype != TUPLE_DTYPE or data.ndim != 1:
            return None
        if len(data) and data.strides != (itemsize,):
            return None
        offset = data.__array_interface__["data"][0] - base_ptr
        if offset % itemsize:
            return None
        start = offset // itemsize
        if expected is None:
            start0 = start
        elif start != expected:
            return None
        expected = start + len(data)
        total += len(data)
    return base[start0 : start0 + total]


@dataclass(frozen=True)
class SegmentedColumns:
    """Flat SoA columns of a partitioned relation plus segment offsets."""

    keys: np.ndarray
    payloads: np.ndarray
    segments: np.ndarray

    def __post_init__(self) -> None:
        if self.keys.shape != self.payloads.shape:
            raise ValueError("keys and payloads must be parallel")
        segments = self.segments
        if len(segments) < 1 or segments[0] != 0 or segments[-1] != len(self.keys):
            raise ValueError("segments must span [0, len(keys)]")
        if np.any(np.diff(segments) < 0):
            raise ValueError("segments must be non-decreasing")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_relations(cls, parts: Sequence[Relation]) -> "SegmentedColumns":
        """Flatten per-partition relations into segmented columns.

        Zero-copy when the partitions are consecutive slices of one
        backing structured array (workload partitions from
        ``split_relation``, destinations from the segmented shuffle);
        otherwise the tuples are concatenated once.
        """
        segments = np.zeros(len(parts) + 1, dtype=np.int64)
        if parts:
            np.cumsum([len(p) for p in parts], out=segments[1:])
            flat = _contiguous_base_slice(parts)
            if flat is None:
                flat = np.concatenate([p.data for p in parts])
        else:
            flat = np.empty(0, dtype=TUPLE_DTYPE)
        return cls(keys=flat["key"], payloads=flat["payload"], segments=segments)

    @classmethod
    def from_struct(cls, data: np.ndarray, segments: np.ndarray) -> "SegmentedColumns":
        """Columns over one structured tuple array (field views)."""
        if data.dtype != TUPLE_DTYPE:
            raise TypeError(f"expected {TUPLE_DTYPE}, got {data.dtype}")
        return cls(
            keys=data["key"],
            payloads=data["payload"],
            segments=np.asarray(segments, dtype=np.int64),
        )

    # -- shape -------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        return len(self.segments) - 1

    @property
    def total(self) -> int:
        return int(self.segments[-1])

    def segment_lengths(self) -> np.ndarray:
        return np.diff(self.segments)

    def segment_ids(self) -> np.ndarray:
        """Per-row segment index (``int64``, length ``total``)."""
        return np.repeat(
            np.arange(self.num_segments, dtype=np.int64), self.segment_lengths()
        )

    # -- materialization ---------------------------------------------------

    def to_struct(self) -> np.ndarray:
        """One structured tuple array, allocated once with the final
        dtype and written field-wise (no structured-dtype promotion)."""
        out = np.empty(len(self.keys), dtype=TUPLE_DTYPE)
        out["key"] = self.keys
        out["payload"] = self.payloads
        return out

    def to_relations(self, name: str = "segment") -> List[Relation]:
        """Per-segment relations, as slices of one shared buffer."""
        struct = self.to_struct()
        return [
            Relation(struct[self.segments[i] : self.segments[i + 1]], f"{name}/{i}")
            for i in range(self.num_segments)
        ]
