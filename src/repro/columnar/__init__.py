"""Segmented columnar kernel layer: whole-relation SoA operations.

A partitioned relation -- the list of per-partition :class:`Relation`
slices every operator consumes -- is re-expressed as flat
structure-of-arrays columns (``keys``, ``payloads``) plus a ``segments``
offset array (:class:`SegmentedColumns`).  The kernels here then perform
the per-partition work of the hot operators as single whole-relation
numpy operations: a segmented stable sort is one composite
``(segment, key)`` lexsort instead of hundreds of partition-sized
argsorts, segmented aggregation is a handful of ``bincount`` /
``reduceat`` / row-sum calls, and the batched shuffle materialization
builds every destination partition with one gather/scatter pass.

Every kernel is byte-identical to the per-partition reference
implementation it replaces (the operators keep those paths behind
``segmented=False``); ``tests/test_columnar.py`` pins the equivalence.
"""

# NOTE: repro.columnar.hashtable (SegmentedLinearProbingTable) is not
# re-exported here: it imports the scalar table from repro.operators,
# and the shuffle engine imports repro.columnar.soa -- pulling the
# operators package into this __init__ would close an import cycle.
from repro.columnar.kernels import (
    segment_ids,
    segmented_bitonic_runs,
    segmented_mergesort,
    segmented_searchsorted,
    segmented_sorted_groups,
    segmented_stable_argsort,
    sorted_group_aggregates,
)
from repro.columnar.soa import SegmentedColumns

__all__ = [
    "SegmentedColumns",
    "segment_ids",
    "segmented_bitonic_runs",
    "segmented_mergesort",
    "segmented_searchsorted",
    "segmented_sorted_groups",
    "segmented_stable_argsort",
    "sorted_group_aggregates",
]
