"""Segmented open-addressing hash table: many per-partition tables as
one slot array.

The hash-join probe phase builds one :class:`~repro.operators.hashtable.
LinearProbingHashTable` per partition and probes it with that
partition's S tuples; the per-partition *probe-step counts* feed the
performance model (every probe step is one random memory access), so a
batched replacement must reproduce them exactly -- not just the lookup
results.

:class:`SegmentedLinearProbingTable` lays the per-segment tables out in
one flat slot array (each segment gets its own power-of-two capacity
region, exactly the capacity the scalar table would pick) and runs the
same vectorized probing rounds across *all* segments at once.  Within a
round, slot regions are disjoint across segments and items keep their
per-segment order, so collision winners, probe offsets and step counts
are identical to running the scalar table per segment.
"""

from __future__ import annotations

import numpy as np


def _scalar_table_module():
    """The scalar table this class mirrors, imported lazily.

    ``repro.operators`` (via ``join``) imports this module, so a
    top-level import here would close an import cycle for any process
    whose first import is ``repro.columnar.hashtable``.  By
    construction time the operators package is always importable.
    """
    from repro.operators import hashtable

    return hashtable


class SegmentedLinearProbingTable:
    """One linear-probing table per segment, batched over all segments.

    ``expected_items`` holds each segment's expected item count; each
    segment's capacity matches ``LinearProbingHashTable(expected,
    load_factor)`` exactly.  ``insert_batch`` / ``lookup_batch`` take a
    per-item segment index and require items of one segment to appear in
    the same relative order the scalar path would feed them.
    """

    def __init__(self, expected_items: np.ndarray, load_factor: float = 0.5) -> None:
        if not 0 < load_factor <= 1:
            raise ValueError("load factor must be in (0, 1]")
        scalar = _scalar_table_module()
        self._empty_key = scalar.EMPTY_KEY
        expected = np.asarray(expected_items, dtype=np.int64)
        if np.any(expected < 0):
            raise ValueError("expected_items must be non-negative")
        caps = [
            scalar._next_pow2(max(2, int(np.ceil(max(1, int(e)) / load_factor))))
            for e in expected
        ]
        self._capacities = np.asarray(caps, dtype=np.int64)
        self._masks = (self._capacities - 1).astype(np.uint64)
        # Hash shift per segment: multiplicative_hash(key, bits) is
        # (key * CONST) >> (64 - bits) with bits = log2(capacity).
        bits = np.array([c.bit_length() - 1 for c in caps], dtype=np.int64)
        self._shifts = (64 - bits).astype(np.uint64)
        self._bases = np.zeros(len(caps), dtype=np.int64)
        np.cumsum(self._capacities[:-1], out=self._bases[1:])
        total = int(self._capacities.sum())
        self._keys = np.full(total, self._empty_key, dtype=np.uint64)
        self._payloads = np.zeros(total, dtype=np.uint64)
        self._items = np.zeros(len(caps), dtype=np.int64)
        self.insert_probe_steps = np.zeros(len(caps), dtype=np.int64)
        self.lookup_probe_steps = np.zeros(len(caps), dtype=np.int64)

    @property
    def num_segments(self) -> int:
        return len(self._capacities)

    @property
    def capacities(self) -> np.ndarray:
        return self._capacities

    def _home_slots(self, keys: np.ndarray, seg_of: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = keys * np.uint64(0x9E3779B97F4A7C15)
        # Byte-identical to hash_table_slot per segment -- same constant,
        # same shift; spelled out here because the shift varies per item.
        return mixed >> self._shifts[seg_of]

    def insert_batch(
        self, keys: np.ndarray, payloads: np.ndarray, seg_of: np.ndarray
    ) -> None:
        """Insert all pairs, resolving collisions exactly like the
        scalar table does per segment.

        Each vectorized round, every still-pending item proposes its
        next probe slot; the first proposer of each empty slot (in
        pending order, which preserves per-segment order) wins.  Slot
        regions are disjoint across segments, so winner selection per
        segment matches the scalar rounds.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        payloads = np.asarray(payloads, dtype=np.uint64)
        seg_of = np.asarray(seg_of, dtype=np.int64)
        if keys.shape != payloads.shape or keys.shape != seg_of.shape:
            raise ValueError("keys, payloads and seg_of must align")
        if np.any(keys == self._empty_key):
            raise ValueError("key collides with the empty sentinel")
        new_items = np.bincount(seg_of, minlength=self.num_segments)
        if np.any(self._items + new_items > self._capacities):
            raise MemoryError("inserting more items than a segment table holds")
        home = self._home_slots(keys, seg_of)
        n = len(keys)
        pending = np.arange(n)
        offsets = np.zeros(n, dtype=np.uint64)
        while len(pending):
            seg = seg_of[pending]
            pos = self._bases[seg] + (
                (home[pending] + offsets[pending]) & self._masks[seg]
            ).astype(np.int64)
            empty = self._keys[pos] == self._empty_key
            placed_mask = np.zeros(len(pending), dtype=bool)
            if np.any(empty):
                cand_pos = pos[empty]
                _, first_idx = np.unique(cand_pos, return_index=True)
                winners_local = np.flatnonzero(empty)[first_idx]
                winner_items = pending[winners_local]
                winner_pos = pos[winners_local]
                self._keys[winner_pos] = keys[winner_items]
                self._payloads[winner_pos] = payloads[winner_items]
                placed_mask[winners_local] = True
            self.insert_probe_steps += np.bincount(seg, minlength=self.num_segments)
            losers = ~placed_mask
            offsets[pending[losers]] += np.uint64(1)
            pending = pending[losers]
        self._items += new_items

    def lookup_batch(self, keys: np.ndarray, seg_of: np.ndarray):
        """Find the first-inserted payload for each (key, segment).

        Returns ``(payloads, found)``; missing keys get payload 0 and
        ``found=False``.  Per-segment ``lookup_probe_steps`` accumulate
        exactly as the scalar table's counter does.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        seg_of = np.asarray(seg_of, dtype=np.int64)
        n = len(keys)
        result = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        home = self._home_slots(keys, seg_of)
        active = np.arange(n)
        offsets = np.zeros(n, dtype=np.uint64)
        max_rounds = int(self._capacities.max(initial=0)) + 1
        rounds = 0
        while len(active):
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("lookup did not terminate (table corrupt?)")
            seg = seg_of[active]
            pos = self._bases[seg] + (
                (home[active] + offsets[active]) & self._masks[seg]
            ).astype(np.int64)
            slot_keys = self._keys[pos]
            hit = slot_keys == keys[active]
            miss = slot_keys == self._empty_key
            self.lookup_probe_steps += np.bincount(seg, minlength=self.num_segments)
            if np.any(hit):
                result[active[hit]] = self._payloads[pos[hit]]
                found[active[hit]] = True
            unresolved = ~(hit | miss)
            offsets[active[unresolved]] += np.uint64(1)
            active = active[unresolved]
        return result, found
