"""Priority-queue discrete-event simulator.

The kernel is deliberately minimal: events are ``(time, seq, callback)``
triples ordered by time with a monotonically increasing sequence number
breaking ties deterministically (FIFO among same-time events).  Model
components schedule callbacks; the kernel owns the clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional


class EventKind(Enum):
    """Coarse classification of events, used only for introspection."""

    GENERIC = "generic"
    MEMORY = "memory"
    NETWORK = "network"
    COMPUTE = "compute"


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordered by (time, seq)."""

    time_ns: float
    seq: int
    callback: Callable[["Simulator"], None] = field(compare=False)
    kind: EventKind = field(compare=False, default=EventKind.GENERIC)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips cancelled events."""
        self.cancelled = True


class Simulator:
    """Event loop with a nanosecond clock.

    Example::

        sim = Simulator()
        sim.schedule(10.0, lambda s: print(s.now_ns))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = 0
        self._now_ns = 0.0
        self._events_run = 0

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-dispatched (possibly cancelled) events."""
        return len(self._queue)

    def schedule(
        self,
        delay_ns: float,
        callback: Callable[["Simulator"], None],
        kind: EventKind = EventKind.GENERIC,
    ) -> Event:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay {delay_ns})")
        event = Event(self._now_ns + delay_ns, self._seq, callback, kind)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time_ns: float,
        callback: Callable[["Simulator"], None],
        kind: EventKind = EventKind.GENERIC,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time_ns - self._now_ns, callback, kind)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now_ns = event.time_ns
            event.callback(self)
            self._events_run += 1
            return True
        return False

    def run(self, until_ns: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops early when the next event lies beyond ``until_ns`` or after
        ``max_events`` dispatches.  Returns the final simulated time.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until_ns is not None and head.time_ns > until_ns:
                self._now_ns = until_ns
                break
            if not self.step():
                break
            dispatched += 1
        return self._now_ns
