"""Lightweight statistics collectors shared by the hardware models."""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """Named monotonically increasing counters.

    A thin wrapper over a dict that forbids accidental decrements and
    gives a stable snapshot API for the energy/performance accounting.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters are monotonic; cannot add {amount} to {name!r}")
        self._values[name] = self._values.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter's totals into this one."""
        for name, value in other._values.items():
            self._values[name] = self._values.get(name, 0.0) + value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class Histogram:
    """Fixed-bucket histogram for latency/occupancy distributions."""

    def __init__(self, bucket_edges: List[float]) -> None:
        if sorted(bucket_edges) != list(bucket_edges):
            raise ValueError("bucket edges must be sorted ascending")
        if not bucket_edges:
            raise ValueError("need at least one bucket edge")
        self._edges = list(bucket_edges)
        # One bucket per edge plus an overflow bucket.
        self._counts = [0] * (len(bucket_edges) + 1)
        self._total = 0
        self._sum = 0.0

    def record(self, value: float) -> None:
        self._total += 1
        self._sum += value
        for i, edge in enumerate(self._edges):
            if value <= edge:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._total if self._total else None

    def bucket_counts(self) -> List[int]:
        return list(self._counts)


class RateTracker:
    """Tracks a quantity transferred over a time interval (e.g. bytes).

    Used to report achieved bandwidths: record ``(amount)`` events, then
    ask for the rate over the observed window.
    """

    def __init__(self) -> None:
        self._amount = 0.0
        self._first_ns: Optional[float] = None
        self._last_ns: Optional[float] = None

    def record(self, now_ns: float, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._first_ns is None:
            self._first_ns = now_ns
        elif now_ns < self._last_ns:
            raise ValueError("time must be monotonically non-decreasing")
        self._last_ns = now_ns
        self._amount += amount

    @property
    def total(self) -> float:
        return self._amount

    def rate_per_s(self) -> Optional[float]:
        """Average rate over the observation window, or None if < 2 points."""
        if self._first_ns is None or self._last_ns is None:
            return None
        window_ns = self._last_ns - self._first_ns
        if window_ns <= 0:
            return None
        return self._amount / (window_ns * 1e-9)
