"""A small discrete-event simulation kernel.

Used by the event-accurate DRAM/vault models and the shuffle network
model.  The analytic fast paths in :mod:`repro.perf` do not need it, but
the event models are cross-validated against the analytic ones in the
test suite, which is how we gain confidence in the scaled-up numbers.
"""

from repro.engine.des import Event, EventKind, Simulator
from repro.engine.stats import Counter, Histogram, RateTracker

__all__ = ["Counter", "Event", "EventKind", "Histogram", "RateTracker", "Simulator"]
