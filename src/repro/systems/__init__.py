"""Assembled machines: the six evaluated system configurations.

``build_system(name)`` constructs a :class:`Machine` from a preset
(``cpu``, ``nmp``, ``nmp-rand``, ``nmp-seq``, ``nmp-perm``,
``mondrian-noperm``, ``mondrian``); ``Machine.run_operator`` functionally
executes an operator in the machine's algorithmic variant and returns a
:class:`repro.perf.result.SystemResult` with runtime, phase breakdown and
the Table 4 energy accounting.
"""

from repro.systems.machine import Machine, build_system, run_all_systems

__all__ = ["Machine", "build_system", "run_all_systems"]
