"""A machine = system preset + topology + evaluators + energy model.

The machine owns the mapping from its hardware configuration to the
operator variant it runs (paper section 6):

- the CPU partitions with 16 low-order radix bits and probes with
  hash-based algorithms plus quicksort;
- the NMP baselines partition with 6 bits (one bucket per vault) and
  probe with either the hash (NMP-rand) or sort (NMP-seq) algorithms;
- Mondrian partitions with permutable stores and probes sort-based with
  the wide SIMD unit.

``scale_factor`` linearly extrapolates the measured phase costs to
paper-sized datasets (all cost quantities are per-tuple linear within a
fixed pass structure, so scaling the workload scales the costs; the
log-factor from sorting is captured at functional size and noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Optional

from repro.config.system import HEADLINE_PRESETS, SystemConfig, get_preset
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.interconnect.topology import Topology, build_topology
from repro.operators import OPERATOR_RUNNERS, OperatorRun, OperatorVariant
from repro.perf.model import PhaseEvaluator
from repro.perf.result import SystemResult

#: Radix bits per machine kind (paper section 6).
CPU_RADIX_BITS = 16
NMP_RADIX_BITS = 6


class Machine:
    """One evaluated system configuration, ready to run operators."""

    def __init__(self, config: SystemConfig) -> None:
        self._config = config
        self._topology = build_topology(
            config.topology, config.geometry, config.interconnect, config.energy
        )
        self._evaluator = PhaseEvaluator(config, self._topology)
        self._energy_model = EnergyModel(config, self._topology.num_serdes_links)

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def name(self) -> str:
        return self._config.name

    def variant(self, num_partitions: int) -> OperatorVariant:
        """The algorithmic variant this machine runs (section 6)."""
        cfg = self._config
        return OperatorVariant(
            radix_bits=CPU_RADIX_BITS if cfg.kind == "cpu" else NMP_RADIX_BITS,
            probe_algorithm=cfg.probe_algorithm,
            permutable=cfg.uses_permutability,
            simd=cfg.kind == "mondrian",
            num_partitions=num_partitions,
            local_sort="quicksort" if cfg.kind == "cpu" else "mergesort",
            interleave=cfg.interleave_model,
            faults=cfg.faults,
        )

    def run_operator(
        self,
        operator: str,
        workload: Any,
        scale_factor: float = 1.0,
        segmented: bool = True,
    ) -> SystemResult:
        """Functionally execute ``operator`` and evaluate it on this machine.

        ``segmented=False`` routes the functional execution through the
        per-partition reference paths instead of the whole-relation
        columnar kernels; results are byte-identical either way (the
        equivalence suite pins it), so the flag exists for tests and
        debugging only.
        """
        try:
            runner = OPERATOR_RUNNERS[operator]
        except KeyError:
            raise KeyError(
                f"unknown operator {operator!r}; choose from {sorted(OPERATOR_RUNNERS)}"
            ) from None
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        try:
            num_partitions = workload.num_partitions
        except AttributeError:
            raise TypeError(
                f"workload {type(workload).__name__} does not implement the "
                "num_partitions property; every workload dataclass must "
                "declare how many memory partitions it was generated across"
            ) from None
        run: OperatorRun = runner(
            workload,
            self.variant(num_partitions),
            model_scale=scale_factor,
            segmented=segmented,
        )
        return self.evaluate_run(run)

    def run_pipeline(self, plan: Any, scale_factor: float = 1.0) -> Any:
        """Execute a :class:`~repro.pipeline.plan.QueryPlan` end-to-end.

        Every stage runs functionally under this machine's operator
        variant; the resulting per-stage phases are costed with the same
        evaluator/energy path as standalone operators.  Returns a
        :class:`~repro.pipeline.perf.PipelinePerf`.
        """
        # Imported here: repro.pipeline pulls in the experiments layer
        # (table formatting), which imports repro.systems back.
        from repro.pipeline.perf import evaluate_pipeline
        from repro.telemetry import span as _span

        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        with _span(
            "run_pipeline",
            category="pipeline",
            system=self.config.name,
            plan=plan.name,
        ):
            run = plan.execute(
                self.variant(plan.num_partitions), model_scale=scale_factor
            )
            return evaluate_pipeline(self, run)

    def phase_energy(self, perf) -> EnergyBreakdown:
        """Energy breakdown of one evaluated phase on this machine.

        The same accounting ``evaluate_run`` accumulates across phases,
        exposed per phase so the scenario API can emit tidy
        per-phase/per-component records.
        """
        return self._energy_model.phase_energy(
            perf.events, perf.time_s, perf.core_utilization
        )

    def evaluate_run(self, run: OperatorRun) -> SystemResult:
        """Cost an already-executed operator run on this machine."""
        phase_perfs = []
        energy = EnergyBreakdown()
        for phase in run.phases:
            perf = self._evaluator.evaluate(phase)
            phase_perfs.append(perf)
            energy.accumulate(
                self._energy_model.phase_energy(
                    perf.events, perf.time_s, perf.core_utilization
                )
            )
        return SystemResult(
            system=self.name,
            operator=run.operator,
            variant=run.variant,
            phase_perfs=phase_perfs,
            energy=energy,
            output=run.output,
            metadata=dict(run.metadata),
        )


@functools.lru_cache(maxsize=None)
def _preset_machine(preset: str) -> Machine:
    return Machine(get_preset(preset))


def build_system(preset: str, fresh: bool = False) -> Machine:
    """Machine for a named preset (see ``preset_names()``).

    Machines are stateless across ``run_operator``/``run_pipeline``
    calls (the evaluator and energy model are pure functions of the
    phase; accumulators are created per call), so by default the same
    per-preset instance is returned every time -- topology and core-model
    construction leave the hot path.  Pass ``fresh=True`` to force a new
    instance (e.g. to mutate its config in tests).
    """
    if fresh:
        return Machine(get_preset(preset))
    return _preset_machine(preset)


def clear_machine_cache() -> None:
    """Drop the per-preset machine singletons (benchmarks use this so
    each timed run includes machine construction, as the seed did)."""
    _preset_machine.cache_clear()


def run_all_systems(
    operator: str,
    workload: Any,
    presets: Optional[list] = None,
    scale_factor: float = 1.0,
) -> Dict[str, SystemResult]:
    """Run one operator on several systems (default: the paper's four
    headline configurations, ``repro.config.system.HEADLINE_PRESETS``)."""
    presets = list(presets) if presets else list(HEADLINE_PRESETS)
    return {
        name: build_system(name).run_operator(operator, workload, scale_factor)
        for name in presets
    }
