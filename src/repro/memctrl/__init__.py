"""Vault-controller extensions of the Mondrian Data Engine.

- :mod:`repro.memctrl.permutable`: the permutable-write engine -- marked
  stores arriving at a destination vault are written to the sequential
  tail of the destination buffer instead of their addressed location
  (paper section 5.3), plus the shuffle_begin/shuffle_end handshake with
  its message-signaled-interrupt completion vector (section 5.4).
- :mod:`repro.memctrl.object_buffer`: per-compute-unit object buffers that
  guarantee a data object never straddles two memory messages (the
  permutability granularity contract).
- :mod:`repro.memctrl.stream_buffer`: the eight 384 B programmable stream
  buffers that feed the Mondrian SIMD unit with binding prefetches.
"""

from repro.memctrl.object_buffer import ObjectBuffer
from repro.memctrl.permutable import (
    PermutableRegionConfig,
    PermutableWriteEngine,
    ShuffleBarrier,
)
from repro.memctrl.stream_buffer import StreamBufferSet, StreamDescriptor

__all__ = [
    "ObjectBuffer",
    "PermutableRegionConfig",
    "PermutableWriteEngine",
    "ShuffleBarrier",
    "StreamBufferSet",
    "StreamDescriptor",
]
