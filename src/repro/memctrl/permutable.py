"""Permutable-write support in the vault controller (paper sections 5.3-5.4).

During an operator's partitioning phase the software brackets its
shuffle in ``shuffle_begin`` / ``shuffle_end``.  The CPU configures each
vault controller with a destination buffer (base physical address, size,
object size) through memory-mapped registers; every write request marked
*permutable* that falls into the region is then appended to the buffer's
sequential tail, regardless of the address it carried.  This converts the
random interleaved arrival order of figure 2 into one sequential stream,
activating every DRAM row exactly once.

Correctness rests on the permutability property: the destination region
is a hash-bucket-like heap, so any arrival order is acceptable.  The
engine preserves the *multiset* of delivered objects (property-tested in
the suite) while renouncing any particular order.

:class:`ShuffleBarrier` models the completion protocol: during
``shuffle_begin`` every source announces how many bytes it will send to
each destination (information produced by the histogram step); a vault
controller that has received everything it expects raises its bit in the
MSI interrupt vector of every compute unit; compute units resume when all
bits are set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PermutableRegionConfig:
    """Destination-buffer configuration written by the CPU at setup.

    ``object_b`` is the permutability granularity: the controller only
    permutes whole objects, never bytes within one (section 5.3), so the
    object size must not exceed the 256 B object-buffer/HMC message limit.
    """

    base: int
    size_b: int
    object_b: int
    max_object_b: int = 256

    def __post_init__(self) -> None:
        if self.size_b <= 0 or self.object_b <= 0:
            raise ValueError("region and object sizes must be positive")
        if self.object_b > self.max_object_b:
            raise ValueError(
                f"objects of {self.object_b} B exceed the {self.max_object_b} B "
                "message limit; objects that large already exploit row locality "
                "without permutation (paper section 5.3)"
            )
        if self.size_b % self.object_b:
            raise ValueError("region size must hold a whole number of objects")

    @property
    def capacity_objects(self) -> int:
        return self.size_b // self.object_b

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size_b


class PermutableWriteEngine:
    """Sequential-tail write redirection for one vault controller.

    The engine is functional: it stores the delivered objects (opaque
    payloads) in arrival order so operators can read back exactly what the
    hardware would have materialized.  It also counts the writes the
    energy/performance models charge.
    """

    def __init__(self, config: PermutableRegionConfig) -> None:
        self._config = config
        self._objects: List[object] = []
        self._overflowed = False

    @property
    def config(self) -> PermutableRegionConfig:
        return self._config

    @property
    def objects_written(self) -> int:
        return len(self._objects)

    @property
    def bytes_written(self) -> int:
        return len(self._objects) * self._config.object_b

    @property
    def next_tail_addr(self) -> int:
        """Physical address the next arriving object will be written to."""
        return self._config.base + self.bytes_written

    @property
    def overflowed(self) -> bool:
        """True if a write arrived after the buffer filled.

        The paper handles this by raising an exception to the CPU, which
        re-runs the histogram with two-round partitioning; we surface the
        flag so callers can model that retry.
        """
        return self._overflowed

    def write(self, payload: object, marked_addr: Optional[int] = None) -> int:
        """Deliver one permutable object; returns the address it landed at.

        ``marked_addr`` is the address the request carried; it is ignored
        for placement (that is the whole point) but validated to be inside
        the configured region when provided, since the controller only
        treats stores *into the permutable region* as permutable.
        """
        if marked_addr is not None and not self._config.contains(marked_addr):
            raise ValueError(
                f"permutable store to {marked_addr:#x} misses the region "
                f"[{self._config.base:#x}, {self._config.base + self._config.size_b:#x})"
            )
        if len(self._objects) >= self._config.capacity_objects:
            self._overflowed = True
            raise MemoryError(
                "permutable destination buffer overflow; the CPU must retry "
                "the histogram with two-round partitioning (paper section 5.4)"
            )
        addr = self.next_tail_addr
        self._objects.append(payload)
        return addr

    def write_batch(
        self,
        payloads: Optional[Sequence[object]] = None,
        count: Optional[int] = None,
        marked_addrs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Deliver a whole batch of permutable objects in one call.

        Semantically identical to calling :meth:`write` once per object:
        objects land at consecutive tail addresses (returned as an int64
        array, in arrival order), ``marked_addrs`` are validated against
        the region, and a batch that does not fit appends what fits, sets
        the overflow flag and raises :class:`MemoryError` -- exactly the
        state a scalar loop would leave behind.  The only divergence is
        on the *invalid-address* error path: the batch validates all
        marked addresses up front, so no partial writes precede that
        :class:`ValueError`.

        Pass either ``payloads`` (stored per object) or ``count`` (stores
        ``count`` placeholder ``None`` payloads, for callers that keep
        the data elsewhere and only need addresses and accounting).
        """
        if payloads is None:
            if count is None:
                raise ValueError("provide payloads or count")
            n = int(count)
            if n < 0:
                raise ValueError("count must be non-negative")
            stored: List[object] = [None] * n
        else:
            stored = list(payloads)
            n = len(stored)
            if count is not None and count != n:
                raise ValueError("count disagrees with len(payloads)")
        if marked_addrs is not None:
            addrs = np.asarray(marked_addrs, dtype=np.int64)
            if len(addrs) != n:
                raise ValueError("marked_addrs must align with the batch")
            if n and not (
                self._config.contains(int(addrs.min()))
                and self._config.contains(int(addrs.max()))
            ):
                bad = int(addrs[~((addrs >= self._config.base)
                                  & (addrs < self._config.base + self._config.size_b))][0])
                raise ValueError(
                    f"permutable store to {bad:#x} misses the region "
                    f"[{self._config.base:#x}, "
                    f"{self._config.base + self._config.size_b:#x})"
                )
        start = len(self._objects)
        fits = min(n, self._config.capacity_objects - start)
        self._objects.extend(stored[:fits])
        if fits < n:
            self._overflowed = True
            raise MemoryError(
                "permutable destination buffer overflow; the CPU must retry "
                "the histogram with two-round partitioning (paper section 5.4)"
            )
        return (
            self._config.base
            + (start + np.arange(n, dtype=np.int64)) * self._config.object_b
        )

    def drain(self) -> List[object]:
        """Objects in the order the hardware materialized them."""
        return list(self._objects)


class ShuffleBarrier:
    """The shuffle_begin / shuffle_end completion protocol (section 5.4).

    Tracks, per destination vault, the bytes each source announced and the
    bytes actually delivered; ``vault_complete`` mirrors the controller's
    MSI broadcast, and ``all_complete`` is the condition on which every
    compute unit's interrupt vector unblocks.
    """

    def __init__(self, num_vaults: int) -> None:
        if num_vaults < 1:
            raise ValueError("need at least one vault")
        self._num_vaults = num_vaults
        # announced[dest][src] = bytes src will send to dest
        self._announced: List[Dict[int, int]] = [dict() for _ in range(num_vaults)]
        self._delivered: List[int] = [0] * num_vaults
        self._sealed = False
        # Per-vault totals, frozen at seal() so the deliver hot path is
        # O(1) instead of re-summing the announcement dict per call.
        self._expected: Optional[List[int]] = None

    @property
    def num_vaults(self) -> int:
        return self._num_vaults

    def announce(self, src: int, dest: int, size_b: int) -> None:
        """shuffle_begin step 1: a source posts its per-destination total."""
        if self._sealed:
            raise RuntimeError("cannot announce after the barrier is sealed")
        if size_b < 0:
            raise ValueError("announced size must be non-negative")
        self._check_vault(src)
        self._check_vault(dest)
        if src in self._announced[dest]:
            raise ValueError(f"source {src} already announced to vault {dest}")
        self._announced[dest][src] = size_b

    def announce_all(self, sizes_b: np.ndarray) -> None:
        """Bulk shuffle_begin: one call covering every (src, dest) pair.

        Equivalent to ``announce(src, dest, sizes_b[src, dest])`` for
        every pair, leaving identical barrier state; the segmented
        shuffle engine uses it so the announcement exchange is one
        histogram-matrix pass instead of ``sources x destinations``
        method calls.
        """
        if self._sealed:
            raise RuntimeError("cannot announce after the barrier is sealed")
        sizes = np.asarray(sizes_b)
        if sizes.ndim != 2:
            raise ValueError("sizes_b must be a (sources, destinations) matrix")
        num_src, num_dest = sizes.shape
        if num_src > self._num_vaults or num_dest > self._num_vaults:
            raise ValueError("announcement matrix exceeds the vault count")
        if num_src and num_dest and int(sizes.min()) < 0:
            raise ValueError("announced size must be non-negative")
        for dest in range(num_dest):
            announced = self._announced[dest]
            col = sizes[:, dest].tolist()
            for src in range(num_src):
                if src in announced:
                    raise ValueError(
                        f"source {src} already announced to vault {dest}"
                    )
                announced[src] = col[src]

    def seal(self) -> None:
        """shuffle_begin step 2: all announcements exchanged; totals fixed.

        Freezes the per-vault expected totals: announcements are rejected
        after sealing, so the sums can never go stale.
        """
        self._sealed = True
        self._expected = [sum(per_src.values()) for per_src in self._announced]

    def expected_bytes(self, dest: int) -> int:
        self._check_vault(dest)
        if self._expected is not None:
            return self._expected[dest]
        return sum(self._announced[dest].values())

    def deliver(self, dest: int, size_b: int) -> None:
        """Record bytes arriving at a destination vault controller."""
        if not self._sealed:
            raise RuntimeError("barrier must be sealed before deliveries")
        self._check_vault(dest)
        if size_b < 0:
            raise ValueError("delivered size must be non-negative")
        self._delivered[dest] += size_b
        if self._delivered[dest] > self._expected[dest]:
            raise ValueError(
                f"vault {dest} received {self._delivered[dest]} bytes, more "
                f"than the announced {self._expected[dest]}"
            )

    def deliver_batch(self, dest: int, size_b: int) -> None:
        """Record one bulk arrival covering a whole batch of objects.

        Equivalent to repeated :meth:`deliver` calls totalling ``size_b``
        bytes; the vectorized shuffle engine uses it to retire an entire
        destination's inbound traffic with a single barrier update.
        """
        self.deliver(dest, size_b)

    def vault_complete(self, dest: int) -> bool:
        """Would vault ``dest`` have sent its MSI by now?"""
        self._check_vault(dest)
        return self._sealed and self._delivered[dest] == self.expected_bytes(dest)

    def all_complete(self) -> bool:
        """shuffle_end unblocks when every vault's MSI bit is set."""
        return all(self.vault_complete(v) for v in range(self._num_vaults))

    def completion_vector(self) -> Tuple[bool, ...]:
        """The per-vault interrupt vector a compute unit observes."""
        return tuple(self.vault_complete(v) for v in range(self._num_vaults))

    def _check_vault(self, vault: int) -> None:
        if not 0 <= vault < self._num_vaults:
            raise ValueError(f"vault {vault} out of range [0, {self._num_vaults})")
