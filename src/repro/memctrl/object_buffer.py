"""Per-compute-unit object buffers (paper section 5.3).

Permutability holds per *object*, not per memory message: if one object
were split across two network messages the destination controller could
interleave other objects between the halves and corrupt it.  The object
buffer therefore accumulates a compute unit's partial stores and drains
to the vault router only when a whole object (of the size the software
declared at region setup) has been assembled, injecting object-sized
write messages into the network.

The hardware buffer is 256 B -- the HMC protocol's maximum message size
and the row-buffer size -- which bounds the permutable object size.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ObjectBuffer:
    """Assembles partial stores into whole-object network messages."""

    def __init__(self, object_b: int, capacity_b: int = 256) -> None:
        if object_b <= 0:
            raise ValueError("object size must be positive")
        if object_b > capacity_b:
            raise ValueError(
                f"object size {object_b} B exceeds the {capacity_b} B object buffer"
            )
        self._object_b = object_b
        self._capacity_b = capacity_b
        self._pending: List[Tuple[int, object]] = []  # (size_b, fragment)
        self._pending_b = 0
        self._drained_messages = 0

    @property
    def object_b(self) -> int:
        return self._object_b

    @property
    def pending_b(self) -> int:
        """Bytes buffered and not yet drained."""
        return self._pending_b

    @property
    def drained_messages(self) -> int:
        """Whole-object messages injected into the network so far."""
        return self._drained_messages

    def store(self, size_b: int, fragment: object = None) -> Optional[List[object]]:
        """Buffer one partial store.

        Returns the list of fragments forming a complete object when the
        store completes one (the message to inject), else ``None``.
        Partial stores may not straddle an object boundary -- the software
        contract is that objects are written with object-aligned stores.
        """
        if size_b <= 0:
            raise ValueError("store size must be positive")
        if size_b > self._object_b:
            raise ValueError(
                f"store of {size_b} B larger than the {self._object_b} B object"
            )
        if self._pending_b + size_b > self._object_b:
            raise ValueError(
                "store straddles an object boundary; software must write "
                "objects with object-aligned stores"
            )
        self._pending.append((size_b, fragment))
        self._pending_b += size_b
        if self._pending_b == self._object_b:
            message = [frag for _, frag in self._pending]
            self._pending.clear()
            self._pending_b = 0
            self._drained_messages += 1
            return message
        return None

    def flush_check(self) -> None:
        """Assert the buffer is empty at shuffle_end.

        A non-empty buffer at the barrier means the software wrote a
        fractional object -- a programming error the hardware cannot fix.
        """
        if self._pending_b:
            raise RuntimeError(
                f"object buffer holds {self._pending_b} B of an incomplete "
                "object at shuffle_end"
            )
