"""Programmable stream buffers feeding the Mondrian compute unit.

The logic layer hosts eight 384 B stream buffers (1.5x the 256 B row
buffer), sized to mask DRAM latency (paper section 5.2).  Software ties a
contiguous address range to each buffer (``prefetch_in_str_buf``), then
repeatedly reads the stream heads and pops consumed tuples
(figure 4b); the hardware keeps issuing binding prefetches so the SIMD
unit never waits for memory as long as aggregate consumption stays under
the vault's bandwidth.

The model is functional + analytic: it tracks per-stream positions for
correctness (mergesort consumes streams at data-dependent rates) and
computes refill/stall statistics for the performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.config.dram import DramTiming, HmcGeometry


@dataclass(frozen=True)
class StreamDescriptor:
    """One stream: a contiguous `[start, start + size)` byte range."""

    start: int
    size_b: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.size_b < 0:
            raise ValueError("bad stream range")

    @property
    def end(self) -> int:
        return self.start + self.size_b


class StreamBufferSet:
    """The eight stream buffers of one Mondrian compute unit."""

    def __init__(
        self,
        geometry: HmcGeometry,
        timing: DramTiming,
        num_buffers: int = 8,
        buffer_b: int = 384,
    ) -> None:
        if num_buffers < 1 or buffer_b <= 0:
            raise ValueError("bad stream-buffer configuration")
        self._geo = geometry
        self._timing = timing
        self._num_buffers = num_buffers
        self._buffer_b = buffer_b
        self._streams: List[StreamDescriptor] = []
        self._consumed: List[int] = []
        self._refills = 0
        self._bytes_streamed = 0

    @property
    def num_buffers(self) -> int:
        return self._num_buffers

    @property
    def buffer_b(self) -> int:
        return self._buffer_b

    @property
    def bytes_streamed(self) -> int:
        return self._bytes_streamed

    @property
    def refills(self) -> int:
        """Buffer refills issued (each a sequential DRAM read burst)."""
        return self._refills

    def configure(self, streams: List[StreamDescriptor]) -> None:
        """``prefetch_in_str_buf``: tie address ranges to the buffers."""
        if len(streams) > self._num_buffers:
            raise ValueError(
                f"{len(streams)} streams exceed the {self._num_buffers} buffers"
            )
        if not streams:
            raise ValueError("need at least one stream")
        self._streams = list(streams)
        self._consumed = [0] * len(streams)
        # Initial fill of every buffer counts as refills.
        for stream in streams:
            self._refills += math.ceil(min(stream.size_b, self._buffer_b) / self._buffer_b)

    def remaining_b(self, stream_idx: int) -> int:
        self._check_configured(stream_idx)
        return self._streams[stream_idx].size_b - self._consumed[stream_idx]

    def stream_done(self, stream_idx: int) -> bool:
        return self.remaining_b(stream_idx) == 0

    def all_done(self) -> bool:
        """``all_stream_buffer_done`` from the programming interface."""
        if not self._streams:
            raise RuntimeError("stream buffers not configured")
        return all(self.stream_done(i) for i in range(len(self._streams)))

    def head_addr(self, stream_idx: int) -> Optional[int]:
        """Address of the next unconsumed byte, or None when exhausted."""
        if self.stream_done(stream_idx):
            return None
        return self._streams[stream_idx].start + self._consumed[stream_idx]

    def pop(self, stream_idx: int, size_b: int) -> int:
        """``pop_input_stream``: consume bytes from a stream head.

        Returns the address the consumed bytes started at.  Crossing a
        buffer boundary triggers a refill (binding prefetch of the next
        chunk), which the statistics record.
        """
        self._check_configured(stream_idx)
        if size_b <= 0:
            raise ValueError("pop size must be positive")
        if size_b > self.remaining_b(stream_idx):
            raise ValueError(
                f"stream {stream_idx} holds only {self.remaining_b(stream_idx)} B"
            )
        addr = self._streams[stream_idx].start + self._consumed[stream_idx]
        before = self._consumed[stream_idx] // self._buffer_b
        self._consumed[stream_idx] += size_b
        after = self._consumed[stream_idx] // self._buffer_b
        refills = after - before
        if refills and not self.stream_done(stream_idx):
            self._refills += refills
        self._bytes_streamed += size_b
        return addr

    def steady_state_stall_free(self, consume_bw_bps: float) -> bool:
        """Whether compute at ``consume_bw_bps`` never stalls on memory.

        The buffers hide latency as long as (a) a buffer covers the DRAM
        round trip at the consumption rate and (b) aggregate consumption
        stays under the vault's peak bandwidth.
        """
        if consume_bw_bps <= 0:
            raise ValueError("consumption bandwidth must be positive")
        if consume_bw_bps > self._geo.vault_peak_bw_bps:
            return False
        latency_ns = self._timing.row_miss_latency_ns
        covered_b = consume_bw_bps * latency_ns * 1e-9
        return covered_b <= self._buffer_b

    def _check_configured(self, stream_idx: int) -> None:
        if not self._streams:
            raise RuntimeError("stream buffers not configured")
        if not 0 <= stream_idx < len(self._streams):
            raise ValueError(f"stream index {stream_idx} out of range")
