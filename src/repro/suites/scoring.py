"""Layered suite scoring: which architecture wins where, and why.

The scoring engine turns a suite grid's tidy records
(:class:`~repro.api.results.ResultSet` rows from
:class:`~repro.suites.runner.SuiteRun`) into a ranked cross-suite
report.  Per (suite, system) cell, four **layers** each score in
``(0, 1]`` relative to the best system *on that suite*:

- ``time`` -- end-to-end runtime, ``best_time / time``;
- ``energy`` -- total energy, ``best_energy / energy``;
- ``balance`` -- stage evenness, ``1 / (n_stages * max stage-time
  fraction)`` (1.0 = perfectly even pipeline, small = one stage
  dominates), normalized by the suite's best;
- ``resilience`` -- fault-protocol overhead when the records carry the
  resilience columns (``best_overhead_factor / overhead_factor`` with
  overhead = retried + stalled bytes over useful bytes); a neutral 1.0
  everywhere for fault-free grids, so default reports do not invent a
  resilience axis.

The **composite** is the weighted sum (:data:`DEFAULT_WEIGHTS`), and
systems are binned into tiers per suite: ``A`` within 90% of the
suite's best composite, ``B`` within 65%, else ``C``.  The report adds
per-suite winners, per-family winners (mean composite over the
family's suites) and the overall ranking; ties break in grid order
(the ``EVALUATED_PRESETS`` order the records arrive in), so the JSON
export is deterministic and golden-testable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.api.results import ResultSet, format_table

#: Layer weights of the composite score (must sum to 1).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "time": 0.4,
    "energy": 0.3,
    "balance": 0.15,
    "resilience": 0.15,
}

#: Tier thresholds, as fractions of the suite's best composite.
TIER_THRESHOLDS = (("A", 0.90), ("B", 0.65))

#: Schema tag of the exported report document.
REPORT_SCHEMA = "suite-report/v1"


def _tier(composite: float, best: float) -> str:
    for name, fraction in TIER_THRESHOLDS:
        if composite >= fraction * best:
            return name
    return "C"


def _argmax(cells: Mapping[str, Mapping[str, Any]], key: str) -> str:
    """First-encounter argmax (dict order = grid order = tie-break)."""
    return max(cells, key=lambda s: (cells[s][key], -list(cells).index(s)))


def _cell_metrics(records: List[Dict[str, Any]]) -> Dict[str, float]:
    """Raw per-(suite, system) measurements before cross-system scoring."""
    time_s = sum(r["time_s"] for r in records)
    energy_j = sum(r["energy_j"] for r in records)
    stage_time: Dict[str, float] = {}
    for r in records:
        stage_time[r["stage"]] = stage_time.get(r["stage"], 0.0) + r["time_s"]
    n_stages = max(1, len(stage_time))
    max_fraction = (
        max(stage_time.values()) / time_s if time_s > 0 else 1.0 / n_stages
    )
    balance = 1.0 / (n_stages * max_fraction) if max_fraction > 0 else 1.0
    metrics = {
        "time_s": time_s,
        "energy_j": energy_j,
        "stages": float(n_stages),
        "balance_raw": balance,
    }
    if any("retry_shuffle_b" in r for r in records):
        useful = sum(r["bytes"] for r in records)
        overhead = sum(
            r.get("retry_shuffle_b", 0.0) + r.get("backoff_stall_b", 0.0)
            for r in records
        )
        metrics["overhead_factor"] = 1.0 + (overhead / useful if useful else 0.0)
    return metrics


def score_records(
    results: ResultSet, weights: Optional[Mapping[str, float]] = None
) -> Dict[str, Any]:
    """Score a suite grid's records into the ranked report document."""
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if sorted(weights) != sorted(DEFAULT_WEIGHTS):
        raise ValueError(
            f"weights must name exactly the layers {sorted(DEFAULT_WEIGHTS)}"
        )
    total_w = sum(weights.values())
    if total_w <= 0:
        raise ValueError("weights must sum to a positive total")
    weights = {k: v / total_w for k, v in weights.items()}

    if not len(results):
        raise ValueError("no records to score; run the suites first")

    # Group the tidy rows by suite, then system, in first-appearance
    # (grid) order -- the deterministic tie-break everywhere below.
    grouped: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    families: Dict[str, str] = {}
    for record in results:
        suite = record["suite"]
        families.setdefault(suite, record["family"])
        grouped.setdefault(suite, {}).setdefault(record["system"], []).append(
            record
        )

    suites_report: Dict[str, Any] = {}
    for suite, per_system in grouped.items():
        cells = {sys: _cell_metrics(recs) for sys, recs in per_system.items()}
        best_time = min(c["time_s"] for c in cells.values())
        best_energy = min(c["energy_j"] for c in cells.values())
        best_balance = max(c["balance_raw"] for c in cells.values())
        overheads = [
            c["overhead_factor"] for c in cells.values() if "overhead_factor" in c
        ]
        best_overhead = min(overheads) if overheads else None
        scored: Dict[str, Any] = {}
        for system, cell in cells.items():
            layers = {
                "time": best_time / cell["time_s"] if cell["time_s"] else 1.0,
                "energy": (
                    best_energy / cell["energy_j"] if cell["energy_j"] else 1.0
                ),
                "balance": (
                    cell["balance_raw"] / best_balance if best_balance else 1.0
                ),
                "resilience": (
                    best_overhead / cell["overhead_factor"]
                    if best_overhead is not None and "overhead_factor" in cell
                    else 1.0
                ),
            }
            composite = sum(weights[k] * layers[k] for k in weights)
            scored[system] = {
                "time_s": cell["time_s"],
                "energy_j": cell["energy_j"],
                "layers": layers,
                "composite": composite,
            }
        best_composite = max(s["composite"] for s in scored.values())
        for entry in scored.values():
            entry["tier"] = _tier(entry["composite"], best_composite)
        suites_report[suite] = {
            "family": families[suite],
            "winner": _argmax(scored, "composite"),
            "systems": scored,
        }

    # Family and overall rollups: mean composite over member suites.
    family_scores: Dict[str, Dict[str, List[float]]] = {}
    overall: Dict[str, List[float]] = {}
    for suite, entry in suites_report.items():
        for system, cell in entry["systems"].items():
            family_scores.setdefault(entry["family"], {}).setdefault(
                system, []
            ).append(cell["composite"])
            overall.setdefault(system, []).append(cell["composite"])
    families_report = {
        family: {
            "mean_composite": {
                system: sum(vals) / len(vals) for system, vals in per_sys.items()
            },
        }
        for family, per_sys in family_scores.items()
    }
    for family, entry in families_report.items():
        entry["winner"] = _argmax(
            {s: {"composite": v} for s, v in entry["mean_composite"].items()},
            "composite",
        )
    ranking = [
        {"system": system, "score": sum(vals) / len(vals)}
        for system, vals in overall.items()
    ]
    ranking.sort(key=lambda e: -e["score"])

    return {
        "schema": REPORT_SCHEMA,
        "weights": weights,
        "suites": suites_report,
        "families": families_report,
        "ranking": ranking,
    }


def report_json(report: Mapping[str, Any], indent: int = 2) -> str:
    """Deterministic JSON text of a report (sorted keys; the golden)."""
    return json.dumps(report, indent=indent, sort_keys=True)


def render_report(report: Mapping[str, Any]) -> str:
    """The human report: per-suite tiers + family winners + ranking."""
    lines: List[str] = []
    lines.append("Per-suite scores (composite in (0, 1], tiered per suite):")
    rows = []
    for suite, entry in report["suites"].items():
        for system, cell in entry["systems"].items():
            layers = cell["layers"]
            rows.append(
                [
                    suite,
                    system,
                    f"{cell['time_s']:.4g}",
                    f"{cell['energy_j']:.4g}",
                    f"{layers['time']:.3f}",
                    f"{layers['energy']:.3f}",
                    f"{layers['balance']:.3f}",
                    f"{layers['resilience']:.3f}",
                    f"{cell['composite']:.3f}",
                    cell["tier"] + (" *" if system == entry["winner"] else ""),
                ]
            )
    lines.append(
        format_table(
            [
                "suite",
                "system",
                "time_s",
                "energy_j",
                "s_time",
                "s_energy",
                "s_balance",
                "s_resil",
                "composite",
                "tier",
            ],
            rows,
        )
    )
    lines.append("")
    lines.append("Family winners (mean composite over the family's suites):")
    lines.append(
        format_table(
            ["family", "winner", "mean_composite"],
            [
                [
                    family,
                    entry["winner"],
                    f"{entry['mean_composite'][entry['winner']]:.3f}",
                ]
                for family, entry in report["families"].items()
            ],
        )
    )
    lines.append("")
    lines.append("Overall ranking (mean composite across all suites):")
    lines.append(
        format_table(
            ["rank", "system", "score"],
            [
                [str(i + 1), entry["system"], f"{entry['score']:.3f}"]
                for i, entry in enumerate(report["ranking"])
            ],
        )
    )
    return "\n".join(lines)
