"""Benchmark suites: typed workload families, analytic query suites,
and the cross-suite ranking report.

The declarative layer above the scenario/pipeline APIs:

- :mod:`repro.suites.families` -- deterministic typed generators
  (composite packed keys, dictionary-encoded strings, tumbling-window
  streams, named Zipf skew presets);
- :mod:`repro.suites.registry` -- named multi-operator query suites
  built from those families (:data:`SUITES`);
- :mod:`repro.suites.runner` -- the cached suite x system-preset grid
  driver (:class:`SuiteRun`, :class:`SuitePoint`);
- :mod:`repro.suites.scoring` -- the layered scoring engine and the
  tiered "which architecture wins where" report.

CLI: ``python -m repro.suites run|list|score`` (see USAGE.md).

>>> from repro.suites import SUITES, FAMILIES
>>> sorted(FAMILIES) == sorted({s.family_name for s in SUITES.values()})
True
"""

from repro.suites.families import (
    ColumnSpec,
    CompositeKeyFamily,
    DictEncoder,
    FAMILY_TYPES,
    SKEW_PRESETS,
    SkewFamily,
    StringKeyFamily,
    WindowedFamily,
    pack_columns,
    product_vocabulary,
    unpack_columns,
)
from repro.suites.registry import FAMILIES, SUITES, Suite, get_suite
from repro.suites.runner import (
    DEFAULT_SCALE,
    SuiteOutcome,
    SuitePoint,
    SuiteRun,
    functional_digests,
    run_suite_point,
)
from repro.suites.scoring import (
    DEFAULT_WEIGHTS,
    render_report,
    report_json,
    score_records,
)

__all__ = [
    "ColumnSpec",
    "CompositeKeyFamily",
    "DEFAULT_SCALE",
    "DEFAULT_WEIGHTS",
    "DictEncoder",
    "FAMILIES",
    "FAMILY_TYPES",
    "SKEW_PRESETS",
    "SUITES",
    "SkewFamily",
    "StringKeyFamily",
    "Suite",
    "SuiteOutcome",
    "SuitePoint",
    "SuiteRun",
    "WindowedFamily",
    "functional_digests",
    "get_suite",
    "pack_columns",
    "product_vocabulary",
    "render_report",
    "report_json",
    "run_suite_point",
    "score_records",
    "unpack_columns",
]
