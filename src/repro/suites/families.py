"""Typed workload families: the suite subsystem's generator layer.

Every family is a frozen dataclass that deterministically materializes
named input tables (:class:`~repro.analytics.tuples.Relation`) from a
seed -- same params + same seed = byte-identical relations in every
interpreter, which is what lets suite runs flow through the
content-addressed cache/store path (``cache_params()`` spells out the
full generator identity).  Four families cover the workload axes the
six synthetic presets never did:

- :class:`CompositeKeyFamily` -- multi-column ``(region, store, day)``
  keys packed into one ``uint64`` under the columnar layer's bit-budget
  rule (:mod:`repro.columnar.kernels`): total packed width <= 62 bits,
  keeping keys below the ``2**63`` sort-sentinel bound with segment
  bits to spare.
- :class:`StringKeyFamily` -- string product names dictionary-encoded
  by :class:`DictEncoder` into dense int64 codes, so string-keyed
  analytics run on the existing integer kernels unchanged; sorted-vocab
  encoding turns name-prefix predicates into contiguous code ranges.
- :class:`WindowedFamily` -- a time-series event stream with strictly
  increasing timestamps; keys are tumbling-window ids
  (``timestamp >> window_shift``), so windowed aggregation is a plain
  group-by on the window key.
- :class:`SkewFamily` -- Zipf-popular foreign keys with named presets
  (:data:`SKEW_PRESETS`), the parameterized skew axis the two-round
  partitioning protocol is priced against.

All payloads stay below ``2**32`` so chained aggregates remain exact in
float64 (the pipeline layer's invariant).
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.analytics.tuples import Relation

#: Packed composite keys must stay below 2**63 (the sort kernels
#: reserve 2**64-1 as padding and treat keys as < 2**63); capping the
#: packed width at 62 additionally leaves room for segment bits in the
#: columnar composite codes (the bit-budget rule).
MAX_PACKED_BITS = 62

#: Payloads below 2**32 keep chained float64 aggregates exact.
PAYLOAD_BITS = 32

#: Named skew presets: Zipf exponent per family member (0.0 = uniform).
SKEW_PRESETS: Dict[str, float] = {
    "uniform": 0.0,
    "mild": 0.6,
    "zipf": 1.1,
    "hotspot": 1.6,
}


def _payloads(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, 1 << PAYLOAD_BITS, size=n, dtype=np.uint64)


# ---------------------------------------------------------------------------
# Composite multi-column keys.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a packed composite key: a name, a bit width, and
    the cardinality of its value domain (values are ``[0, cardinality)``
    and must fit the width)."""

    name: str
    bits: int
    cardinality: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= MAX_PACKED_BITS:
            raise ValueError(f"column {self.name!r}: bits must be in [1, {MAX_PACKED_BITS}]")
        if not 1 <= self.cardinality <= (1 << self.bits):
            raise ValueError(
                f"column {self.name!r}: cardinality {self.cardinality} does "
                f"not fit {self.bits} bits"
            )


def packed_bits(specs: Sequence[ColumnSpec]) -> int:
    """Total packed width; enforces the bit-budget rule."""
    total = sum(spec.bits for spec in specs)
    if total > MAX_PACKED_BITS:
        raise ValueError(
            f"composite key needs {total} bits; the packed budget is "
            f"{MAX_PACKED_BITS} (keys must stay below 2**63 and leave "
            "segment bits for the columnar composite codes)"
        )
    return total


def pack_columns(
    columns: Sequence[np.ndarray], specs: Sequence[ColumnSpec]
) -> np.ndarray:
    """Pack per-column integer arrays into one ``uint64`` key column.

    The first spec occupies the *highest* bits, so packed keys sort
    lexicographically by column order -- range partitioning on high
    order bits partitions by the leading column, and a leading-column
    predicate is a contiguous key range.
    """
    if len(columns) != len(specs):
        raise ValueError("need exactly one array per column spec")
    total = packed_bits(specs)
    packed = np.zeros(len(columns[0]) if columns else 0, dtype=np.uint64)
    shift = total
    for values, spec in zip(columns, specs):
        values = np.asarray(values, dtype=np.uint64)
        if values.size and int(values.max()) >= spec.cardinality:
            raise ValueError(
                f"column {spec.name!r} holds values >= its cardinality "
                f"{spec.cardinality}"
            )
        shift -= spec.bits
        packed |= values << np.uint64(shift)
    return packed


def unpack_columns(
    packed: np.ndarray, specs: Sequence[ColumnSpec]
) -> List[np.ndarray]:
    """Inverse of :func:`pack_columns` (column order preserved)."""
    total = packed_bits(specs)
    packed = np.asarray(packed, dtype=np.uint64)
    shift = total
    out = []
    for spec in specs:
        shift -= spec.bits
        mask = np.uint64((1 << spec.bits) - 1)
        out.append((packed >> np.uint64(shift)) & mask)
    return out


def leading_column_range(specs: Sequence[ColumnSpec], below: int) -> int:
    """The packed-key bound equivalent to ``leading column < below``.

    Because the leading column occupies the highest bits, the predicate
    is one integer compare on the packed key -- the reason analytic
    filters on composite keys stay vectorized.
    """
    total = packed_bits(specs)
    return below << (total - specs[0].bits)


@dataclass(frozen=True)
class CompositeKeyFamily:
    """Sales-style facts keyed by a packed (region, store, day) triple.

    ``dimension`` holds one row per distinct composite key (the FK
    target); ``facts`` draws its keys from the dimension, so the join
    invariant (every fact matches exactly one dimension row) holds by
    construction.
    """

    family = "composite-key"

    region_bits: int = 6
    regions: int = 40
    store_bits: int = 12
    stores: int = 3000
    day_bits: int = 9
    days: int = 364
    n_dimension: int = 2_000
    n_facts: int = 8_000

    @property
    def specs(self) -> Tuple[ColumnSpec, ...]:
        return (
            ColumnSpec("region", self.region_bits, self.regions),
            ColumnSpec("store", self.store_bits, self.stores),
            ColumnSpec("day", self.day_bits, self.days),
        )

    @property
    def key_space_bits(self) -> int:
        return packed_bits(self.specs)

    def tables(self, seed: int) -> Dict[str, Relation]:
        rng = np.random.default_rng(seed)
        domain = self.regions * self.stores * self.days
        # Draw extra combo indices to survive deduplication, then trim
        # (the make_join_workload idiom: the domain is far larger than
        # n_dimension, so 2n+16 candidates always suffice in practice).
        candidates = np.unique(
            rng.integers(0, domain, size=self.n_dimension * 2 + 16, dtype=np.int64)
        )
        if len(candidates) < self.n_dimension:
            raise ValueError("composite domain too small for the dimension size")
        combos = rng.permutation(candidates)[: self.n_dimension]
        day = combos % self.days
        store = (combos // self.days) % self.stores
        region = combos // (self.days * self.stores)
        dim_keys = pack_columns([region, store, day], self.specs)
        facts_keys = rng.choice(dim_keys, size=self.n_facts).astype(np.uint64)
        return {
            "dimension": Relation.from_arrays(
                dim_keys, _payloads(rng, self.n_dimension), "dimension"
            ),
            "facts": Relation.from_arrays(
                facts_keys, _payloads(rng, self.n_facts), "facts"
            ),
        }

    def cache_params(self) -> Dict[str, Any]:
        return dict(asdict(self), family=self.family)


# ---------------------------------------------------------------------------
# Dictionary-encoded string keys.
# ---------------------------------------------------------------------------


class DictEncoder:
    """Deterministic dictionary encoding of string keys to int64 codes.

    The vocabulary is sorted and deduplicated once; a word's code is its
    rank, so encoded relations run on the integer columnar kernels
    unchanged and *prefix* predicates over the strings become contiguous
    code ranges (:meth:`prefix_range`).
    """

    def __init__(self, vocabulary: Sequence[str]) -> None:
        vocab = sorted(set(str(w) for w in vocabulary))
        if not vocab:
            raise ValueError("vocabulary must not be empty")
        self._vocab: Tuple[str, ...] = tuple(vocab)
        self._arr = np.array(self._vocab)

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return self._vocab

    def __len__(self) -> int:
        return len(self._vocab)

    @property
    def key_space_bits(self) -> int:
        """Bits needed to hold every code (>= 1)."""
        return max(1, (len(self._vocab) - 1).bit_length())

    def encode(self, words: Sequence[str]) -> np.ndarray:
        """Codes for ``words``; unknown words raise ``KeyError``."""
        words_arr = np.asarray(list(words), dtype=self._arr.dtype)
        codes = np.searchsorted(self._arr, words_arr)
        codes = np.minimum(codes, len(self._vocab) - 1)
        bad = self._arr[codes] != words_arr
        if np.any(bad):
            unknown = sorted(set(np.asarray(words_arr)[bad].tolist()))[:3]
            raise KeyError(f"words not in vocabulary: {unknown}")
        return codes.astype(np.uint64)

    def decode(self, codes: np.ndarray) -> List[str]:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (int(codes.min()) < 0 or int(codes.max()) >= len(self)):
            raise KeyError("code out of vocabulary range")
        return self._arr[codes].tolist()

    def bound(self, word: str) -> int:
        """Number of vocabulary words lexicographically below ``word``
        -- the code bound equivalent to the predicate ``name < word``."""
        return int(np.searchsorted(self._arr, word))

    def prefix_range(self, prefix: str) -> Tuple[int, int]:
        """``(lo, hi)`` codes such that ``vocab[lo:hi]`` all start with
        ``prefix`` -- string prefix scans as integer range scans."""
        lo = int(np.searchsorted(self._arr, prefix))
        hi = int(np.searchsorted(self._arr, prefix + "￿"))
        return lo, hi


#: Deterministic product-name vocabulary components.
_ADJECTIVES = ("amber", "bold", "calm", "deep", "ember", "fine", "gold", "high")
_NOUNS = ("anchor", "basin", "cobalt", "delta", "fjord", "grove", "harbor", "inlet")


def product_vocabulary(variants: int = 24) -> List[str]:
    """``adjective-noun-NN`` names: 8 x 8 x ``variants`` distinct SKUs."""
    if variants < 1:
        raise ValueError("need at least one variant per name pair")
    return [
        f"{adj}-{noun}-{i:02d}"
        for adj, noun in itertools.product(_ADJECTIVES, _NOUNS)
        for i in range(variants)
    ]


@dataclass(frozen=True)
class StringKeyFamily:
    """Orders referencing string-named products through a dictionary.

    ``products`` is the dictionary-encoded dimension (one row per SKU,
    key = code); ``orders`` draws product codes uniformly.
    """

    family = "string-key"

    name_variants: int = 24
    n_orders: int = 8_000

    def encoder(self) -> DictEncoder:
        return DictEncoder(product_vocabulary(self.name_variants))

    @property
    def key_space_bits(self) -> int:
        return self.encoder().key_space_bits

    def tables(self, seed: int) -> Dict[str, Relation]:
        rng = np.random.default_rng(seed)
        encoder = self.encoder()
        codes = encoder.encode(encoder.vocabulary)
        orders = rng.choice(codes, size=self.n_orders).astype(np.uint64)
        return {
            "products": Relation.from_arrays(
                codes, _payloads(rng, len(codes)), "products"
            ),
            "orders": Relation.from_arrays(
                orders, _payloads(rng, self.n_orders), "orders"
            ),
        }

    def cache_params(self) -> Dict[str, Any]:
        return dict(asdict(self), family=self.family)


# ---------------------------------------------------------------------------
# Windowed / time-series event streams.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowedFamily:
    """A click-stream whose keys are tumbling-window ids.

    Timestamps increase strictly (unit gaps drawn in
    ``[1, max_gap]``), and the window id is ``timestamp >>
    window_shift`` -- so grouping by key aggregates per window, and a
    time-range filter is an integer range predicate on the key.
    """

    family = "windowed"

    n_events: int = 8_000
    max_gap: int = 7
    window_shift: int = 7

    @property
    def max_timestamp(self) -> int:
        """Upper bound on the final timestamp (params only, not data)."""
        return self.n_events * self.max_gap

    @property
    def key_space_bits(self) -> int:
        return max(1, (self.max_timestamp >> self.window_shift).bit_length())

    def tables(self, seed: int) -> Dict[str, Relation]:
        rng = np.random.default_rng(seed)
        gaps = rng.integers(1, self.max_gap + 1, size=self.n_events, dtype=np.uint64)
        timestamps = np.cumsum(gaps, dtype=np.uint64)
        windows = timestamps >> np.uint64(self.window_shift)
        return {
            "clicks": Relation.from_arrays(
                windows, _payloads(rng, self.n_events), "clicks"
            ),
        }

    def cache_params(self) -> Dict[str, Any]:
        return dict(asdict(self), family=self.family)


# ---------------------------------------------------------------------------
# Parameterized skew families.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SkewFamily:
    """FK events whose key popularity follows a named Zipf preset.

    ``preset`` picks the exponent from :data:`SKEW_PRESETS`
    (``uniform`` degenerates to equal weights), so suites sweep the
    skew *family* by name instead of hand-tuning alphas.
    """

    family = "skew-family"

    preset: str = "hotspot"
    n_users: int = 2_000
    n_events: int = 8_000
    user_key_bits: int = 32

    def __post_init__(self) -> None:
        if self.preset not in SKEW_PRESETS:
            raise ValueError(
                f"unknown skew preset {self.preset!r}; choose from "
                f"{sorted(SKEW_PRESETS)}"
            )

    @property
    def alpha(self) -> float:
        return SKEW_PRESETS[self.preset]

    @property
    def key_space_bits(self) -> int:
        return self.user_key_bits

    def tables(self, seed: int) -> Dict[str, Relation]:
        rng = np.random.default_rng(seed)
        candidates = np.unique(
            rng.integers(
                0, 1 << self.user_key_bits, size=self.n_users * 2 + 16, dtype=np.uint64
            )
        )
        if len(candidates) < self.n_users:
            raise ValueError("user key space too small for the requested users")
        user_keys = rng.permutation(candidates)[: self.n_users].astype(np.uint64)
        ranks = np.arange(1, self.n_users + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        weights /= weights.sum()
        event_keys = rng.choice(user_keys, size=self.n_events, p=weights).astype(
            np.uint64
        )
        return {
            "users": Relation.from_arrays(
                user_keys, _payloads(rng, self.n_users), "users"
            ),
            "events": Relation.from_arrays(
                event_keys, _payloads(rng, self.n_events), "events"
            ),
        }

    def cache_params(self) -> Dict[str, Any]:
        return dict(asdict(self), family=self.family)


#: Family type registry (the taxonomy docs and tests iterate).
FAMILY_TYPES = (CompositeKeyFamily, StringKeyFamily, WindowedFamily, SkewFamily)
