"""The suite driver: every suite x every system preset, cached end-to-end.

:func:`run_suite_point` evaluates one :class:`SuitePoint` (suite x
system x scale x seed x partitions) through the same three-tier path
operator scenarios use (:func:`repro.experiments.common
.run_cached_result`): an in-process memory tier (a
:class:`~repro.experiments.common.CacheTier` enrolled via
``register_cache_tier`` so ``clear_caches``/``cache_stats`` cover it), a
probe of the persistent content-addressed store (``REPRO_STORE`` /
``--store``; documents use the ``suite-run/v1`` schema of
:mod:`repro.service.codec`), and only then a real
:meth:`~repro.systems.machine.Machine.run_pipeline` execution whose
result is written back.  Fresh processes replay warm suite grids with
zero pipeline executions, and a memory hit write-throughs to a late-
configured store exactly like the operator path does.

The functional query output is summarized by a SHA-256 digest of the
final relation's bytes.  The digest is part of the stored document, so
store replays keep satisfying the functional goldens even though the
tuples themselves are not persisted -- and because generation is
deterministic, the digest is identical across presets: every system
must compute the *same answer*, only the costs differ.

:class:`SuiteRun` sweeps a grid of points into one tidy
:class:`~repro.api.results.ResultSet` (suite-major order), optionally
across a process pool exactly like :class:`repro.api.Sweep`.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.results import ResultSet
from repro.api.scenario import records_from_result
from repro.experiments import common
from repro.perf.result import SystemResult
from repro.suites.registry import SUITES, Suite, get_suite
from repro.telemetry import span as _span
from repro.telemetry import trace as _trace

#: Default cost-model scale for suite grids: 5 suites x 6 presets is a
#: 30-point grid, so suites default lighter than the single-operator
#: figures' 2000x while staying far beyond every cache level.
DEFAULT_SCALE = 100.0


class _SuiteTier(common.CacheTier):
    """The suite memory tier + its write-through bookkeeping.

    ``persisted`` mirrors ``common._PERSISTED``: (store root, key) pairs
    confirmed on disk, so repeated memory hits skip re-hashing.  It must
    drop with the tier -- ``clear_caches`` calls :meth:`clear` through
    the registered-tier hook.
    """

    def __init__(self) -> None:
        super().__init__("suite-result")
        self.persisted: set = set()

    def clear(self) -> None:
        super().clear()
        self.persisted.clear()


_SUITE_RESULTS = common.register_cache_tier(_SuiteTier())


@dataclass(frozen=True)
class SuitePoint:
    """One (suite, system, scale, seed, partitions) evaluation point."""

    suite: str
    system: str
    model_scale: float = DEFAULT_SCALE
    seed: int = 17
    num_partitions: int = common.NUM_PARTITIONS

    def __post_init__(self) -> None:
        get_suite(self.suite)  # validates the name
        if not isinstance(self.system, str):
            raise TypeError(
                "suite points evaluate named system presets; got "
                f"{type(self.system).__name__}"
            )
        common.machine_for(self.system)  # validates the preset
        if self.model_scale <= 0:
            raise ValueError("model_scale must be positive")
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")

    def records(self) -> List[Dict[str, Any]]:
        """Tidy per-phase records, one block per pipeline stage."""
        suite = get_suite(self.suite)
        outcome = run_suite_point(self)
        machine = common.machine_for(self.system)
        base = {
            "suite": self.suite,
            "family": suite.family_name,
            "system": self.system,
            "scale": float(self.model_scale),
            "seed": int(self.seed),
            "num_partitions": int(self.num_partitions),
        }
        records: List[Dict[str, Any]] = []
        for stage, _operator, _table, result in outcome.stages:
            records.extend(
                records_from_result(machine, result, dict(base, stage=stage))
            )
        return records

    def run(self) -> ResultSet:
        return ResultSet(self.records())


@dataclass
class SuiteOutcome:
    """One evaluated suite run: per-stage results + the answer digest."""

    suite: str
    family: str
    system: str
    stages: List[Tuple[str, str, str, SystemResult]]
    output_digest: str

    @property
    def runtime_s(self) -> float:
        return sum(
            sum(p.time_s for p in result.phase_perfs)
            for _, _, _, result in self.stages
        )

    @property
    def energy_j(self) -> float:
        return sum(result.energy.total_j for _, _, _, result in self.stages)


def relation_digest(relation) -> str:
    """Content digest of a relation's exact tuple bytes."""
    return hashlib.sha256(relation.data.tobytes()).hexdigest()


def suite_store_payload(point: SuitePoint) -> Dict[str, Any]:
    """The canonical key payload naming one suite run (store twin of
    the memory tier's tuple key; the suite's full ``cache_params`` ride
    along so edited generators or plans can never replay stale runs)."""
    return {
        "kind": "suite-result",
        "suite": get_suite(point.suite).cache_params(),
        "system": {"preset": point.system},
        "scale": float(point.model_scale),
        "seed": int(point.seed),
        "num_partitions": int(point.num_partitions),
    }


def _execute(point: SuitePoint) -> SuiteOutcome:
    """Really run the suite's pipeline (the cache-miss path)."""
    suite = get_suite(point.suite)
    plan = suite.build_plan(seed=point.seed, num_partitions=point.num_partitions)
    machine = common.machine_for(point.system)
    perf = machine.run_pipeline(plan, scale_factor=point.model_scale)
    stages = [
        (sp.stage, sp.operator, sp.output_table, sp.result) for sp in perf.stages
    ]
    final = stages[-1][3].output
    return SuiteOutcome(
        suite=point.suite,
        family=suite.family_name,
        system=point.system,
        stages=stages,
        output_digest=relation_digest(final),
    )


def _store_roundtrip(store, point: SuitePoint) -> SuiteOutcome:
    """Probe the persistent tier; execute + write back on a miss."""
    from repro.service.codec import suite_run_from_document, suite_run_to_document
    from repro.service.store import digest_payload

    digest = digest_payload(suite_store_payload(point))
    document = store.get(digest)
    if document is not None:
        try:
            restored = suite_run_from_document(document)
            return SuiteOutcome(
                suite=restored["suite"],
                family=restored["family"],
                system=restored["system"],
                stages=restored["stages"],
                output_digest=restored["output_digest"],
            )
        except (KeyError, TypeError, ValueError):
            pass  # schema drift or hand-edited entry: treat as a miss
    outcome = _execute(point)
    store.put(
        digest,
        suite_run_to_document(
            outcome.suite,
            outcome.family,
            outcome.system,
            outcome.stages,
            outcome.output_digest,
        ),
    )
    return outcome


def run_suite_point(point: SuitePoint) -> SuiteOutcome:
    """Evaluate one point through memory tier -> store -> pipeline."""
    tracer = _trace.active_tracer()
    if tracer is not None:
        with tracer.span(
            "suite_point",
            category="suites",
            suite=point.suite,
            system=point.system,
            scale=float(point.model_scale),
        ):
            return _run_suite_point(point)
    return _run_suite_point(point)


def _run_suite_point(point: SuitePoint) -> SuiteOutcome:
    key = (
        "suite-result",
        point.suite,
        point.system,
        float(point.model_scale),
        int(point.seed),
        int(point.num_partitions),
    )
    store = common.active_store()

    if common.cache_enabled():
        cached = _SUITE_RESULTS.get(key)
        if cached is not common._MISS:
            marker = (str(store.root), key) if store is not None else None
            if marker is not None and marker not in _SUITE_RESULTS.persisted:
                # Write-through: persist memory-tier hits computed before
                # the store was configured (same healing the operator
                # cache does).
                from repro.service.codec import suite_run_to_document
                from repro.service.store import digest_payload

                digest = digest_payload(suite_store_payload(point))
                if not store.contains(digest):
                    store.put(
                        digest,
                        suite_run_to_document(
                            cached.suite,
                            cached.family,
                            cached.system,
                            cached.stages,
                            cached.output_digest,
                        ),
                    )
                _SUITE_RESULTS.persisted.add(marker)
            return cached

    if store is not None:
        outcome = _store_roundtrip(store, point)
        _SUITE_RESULTS.persisted.add((str(store.root), key))
    else:
        outcome = _execute(point)

    if common.cache_enabled():
        _SUITE_RESULTS.put(key, outcome)
    return outcome


# ---------------------------------------------------------------------------
# Grid driver.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SuiteRun:
    """A grid of suite points: suites x system presets, one batch.

    Mirrors :class:`repro.api.Sweep`: ``run(jobs=N)`` fans points over a
    process pool, records return in grid (suite-major) order either
    way, so equal grids export byte-identical results regardless of
    worker count.
    """

    suites: Tuple[str, ...] = tuple(SUITES)
    systems: Tuple[str, ...] = common.ALL_SYSTEMS
    model_scale: float = DEFAULT_SCALE
    seed: int = 17
    num_partitions: int = common.NUM_PARTITIONS

    def __post_init__(self) -> None:
        for name in ("suites", "systems"):
            value = getattr(self, name)
            if isinstance(value, str):
                value = (value,)
            if not value:
                raise ValueError(f"suite-run axis {name!r} must not be empty")
            object.__setattr__(self, name, tuple(value))

    @property
    def size(self) -> int:
        return len(self.suites) * len(self.systems)

    def points(self) -> List[SuitePoint]:
        return [
            SuitePoint(
                suite=suite,
                system=system,
                model_scale=self.model_scale,
                seed=self.seed,
                num_partitions=self.num_partitions,
            )
            for suite in self.suites
            for system in self.systems
        ]

    def outcomes(self) -> List[SuiteOutcome]:
        """Every point's :class:`SuiteOutcome`, grid order (sequential;
        points hit the shared cache, so this is cheap after ``run``)."""
        return [run_suite_point(point) for point in self.points()]

    def run(self, jobs: int = 1) -> ResultSet:
        """Evaluate the whole grid into one tidy :class:`ResultSet`."""
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        points = self.points()
        with _span(
            "suite_run", category="suites", points=len(points), jobs=jobs
        ):
            if jobs == 1 or len(points) <= 1:
                records: List[Dict[str, Any]] = []
                for point in points:
                    records.extend(point.records())
                return ResultSet(records)
            tracer = _trace.active_tracer()
            payloads = [
                (p, common.cache_enabled(), common.store_path(),
                 tracer is not None)
                for p in points
            ]
            store = common.active_store()
            records = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for chunk, store_delta, spans in pool.map(
                    _point_worker, payloads
                ):
                    records.extend(chunk)
                    if store is not None and store_delta:
                        store.merge_stats(store_delta)
                    if tracer is not None and spans:
                        tracer.adopt(
                            spans, parent_id=tracer.current_span_id()
                        )
            return ResultSet(records)


def _point_worker(
    payload,
) -> Tuple[
    List[Dict[str, Any]], Optional[Dict[str, int]], Optional[List[Dict[str, Any]]]
]:
    """Process-pool entry point, mirroring ``api.sweep._sweep_worker``:
    (point, use_cache, store path[, trace]) -> (records, store-counter
    delta, worker spans)."""
    point, use_cache, store = payload[:3]
    trace_on = bool(payload[3]) if len(payload) > 3 else False
    common.set_cache_enabled(use_cache)
    if store != common.store_path():
        common.configure_store(store)
    handle = common.active_store()
    before = handle.counters() if handle is not None else None
    spans = None
    if trace_on:
        with _trace.tracing() as tracer:
            with tracer.span(
                "pool_worker",
                category="suites",
                suite=point.suite,
                system=point.system,
            ):
                records = point.records()
            spans = tracer.to_dicts()
    else:
        records = point.records()
    if handle is None:
        return records, None, spans
    after = handle.counters()
    return records, {k: after[k] - before[k] for k in before}, spans


def functional_digests(
    suites: Tuple[str, ...] = tuple(SUITES),
    seed: int = 17,
    num_partitions: int = common.NUM_PARTITIONS,
) -> Dict[str, str]:
    """Per-suite digest of the final answer relation (system-agnostic).

    Executes each suite's plan functionally once (CPU preset, unit
    scale) -- every preset computes the same answer bytes, which the
    cross-preset digest test asserts directly.
    """
    digests = {}
    for name in suites:
        plan = get_suite(name).build_plan(seed=seed, num_partitions=num_partitions)
        machine = common.machine_for("cpu")
        run = plan.execute(machine.variant(num_partitions))
        digests[name] = relation_digest(run.output)
    return digests
