"""Suite-subsystem CLI: ``python -m repro.suites``.

Usage::

    python -m repro.suites list                  # registry + families
    python -m repro.suites run --all --jobs 4    # full grid, process pool
    python -m repro.suites run --suite skew-hotspot --system cpu \\
        --system mondrian --json out.json        # subset grid, export
    python -m repro.suites score                 # ranked cross-suite report
    python -m repro.suites score --json report.json --weight time=0.6 \\
        --weight energy=0.4 --weight balance=0 --weight resilience=0

``run`` evaluates suites x system presets into tidy per-phase records
(the same shape ``python -m repro.api`` emits, plus ``suite`` /
``family`` / ``stage`` columns); ``score`` feeds that grid to the
layered scoring engine and prints the tiered "which architecture wins
where" report.  Both commands share the content-addressed caches and
the persistent store (``--store`` / ``$REPRO_STORE``), so a score
immediately after a run replays every point without re-simulating.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.__main__ import export_result_set
from repro.api.results import format_table
from repro.experiments import common
from repro.suites.registry import FAMILIES, SUITES, get_suite
from repro.suites.runner import DEFAULT_SCALE, SuiteRun
from repro.suites.scoring import (
    DEFAULT_WEIGHTS,
    render_report,
    report_json,
    score_records,
)
from repro.telemetry import trace as _trace

#: Columns of ``run``'s human-readable summary (exports keep all).
SUMMARY_COLUMNS = ("suite", "family", "system", "stage", "phase", "time_s",
                   "energy_j")


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The grid axes ``run`` and ``score`` share."""
    parser.add_argument(
        "--suite", action="append", default=None, metavar="NAME",
        help=f"add one suite to the grid (repeatable; choices: "
             f"{', '.join(SUITES)}; default: all)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run every registered suite (the default when no --suite is "
             "given; spelled out for scripts)",
    )
    parser.add_argument(
        "--system", action="append", default=None, metavar="NAME",
        help="add one system preset to the grid (repeatable; default: all "
             f"{len(common.ALL_SYSTEMS)} evaluated presets)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, metavar="X",
        help=f"cost-model scale factor (default {DEFAULT_SCALE:.0f}x)",
    )
    parser.add_argument(
        "--seed", type=int, default=17, metavar="N",
        help="workload-generation seed (default 17)",
    )
    parser.add_argument(
        "--partitions", type=int, default=common.NUM_PARTITIONS, metavar="N",
        help=f"memory partitions per run (default {common.NUM_PARTITIONS})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate grid points in a pool of N worker processes "
             "(records stay in grid order; exports are byte-identical to "
             "--jobs 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared in-memory suite/result memoization",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persistent content-addressed result store: warm suite runs "
             "replay without simulation, misses are written back "
             "(default: $REPRO_STORE if set)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record telemetry spans for the grid run and write them to "
             "FILE as Chrome trace_event JSON (chrome://tracing / "
             "Perfetto); exports are byte-identical with or without "
             "tracing",
    )


def build_parser() -> argparse.ArgumentParser:
    """The suites CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.suites",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the suite registry and its families")

    run = sub.add_parser(
        "run", help="evaluate suites x system presets into tidy records"
    )
    _add_grid_arguments(run)
    run.add_argument(
        "--json", metavar="PATH",
        help="write the records as JSON to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--csv", metavar="PATH",
        help="write the records as CSV to PATH ('-' for stdout)",
    )

    score = sub.add_parser(
        "score", help="rank the systems across the suite grid"
    )
    _add_grid_arguments(score)
    score.add_argument(
        "--weight", action="append", default=None, metavar="LAYER=W",
        help="override one scoring layer's weight (repeatable; layers: "
             f"{', '.join(DEFAULT_WEIGHTS)}; weights are renormalized)",
    )
    score.add_argument(
        "--json", metavar="PATH",
        help="write the report document as JSON to PATH ('-' for stdout)",
    )
    return parser


def _build_grid(args) -> SuiteRun:
    suites = tuple(args.suite) if args.suite else tuple(SUITES)
    for name in suites:
        get_suite(name)  # fail at the CLI on a typo, not mid-grid
    systems = tuple(args.system) if args.system else common.ALL_SYSTEMS
    return SuiteRun(
        suites=suites,
        systems=systems,
        model_scale=args.scale,
        seed=args.seed,
        num_partitions=args.partitions,
    )


def _parse_weights(entries):
    if not entries:
        return None
    weights = dict(DEFAULT_WEIGHTS)
    for entry in entries:
        layer, _, value = entry.partition("=")
        if layer not in DEFAULT_WEIGHTS or not value:
            raise SystemExit(
                f"--weight expects LAYER=W with LAYER one of "
                f"{sorted(DEFAULT_WEIGHTS)}; got {entry!r}"
            )
        try:
            weights[layer] = float(value)
        except ValueError:
            raise SystemExit(f"--weight {entry!r}: {value!r} is not a number")
    return weights


def _cmd_list() -> None:
    rows = [
        [
            suite.name,
            suite.family_name,
            str(len(suite.stage_names())),
            " -> ".join(suite.stage_names()),
        ]
        for suite in SUITES.values()
    ]
    print(format_table(["suite", "family", "stages", "plan"], rows))
    print(f"\n{len(SUITES)} suites across {len(FAMILIES)} families: "
          f"{', '.join(FAMILIES)}")


def _run_grid(args) -> "tuple":
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.no_cache:
        common.set_cache_enabled(False)
    if args.store:
        common.configure_store(args.store)
    grid = _build_grid(args)
    tracer = _trace.install_tracer() if getattr(args, "trace", None) else None
    try:
        results = grid.run(jobs=args.jobs)
    finally:
        if tracer is not None:
            _trace.uninstall_tracer()
            events = tracer.export_chrome(args.trace)
            print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    store_stats = common.store_stats()
    if store_stats is not None:
        print(
            "store: hits={hits} misses={misses} puts={puts} "
            "evictions={evictions} entries={entries}".format(**store_stats),
            file=sys.stderr,
        )
    return grid, results


def _cmd_run(args) -> None:
    grid, results = _run_grid(args)
    if export_result_set(results, args.json, args.csv):
        return
    print(f"SuiteRun: {grid.size} points -> {len(results)} records\n")
    rows = [
        [
            r["suite"],
            r["family"],
            r["system"],
            r["stage"],
            r["phase"],
            f"{r['time_s'] * 1e3:.3f} ms",
            f"{r['energy_j']:.4f} J",
        ]
        for r in results
    ]
    print(format_table(list(SUMMARY_COLUMNS), rows))


def _cmd_score(args) -> None:
    _, results = _run_grid(args)
    report = score_records(results, weights=_parse_weights(args.weight))
    if args.json:
        text = report_json(report)
        if args.json == "-":
            print(text)
        else:
            from pathlib import Path

            Path(args.json).write_text(text + "\n")
            print(f"wrote report to {args.json}", file=sys.stderr)
        return
    print(render_report(report))


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list()
    elif args.command == "run":
        _cmd_run(args)
    else:
        _cmd_score(args)


if __name__ == "__main__":
    main()
