"""The suite registry: named analytic query suites over typed families.

A :class:`Suite` binds one typed workload family
(:mod:`repro.suites.families`) to a TPC-H-style multi-operator plan
(filter -> partition -> join -> group-by shapes built from the pipeline
layer's stages).  ``build_plan(seed, num_partitions)`` materializes the
family's tables deterministically and returns an executable
:class:`~repro.pipeline.plan.QueryPlan`; the runner sweeps every suite
across the system presets and the scoring layer ranks the outcomes.

Suites are versioned through ``cache_params()``: the full generator
parameterization plus a per-suite plan tag feed the content-addressed
cache/store key, so editing a suite's plan or sizes can never replay a
stale stored run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.pipeline.plan import QueryPlan
from repro.pipeline.stage import (
    FilterStage,
    GroupByStage,
    JoinStage,
    PartitionStage,
    PipelineStage,
    SortStage,
)
from repro.suites.families import (
    CompositeKeyFamily,
    SkewFamily,
    StringKeyFamily,
    WindowedFamily,
    leading_column_range,
)


@dataclass(frozen=True)
class Suite:
    """One named analytic suite: a typed family plus its query plan."""

    name: str
    family: Any  # a families.* dataclass instance
    description: str
    build_stages: Callable[[Any], List[PipelineStage]]
    plan_version: str = "v1"

    @property
    def family_name(self) -> str:
        return self.family.family

    def build_plan(self, seed: int = 17, num_partitions: int = 64) -> QueryPlan:
        """Deterministically materialize tables and assemble the plan."""
        return QueryPlan(
            name=self.name,
            tables=self.family.tables(seed),
            stages=self.build_stages(self.family),
            num_partitions=num_partitions,
            key_space_bits=self.family.key_space_bits,
            description=self.description,
        )

    def stage_names(self) -> List[str]:
        """The plan's stage names without materializing any tables."""
        return [stage.name for stage in self.build_stages(self.family)]

    def cache_params(self) -> Dict[str, Any]:
        """The content-key payload naming this suite's exact identity."""
        return {
            "suite": self.name,
            "plan_version": self.plan_version,
            "family": self.family.cache_params(),
        }


# ---------------------------------------------------------------------------
# Plan builders (one per suite; families arrive as the argument so the
# same builder can serve every preset of a parameterized family).
# ---------------------------------------------------------------------------


def _composite_stages(family: CompositeKeyFamily) -> List[PipelineStage]:
    bound = leading_column_range(family.specs, family.regions // 2)
    return [
        FilterStage("facts", "region_facts", lambda keys: keys < bound,
                    name="filter:region"),
        PartitionStage("region_facts", "facts_shuffled"),
        JoinStage("dimension", "facts_shuffled", "enriched"),
        GroupByStage("enriched", "sales_per_key", aggregate="sum"),
    ]


def _dict_stages(family: StringKeyFamily) -> List[PipelineStage]:
    # Sorted-vocabulary encoding turns the name predicate "starts below
    # 'f'" into one integer compare on the codes.
    bound = family.encoder().bound("f")
    return [
        FilterStage("orders", "early_skus", lambda keys: keys < bound,
                    name="filter:prefix"),
        JoinStage("products", "early_skus", "enriched"),
        GroupByStage("enriched", "spend_per_sku", aggregate="sum"),
        SortStage("spend_per_sku", "ranked_skus"),
    ]


def _windowed_stages(family: WindowedFamily) -> List[PipelineStage]:
    warmup = 4  # drop the stream's first windows (partial observations)
    return [
        FilterStage("clicks", "steady_clicks", lambda keys: keys >= warmup,
                    name="filter:warmup"),
        PartitionStage("steady_clicks", "clicks_shuffled"),
        GroupByStage("clicks_shuffled", "per_window", aggregate="avg"),
        SortStage("per_window", "timeline"),
    ]


def _skew_stages(family: SkewFamily) -> List[PipelineStage]:
    return [
        PartitionStage("events", "events_balanced", skew_aware=True),
        JoinStage("users", "events_balanced", "enriched"),
        GroupByStage("enriched", "spend_per_user", aggregate="sum"),
    ]


#: The registry, in report order: >= one suite per family, with the
#: skew family shipped at two named presets to show parameterization.
SUITES: Dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite(
            name="composite-sales",
            family=CompositeKeyFamily(),
            description="(region, store, day) packed-key sales rollup: "
                        "filter -> partition -> join -> group-by",
            build_stages=_composite_stages,
        ),
        Suite(
            name="dict-products",
            family=StringKeyFamily(),
            description="dictionary-encoded SKU analytics: prefix filter "
                        "-> join -> group-by -> rank",
            build_stages=_dict_stages,
        ),
        Suite(
            name="windowed-clicks",
            family=WindowedFamily(),
            description="tumbling-window stream aggregation: warmup filter "
                        "-> partition -> per-window avg -> sort",
            build_stages=_windowed_stages,
        ),
        Suite(
            name="skew-mild",
            family=SkewFamily(preset="mild"),
            description="mild-Zipf FK events: skew-aware partition -> join "
                        "-> group-by",
            build_stages=_skew_stages,
        ),
        Suite(
            name="skew-hotspot",
            family=SkewFamily(preset="hotspot"),
            description="hotspot-Zipf FK events: skew-aware partition -> "
                        "join -> group-by",
            build_stages=_skew_stages,
        ),
    )
}

#: Distinct family names, registry order (the acceptance gate's axis).
FAMILIES: Tuple[str, ...] = tuple(
    dict.fromkeys(suite.family_name for suite in SUITES.values())
)


def get_suite(name: str) -> Suite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; choose from {sorted(SUITES)}"
        ) from None
