"""Vault memory: 8 banks behind an FR-FCFS scheduler and a shared data bus.

The vault controller scheduler implements First-Ready, First-Come
First-Served over a bounded reorder window (paper section 4.1.2 notes
that such windows are too short to recover row locality from interleaved
shuffle traffic -- the event model lets us demonstrate exactly that).

The shared TSV data bus enforces the vault's 8 GB/s peak: each access
occupies the bus for ``size / peak_bw`` after its bank completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config.dram import DramTiming, HmcGeometry
from repro.dram.bank import Bank, BankStats


@dataclass(frozen=True)
class VaultRequest:
    """One memory request addressed to this vault."""

    arrival_ns: float
    addr: int  # vault-local byte offset
    size_b: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.addr < 0 or self.size_b <= 0:
            raise ValueError("bad request geometry")


@dataclass
class VaultStats:
    """Aggregated statistics across the vault's banks plus bus activity."""

    bank: BankStats = field(default_factory=BankStats)
    requests: int = 0
    bus_bytes: int = 0
    last_completion_ns: float = 0.0
    first_arrival_ns: Optional[float] = None

    @property
    def activations(self) -> int:
        return self.bank.activations

    @property
    def row_hit_rate(self) -> Optional[float]:
        return self.bank.row_hit_rate

    def achieved_bw_bps(self) -> Optional[float]:
        if self.first_arrival_ns is None or self.last_completion_ns <= self.first_arrival_ns:
            return None
        window_s = (self.last_completion_ns - self.first_arrival_ns) * 1e-9
        return self.bus_bytes / window_s


class VaultMemory:
    """Event-accurate model of one vault (banks + scheduler + bus)."""

    def __init__(
        self,
        geometry: HmcGeometry,
        timing: DramTiming,
        scheduler_window: int = 16,
    ) -> None:
        if scheduler_window < 1:
            raise ValueError("scheduler window must be >= 1")
        self._geo = geometry
        self._timing = timing
        self._window = scheduler_window
        self._banks: List[Bank] = [
            Bank(timing=timing, row_size_b=geometry.row_size_b)
            for _ in range(geometry.banks_per_vault)
        ]
        self._bus_free_ns = 0.0
        self.stats = VaultStats()

    @property
    def banks(self) -> List[Bank]:
        return self._banks

    @property
    def scheduler_window(self) -> int:
        return self._window

    def _locate(self, addr: int) -> Tuple[int, int]:
        """Vault-local address -> (bank, row)."""
        global_row = addr // self._geo.row_size_b
        bank = global_row % self._geo.banks_per_vault
        row = global_row // self._geo.banks_per_vault
        return bank, row

    def _split_rows(self, req: VaultRequest) -> List[Tuple[int, int, int]]:
        """Split a request at row boundaries -> [(bank, row, size), ...]."""
        pieces = []
        addr, remaining = req.addr, req.size_b
        row_size = self._geo.row_size_b
        while remaining > 0:
            bank, row = self._locate(addr)
            in_row = min(remaining, row_size - addr % row_size)
            pieces.append((bank, row, in_row))
            addr += in_row
            remaining -= in_row
        return pieces

    def run_trace(self, requests: List[VaultRequest]) -> float:
        """Serve a request trace with FR-FCFS scheduling.

        Requests are considered in arrival order; within the leading
        ``scheduler_window`` pending requests, one whose first piece hits
        an open row is prioritised (first-ready), otherwise the oldest
        request is served (FCFS).  Returns the completion time of the last
        request.
        """
        pending = sorted(requests, key=lambda r: r.arrival_ns)
        now_ns = 0.0
        while pending:
            # The scheduler reorders among requests that have arrived by
            # the time the controller becomes free; service backlog (the
            # completion clock) is what fills the window.
            now_ns = max(now_ns, pending[0].arrival_ns)
            window = [r for r in pending[: self._window] if r.arrival_ns <= now_ns]
            if not window:
                window = [pending[0]]
            chosen = None
            for req in window:
                bank_idx, row = self._locate(req.addr)
                if self._banks[bank_idx].is_open(row):
                    chosen = req
                    break
            if chosen is None:
                chosen = window[0]
            pending.remove(chosen)
            completion = self._serve(chosen, now_ns)
            now_ns = max(now_ns, completion)
        return self.stats.last_completion_ns

    def _serve(self, req: VaultRequest, now_ns: float) -> float:
        start_ns = max(now_ns, req.arrival_ns)
        if self.stats.first_arrival_ns is None:
            self.stats.first_arrival_ns = req.arrival_ns
        completion = start_ns
        for bank_idx, row, size in self._split_rows(req):
            bank_done = self._banks[bank_idx].serve(start_ns, row, size, req.is_write)
            # The shared bus transfers the piece after the bank produces it.
            bus_start = max(bank_done, self._bus_free_ns)
            transfer_ns = size / self._geo.vault_peak_bw_bps * 1e9
            self._bus_free_ns = bus_start + transfer_ns
            completion = max(completion, self._bus_free_ns)
        self.stats.requests += 1
        self.stats.bus_bytes += req.size_b
        self.stats.last_completion_ns = max(self.stats.last_completion_ns, completion)
        self._refresh_bank_totals()
        return completion

    def _refresh_bank_totals(self) -> None:
        total = BankStats()
        for bank in self._banks:
            total.merge(bank.stats)
        self.stats.bank = total

    def reset_timing(self) -> None:
        """Close all rows and rewind clocks, keeping statistics."""
        for bank in self._banks:
            bank.reset()
        self._bus_free_ns = 0.0
