"""Closed-form DRAM estimators for the operators' access-pattern classes.

Three patterns cover everything the data operators generate:

- :class:`SequentialStream` -- streaming reads/writes of a contiguous
  region (mergesort passes, scans, permutable shuffle writes).  Every row
  is activated exactly once.
- :class:`RandomAccesses` -- uniformly random accesses over a region
  (hash-table probes, addressed histogram scatter).  Rows effectively
  never stay open across touches when the region is large.
- :class:`InterleavedWrites` -- the partitioning-phase destination
  traffic: ``num_sources`` senders round-robin object-sized writes into
  disjoint sub-buffers of one vault (paper figure 2).  Whether a row
  survives between two same-stream writes depends on the number of banks
  and on the vault scheduler's reorder window.

Every estimator returns a :class:`PatternEstimate` with the quantities the
energy model (activations, bytes) and the performance model (average
latency, device-side sustainable bandwidth) consume.  The test suite
validates each estimator against the event-accurate
:class:`repro.dram.vault.VaultMemory` on randomized traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from repro.config.dram import DramTiming, HmcGeometry


@dataclass(frozen=True)
class SequentialStream:
    """Contiguous streaming access of ``total_b`` bytes, ``access_b`` at a
    time (``access_b`` defaults to a full row)."""

    total_b: int
    access_b: int = 256
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.total_b < 0 or self.access_b <= 0:
            raise ValueError("bad stream geometry")


@dataclass(frozen=True)
class RandomAccesses:
    """``count`` uniformly random accesses of ``access_b`` bytes over a
    region of ``region_b`` bytes."""

    count: int
    access_b: int
    region_b: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.count < 0 or self.access_b <= 0 or self.region_b <= 0:
            raise ValueError("bad random-access geometry")


@dataclass(frozen=True)
class InterleavedWrites:
    """Partitioning-phase destination traffic into one vault.

    ``num_sources`` streams write ``object_b``-sized objects, interleaved
    round-robin by the memory network, each stream into its own
    contiguous sub-buffer.  ``permutable`` selects the Mondrian vault
    controller behaviour (redirect every marked write to the sequential
    tail of the destination buffer).
    """

    total_b: int
    object_b: int
    num_sources: int
    permutable: bool

    def __post_init__(self) -> None:
        if self.total_b < 0 or self.object_b <= 0 or self.num_sources < 1:
            raise ValueError("bad interleaved-write geometry")


AccessPattern = Union[SequentialStream, RandomAccesses, InterleavedWrites]


@dataclass(frozen=True)
class PatternEstimate:
    """What a pattern costs at the DRAM device."""

    accesses: int
    activations: int
    bytes: int
    row_hit_rate: float
    avg_latency_ns: float
    sustainable_bw_bps: float

    @property
    def row_misses(self) -> int:
        return self.activations

    @property
    def row_hits(self) -> int:
        return self.accesses - self.activations

    def scaled(self, factor: float) -> "PatternEstimate":
        """Linearly scale event counts (for dataset-size extrapolation)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return PatternEstimate(
            accesses=int(round(self.accesses * factor)),
            activations=int(round(self.activations * factor)),
            bytes=int(round(self.bytes * factor)),
            row_hit_rate=self.row_hit_rate,
            avg_latency_ns=self.avg_latency_ns,
            sustainable_bw_bps=self.sustainable_bw_bps,
        )


def _bank_random_bw_bps(geo: HmcGeometry, timing: DramTiming, access_b: int) -> float:
    """Device-side throughput of row-missing accesses.

    Each miss occupies a bank for one row cycle (tRC); the vault's banks
    work in parallel, and the shared bus caps the result at peak.
    """
    per_bank_rate = 1e9 / timing.row_cycle_ns  # misses per second per bank
    bw = per_bank_rate * geo.banks_per_vault * access_b
    return min(bw, geo.vault_peak_bw_bps)


def _estimate_sequential(
    pattern: SequentialStream, geo: HmcGeometry, timing: DramTiming
) -> PatternEstimate:
    rows = math.ceil(pattern.total_b / geo.row_size_b) if pattern.total_b else 0
    accesses = math.ceil(pattern.total_b / pattern.access_b) if pattern.total_b else 0
    activations = min(rows, accesses) if accesses else 0
    hit_rate = 1.0 - activations / accesses if accesses else 0.0
    avg_latency = (
        hit_rate * timing.row_hit_latency_ns
        + (1.0 - hit_rate) * timing.row_miss_latency_ns
    )
    # Streaming engages all banks; internal rate far exceeds the bus, so
    # the vault bus peak is sustainable.
    return PatternEstimate(
        accesses=accesses,
        activations=activations,
        bytes=pattern.total_b,
        row_hit_rate=hit_rate,
        avg_latency_ns=avg_latency,
        sustainable_bw_bps=geo.vault_peak_bw_bps,
    )


def _estimate_random(
    pattern: RandomAccesses, geo: HmcGeometry, timing: DramTiming, scheduler_window: int
) -> PatternEstimate:
    rows_in_region = max(1, pattern.region_b // geo.row_size_b)
    # A row stays open in its bank; a random access hits iff its row is
    # one of the currently open ones, or a same-row request co-resides in
    # the scheduler window.
    p_open = min(1.0, geo.banks_per_vault / rows_in_region)
    p_window = min(1.0, scheduler_window / rows_in_region)
    hit_rate = min(1.0, p_open + p_window)
    # Accesses covering more than one row pay extra activations.
    rows_per_access = math.ceil(pattern.access_b / geo.row_size_b)
    activations = int(round(pattern.count * (1.0 - hit_rate))) * rows_per_access
    avg_latency = (
        hit_rate * timing.row_hit_latency_ns
        + (1.0 - hit_rate) * timing.row_miss_latency_ns
    )
    hit_bw = geo.vault_peak_bw_bps
    miss_bw = _bank_random_bw_bps(geo, timing, pattern.access_b)
    # Harmonic blend: fraction of bytes at each rate.
    if hit_rate >= 1.0:
        bw = hit_bw
    else:
        bw = 1.0 / (hit_rate / hit_bw + (1.0 - hit_rate) / miss_bw)
    return PatternEstimate(
        accesses=pattern.count,
        activations=activations,
        bytes=pattern.count * pattern.access_b,
        row_hit_rate=hit_rate,
        avg_latency_ns=avg_latency,
        sustainable_bw_bps=bw,
    )


def _estimate_interleaved(
    pattern: InterleavedWrites, geo: HmcGeometry, timing: DramTiming, scheduler_window: int
) -> PatternEstimate:
    objects = math.ceil(pattern.total_b / pattern.object_b) if pattern.total_b else 0
    rows = math.ceil(pattern.total_b / geo.row_size_b) if pattern.total_b else 0
    if pattern.permutable or pattern.object_b >= geo.row_size_b:
        # The vault controller writes arrivals sequentially (or the
        # objects are at least row-sized, paper section 5.3): each row is
        # activated exactly once.
        seq = SequentialStream(
            total_b=pattern.total_b, access_b=pattern.object_b, is_write=True
        )
        return _estimate_sequential(seq, geo, timing)

    # Addressed writes: consecutive objects of one stream land in the same
    # row (a row holds row_size/object_b objects) but arrive separated by
    # ~num_sources interleaved messages.  Two recovery mechanisms:
    #
    # - the FR-FCFS window groups ``window // separation`` same-row writes
    #   per row visit (it sees that many of the stream's writes at once);
    # - between visits the row survives in its bank only if none of the
    #   other concurrent streams touched that bank meanwhile, i.e. with
    #   probability (1 - 1/banks)^(num_sources - 1).
    #
    # Cross-validated against the event-accurate vault model in
    # tests/test_dram.py (within 2x across 4..63 sources).
    separation = pattern.num_sources
    objects_per_row = max(1, geo.row_size_b // pattern.object_b)
    group = min(objects_per_row, max(1, scheduler_window // separation))
    visits_per_row = math.ceil(objects_per_row / group)
    p_survive = (1.0 - 1.0 / geo.banks_per_vault) ** (pattern.num_sources - 1)
    acts_per_row = 1.0 + (visits_per_row - 1) * (1.0 - p_survive)
    activations = min(objects, int(round(rows * acts_per_row)))
    hit_rate = 1.0 - activations / objects if objects else 0.0
    avg_latency = (
        hit_rate * timing.row_hit_latency_ns
        + (1.0 - hit_rate) * timing.row_miss_latency_ns
    )
    hit_bw = geo.vault_peak_bw_bps
    miss_bw = _bank_random_bw_bps(geo, timing, pattern.object_b)
    if hit_rate >= 1.0:
        bw = hit_bw
    else:
        bw = 1.0 / (hit_rate / hit_bw + (1.0 - hit_rate) / miss_bw)
    return PatternEstimate(
        accesses=objects,
        activations=activations,
        bytes=pattern.total_b,
        row_hit_rate=hit_rate,
        avg_latency_ns=avg_latency,
        sustainable_bw_bps=bw,
    )


def estimate_pattern(
    pattern: AccessPattern,
    geometry: HmcGeometry,
    timing: DramTiming,
    scheduler_window: int = 16,
) -> PatternEstimate:
    """Estimate DRAM-side cost of one access pattern at one vault."""
    if isinstance(pattern, SequentialStream):
        return _estimate_sequential(pattern, geometry, timing)
    if isinstance(pattern, RandomAccesses):
        return _estimate_random(pattern, geometry, timing, scheduler_window)
    if isinstance(pattern, InterleavedWrites):
        return _estimate_interleaved(pattern, geometry, timing, scheduler_window)
    raise TypeError(f"unknown access pattern type: {type(pattern).__name__}")
