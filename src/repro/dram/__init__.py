"""HMC-style stacked-DRAM model.

Two complementary models live here:

- :mod:`repro.dram.bank` / :mod:`repro.dram.vault`: an event-accurate
  per-bank row-buffer state machine with the Table 3 timings and an
  FR-FCFS vault scheduler.  Exact, but only practical for scaled-down
  traces.
- :mod:`repro.dram.analytic`: closed-form estimators of row activations,
  latency and achievable bandwidth for the access-pattern classes the
  operators produce (sequential streams, uniform random accesses, and
  the interleaved write streams of the partitioning shuffle).

The test suite cross-validates the analytic estimators against the event
model on randomized traces; the performance/energy pipeline then uses the
analytic model so experiments can be scaled to paper-sized inputs.
"""

from repro.dram.bank import Bank, BankStats
from repro.dram.vault import VaultMemory, VaultStats
from repro.dram.analytic import (
    AccessPattern,
    InterleavedWrites,
    RandomAccesses,
    SequentialStream,
    estimate_pattern,
    PatternEstimate,
)

__all__ = [
    "AccessPattern",
    "Bank",
    "BankStats",
    "InterleavedWrites",
    "PatternEstimate",
    "RandomAccesses",
    "SequentialStream",
    "VaultMemory",
    "VaultStats",
    "estimate_pattern",
]
