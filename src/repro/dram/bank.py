"""Event-accurate DRAM bank with a single open-row buffer.

A bank serves one access at a time.  An access to the open row pays only
the CAS latency; any other access must first precharge the open row
(honouring tRAS and, for writes, tWR) and activate the target row.  The
bank records activations, hits, misses and bytes so the energy model can
charge the Table 4 constants per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.dram import DramTiming


@dataclass
class BankStats:
    """Monotonic event counts for one bank."""

    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    @property
    def row_hit_rate(self) -> Optional[float]:
        return self.row_hits / self.accesses if self.accesses else None

    def merge(self, other: "BankStats") -> None:
        self.activations += other.activations
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.busy_ns += other.busy_ns


@dataclass
class Bank:
    """Row-buffer state machine for one DRAM bank.

    ``serve`` is the only mutator: given a request arrival time, row and
    size, it returns the completion time and updates the open-row state,
    the bank-ready time and the statistics.
    """

    timing: DramTiming
    row_size_b: int = 256
    open_row: Optional[int] = None
    ready_ns: float = 0.0
    # Earliest time the open row may be precharged (tRAS after activation,
    # extended by tWR after writes).
    precharge_ok_ns: float = 0.0
    stats: BankStats = field(default_factory=BankStats)

    def is_open(self, row: int) -> bool:
        return self.open_row == row

    def serve(self, arrival_ns: float, row: int, size_b: int, is_write: bool) -> float:
        """Serve one access; return its data-available completion time."""
        if size_b <= 0:
            raise ValueError("access size must be positive")
        if size_b > self.row_size_b:
            raise ValueError(
                f"access of {size_b} B exceeds the {self.row_size_b} B row; "
                "split multi-row accesses before the bank"
            )
        t = max(arrival_ns, self.ready_ns)
        timing = self.timing

        if self.open_row == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            if self.open_row is not None:
                # Precharge the stale row, honouring tRAS / tWR.
                t = max(t, self.precharge_ok_ns)
                t += timing.t_rp_ns
            # Activate the target row.
            activation_ns = t
            t += timing.t_rcd_ns
            self.open_row = row
            self.stats.activations += 1
            self.precharge_ok_ns = activation_ns + timing.t_ras_ns

        # Column access (CAS): data available t_cas later.
        t += timing.t_cas_ns
        if is_write:
            self.stats.bytes_written += size_b
            self.precharge_ok_ns = max(self.precharge_ok_ns, t + timing.t_wr_ns)
        else:
            self.stats.bytes_read += size_b

        self.stats.busy_ns += t - max(arrival_ns, 0.0) if t > arrival_ns else 0.0
        self.ready_ns = t
        return t

    def reset(self) -> None:
        """Close the row buffer and clear timing state (not statistics)."""
        self.open_row = None
        self.ready_ns = 0.0
        self.precharge_ok_ns = 0.0
