"""Sweeps: cartesian grids of scenarios, executed as one batch.

A :class:`Sweep` is the product of systems x workloads x scales x seeds
x partition counts.  ``run()`` evaluates every scenario -- sequentially
through the shared content-keyed caches, or across a process pool with
``jobs=N`` (each worker holds its own cache, mirroring
``run_all --jobs``) -- and concatenates the tidy records into one
:class:`~repro.api.results.ResultSet` in grid order, so equal sweeps
produce byte-identical exports regardless of worker count.

Sweeps serialize to/from JSON (``from_json`` / ``to_json``): systems may
be preset names or :class:`SystemSpec` dicts, which is what
``python -m repro.api --sweep SPEC.json`` and ``run_all --sweep`` load.

>>> from repro.api import Sweep
>>> sweep = Sweep(systems=("cpu", "mondrian"), workloads=("scan",),
...               scales=(50.0,), num_partitions=(8,))
>>> sweep.size
2
>>> [s.system_label for s in sweep.scenarios()]
['cpu', 'mondrian']
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.results import ResultSet
from repro.api.scenario import Scenario
from repro.api.spec import SystemSpec
from repro.experiments import common
from repro.telemetry import trace as _trace
from repro.telemetry import span as _span


def _spec_from_entry(entry: Union[str, SystemSpec, Mapping[str, Any]]):
    """A sweep's system entry: preset name, spec, or spec dict."""
    if isinstance(entry, Mapping):
        return SystemSpec.from_dict(entry)
    return entry  # str stays str (shares the preset-addressed caches)


@dataclass(frozen=True)
class Sweep:
    """A cartesian grid of :class:`Scenario` points."""

    systems: Tuple[Union[str, SystemSpec], ...] = ("cpu", "mondrian")
    workloads: Tuple[str, ...] = ("join",)
    scales: Tuple[float, ...] = (common.MODEL_SCALE,)
    seeds: Tuple[int, ...] = (17,)
    num_partitions: Tuple[int, ...] = (common.NUM_PARTITIONS,)

    def __post_init__(self) -> None:
        for name in ("systems", "workloads", "scales", "seeds", "num_partitions"):
            value = getattr(self, name)
            if isinstance(value, (str, SystemSpec)) or not isinstance(
                value, Sequence
            ):
                value = (value,)
            if not value:
                raise ValueError(f"sweep axis {name!r} must not be empty")
            object.__setattr__(self, name, tuple(value))
        object.__setattr__(
            self, "systems", tuple(_spec_from_entry(s) for s in self.systems)
        )

    @property
    def size(self) -> int:
        return (
            len(self.systems)
            * len(self.workloads)
            * len(self.scales)
            * len(self.seeds)
            * len(self.num_partitions)
        )

    def scenarios(self) -> List[Scenario]:
        """The grid in deterministic (system-major) order."""
        return [
            Scenario(
                system=system,
                operator=workload,
                model_scale=scale,
                seed=seed,
                num_partitions=parts,
            )
            for system in self.systems
            for workload in self.workloads
            for scale in self.scales
            for seed in self.seeds
            for parts in self.num_partitions
        ]

    def run(self, jobs: int = 1) -> ResultSet:
        """Evaluate the whole grid into one :class:`ResultSet`.

        ``jobs > 1`` fans scenarios over a process pool; records come
        back in grid order either way, so the export bytes are identical
        to a sequential run.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        scenarios = self.scenarios()
        with _span(
            "sweep", category="api", points=len(scenarios), jobs=jobs
        ):
            if jobs == 1 or len(scenarios) <= 1:
                records: List[Dict[str, Any]] = []
                for scenario in scenarios:
                    records.extend(scenario.records())
                return ResultSet(records)
            tracer = _trace.active_tracer()
            payloads = [
                (s, common.cache_enabled(), common.store_path(),
                 tracer is not None)
                for s in scenarios
            ]
            store = common.active_store()
            records = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for chunk, store_delta, spans in pool.map(
                    _sweep_worker, payloads
                ):
                    records.extend(chunk)
                    if store is not None and store_delta:
                        store.merge_stats(store_delta)
                    if tracer is not None and spans:
                        tracer.adopt(
                            spans, parent_id=tracer.current_span_id()
                        )
            return ResultSet(records)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "systems": [
                s if isinstance(s, str) else s.to_dict() for s in self.systems
            ],
            "workloads": list(self.workloads),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "num_partitions": list(self.num_partitions),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep field(s) {unknown}; valid: {sorted(known)}"
            )
        # Values pass through raw: __post_init__ wraps scalars (a bare
        # "join" or 500) into one-element axes instead of, say, a string
        # being exploded into characters by an eager tuple().
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        data = json.loads(text)
        if not isinstance(data, Mapping):
            raise ValueError("expected a JSON object describing the sweep grid")
        return cls.from_dict(data)


def _sweep_worker(
    payload,
) -> Tuple[
    List[Dict[str, Any]], Optional[Dict[str, int]], Optional[List[Dict[str, Any]]]
]:
    """Process-pool entry point: (scenario, use_cache, store[, trace]) ->
    (records, store-counter delta, worker spans).

    Workers inherit the parent's persistent-store selection explicitly
    (an env-var default would survive ``fork`` anyway, but a ``--store``
    flag set only in the parent would not), so store writes land in one
    shared directory regardless of worker count.  Each task reports the
    store traffic it caused as a counter delta; the parent folds those
    into its own handle, keeping ``--jobs N`` runs' reported store stats
    truthful even though the I/O happened in workers.

    When the parent is tracing (``trace`` element true), the worker runs
    its own :class:`~repro.telemetry.trace.Tracer` and ships the
    finished spans back as plain dicts; the parent re-parents them under
    its sweep span via ``Tracer.adopt``.
    """
    scenario, use_cache, store = payload[:3]
    trace_on = bool(payload[3]) if len(payload) > 3 else False
    common.set_cache_enabled(use_cache)
    if store != common.store_path():
        common.configure_store(store)
    handle = common.active_store()
    before = handle.counters() if handle is not None else None
    spans = None
    if trace_on:
        with _trace.tracing() as tracer:
            with tracer.span(
                "pool_worker",
                category="service",
                system=scenario.system_label,
                operator=scenario.operator,
            ):
                records = scenario.records()
            spans = tracer.to_dicts()
    else:
        records = scenario.records()
    if handle is None:
        return records, None, spans
    after = handle.counters()
    return records, {k: after[k] - before[k] for k in before}, spans
