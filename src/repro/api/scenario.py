"""Scenarios: one evaluable point of the design space.

A :class:`Scenario` is (system spec x workload x workload parameters x
model scale).  The workload is either one of the four basic operators
(``scan``, ``sort``, ``groupby``, ``join``) or one of the canonical
multi-operator queries of :mod:`repro.pipeline.queries`
(``fk-join-aggregate``, ``sort-then-scan``, ``skewed-partition-join``).

Operator scenarios run through the shared content-keyed caches of
:mod:`repro.experiments.common` -- a scenario naming a plain preset hits
the exact same cache entries the paper-report figures populate.  Query
scenarios execute their plan end-to-end through
:meth:`~repro.systems.machine.Machine.run_pipeline`.

``records()`` flattens either kind into the tidy per-phase rows a
:class:`~repro.api.results.ResultSet` holds; ``run()`` wraps them.

>>> from repro.api import Scenario
>>> rs = Scenario("mondrian", "join", model_scale=50.0,
...               num_partitions=8).run()
>>> rs.unique("phase")[:2]
['histogram', 'distribute']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Union

from repro.api.results import ResultSet
from repro.api.spec import SystemSpec, as_spec
from repro.experiments import common
from repro.perf.result import SystemResult
from repro.pipeline.queries import CANONICAL_QUERIES, CANONICAL_QUERY_SIZES

#: The basic operators a scenario may name (the experiments layer's
#: vocabulary, re-exported).
OPERATORS = common.OPERATORS


@dataclass(frozen=True)
class Scenario:
    """One (system, workload, parameters, scale) evaluation point.

    ``system`` may be a preset name (kept verbatim so the shared result
    cache is shared with the preset-addressed figure modules) or any
    :class:`~repro.api.spec.SystemSpec`.
    """

    system: Union[str, SystemSpec]
    operator: str
    model_scale: float = common.MODEL_SCALE
    seed: int = 17
    num_partitions: int = common.NUM_PARTITIONS

    def __post_init__(self) -> None:
        as_spec(self.system)  # validates preset names and spec types
        if self.operator not in OPERATORS and self.operator not in CANONICAL_QUERIES:
            raise ValueError(
                f"unknown workload {self.operator!r}; operators: "
                f"{list(OPERATORS)}, queries: {sorted(CANONICAL_QUERIES)}"
            )
        if self.model_scale <= 0:
            raise ValueError("model_scale must be positive")
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")

    # -- identity -----------------------------------------------------------

    @property
    def spec(self) -> SystemSpec:
        return as_spec(self.system)

    @property
    def system_label(self) -> str:
        return self.system if isinstance(self.system, str) else self.system.label

    @property
    def is_query(self) -> bool:
        """True when the workload is a canonical multi-operator query."""
        return self.operator in CANONICAL_QUERIES

    # -- execution ----------------------------------------------------------

    def machine(self):
        """The (singleton-cached) machine this scenario evaluates on."""
        return common.machine_for(self.system)

    def result(self) -> SystemResult:
        """Run an operator scenario via the shared content-keyed cache."""
        if self.is_query:
            raise ValueError(
                f"{self.operator!r} is a query scenario; use perf() or records()"
            )
        return common.run_cached_result(
            self.system,
            self.operator,
            self.model_scale,
            seed=self.seed,
            num_partitions=self.num_partitions,
        )

    def perf(self):
        """Run a query scenario end-to-end; returns a ``PipelinePerf``."""
        if not self.is_query:
            raise ValueError(
                f"{self.operator!r} is an operator scenario; use result()"
            )
        builder = CANONICAL_QUERIES[self.operator]
        plan = builder(
            num_partitions=self.num_partitions,
            seed=self.seed,
            **CANONICAL_QUERY_SIZES.get(self.operator, {}),
        )
        return self.machine().run_pipeline(plan, scale_factor=self.model_scale)

    def records(self) -> List[Dict[str, Any]]:
        """Tidy per-phase records (see :func:`records_from_result`)."""
        base = {
            "system": self.system_label,
            "workload": self.operator,
            "scale": float(self.model_scale),
            "seed": int(self.seed),
            "num_partitions": int(self.num_partitions),
        }
        machine = self.machine()
        if self.is_query:
            records = []
            for stage_perf in self.perf().stages:
                records.extend(
                    records_from_result(
                        machine,
                        stage_perf.result,
                        dict(base, stage=stage_perf.stage),
                    )
                )
            return records
        return records_from_result(machine, self.result(), base)

    def run(self) -> ResultSet:
        """Evaluate and wrap the records in a :class:`ResultSet`."""
        return ResultSet(self.records())

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the evaluation service's wire format)."""
        return {
            "system": self.system
            if isinstance(self.system, str)
            else self.system.to_dict(),
            "operator": self.operator,
            "model_scale": float(self.model_scale),
            "seed": int(self.seed),
            "num_partitions": int(self.num_partitions),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; systems may be preset names or
        :class:`SystemSpec` dicts."""
        known = {"system", "operator", "model_scale", "seed", "num_partitions"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown Scenario field(s) {unknown}; valid: {sorted(known)}"
            )
        missing = sorted({"system", "operator"} - set(data))
        if missing:
            # to_dict() always emits these; a hand-built payload that
            # drops one should fail loudly, not evaluate a default.
            raise ValueError(f"Scenario dict is missing required {missing}")
        payload = dict(data)
        if isinstance(payload["system"], Mapping):
            payload["system"] = SystemSpec.from_dict(payload["system"])
        return cls(**payload)


def records_from_result(
    machine, result: SystemResult, base: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Flatten one :class:`SystemResult` into tidy per-phase records.

    Each record carries the phase's time plus its energy split into the
    Table 4 components (via :meth:`Machine.phase_energy`, the same
    accounting ``evaluate_run`` sums), so ResultSet pivots can rebuild
    any figure's series without re-running anything.

    Runs evaluated under an active fault schedule (``repro.faults``)
    additionally carry the resilience columns -- operator-level protocol
    counters plus the per-phase priced overhead bytes.  Fault-free runs
    omit them entirely, keeping their records (and the committed
    goldens) byte-identical.
    """
    resilience = result.metadata.get("resilience")
    records = []
    for perf in result.phase_perfs:
        energy = machine.phase_energy(perf)
        record = dict(base)
        record.update(
            {
                "operator": result.operator,
                "phase": perf.phase.name,
                "category": perf.phase.category,
                "time_s": float(perf.time_s),
                "energy_j": float(energy.total_j),
                "dram_dynamic_j": float(energy.dram_dynamic_j),
                "dram_static_j": float(energy.dram_static_j),
                "core_j": float(energy.core_j),
                "llc_j": float(energy.llc_j),
                "serdes_noc_j": float(energy.serdes_noc_j),
                "instructions": float(perf.phase.instructions),
                "bytes": float(perf.phase.total_bytes),
            }
        )
        if resilience is not None:
            record.update(
                {
                    "retries": int(resilience["retries"]),
                    "duplicates_discarded": int(
                        resilience["duplicates_discarded"]
                    ),
                    "timeout_rounds": int(resilience["timeout_rounds"]),
                    "degraded_destinations": int(
                        resilience["degraded_destinations"]
                    ),
                    "straggler_share": float(resilience["straggler_share"]),
                    "retry_shuffle_b": float(perf.phase.retry_shuffle_b),
                    "backoff_stall_b": float(perf.phase.backoff_stall_b),
                }
            )
        records.append(record)
    return records


def run_plan(system: Union[str, SystemSpec], plan, model_scale: float = 1.0):
    """Run a custom :class:`~repro.pipeline.plan.QueryPlan` on a system.

    The escape hatch for plans built by hand rather than named canonical
    queries; returns the machine's ``PipelinePerf``.
    """
    return common.machine_for(system).run_pipeline(plan, scale_factor=model_scale)
