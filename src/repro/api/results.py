"""Tidy result records: the scenario API's output container.

A :class:`ResultSet` holds flat per-phase/per-energy-component records
(one dict per evaluated phase) and offers the small set of dataframe-ish
verbs experiment scripts actually need -- filtering, pivoting, column
selection, JSON/CSV export -- without a pandas dependency.  It replaces
the bespoke ``ResultMatrix``-plus-``format_table`` glue the per-figure
scripts used to carry: figures now pull rows out of one ResultSet and
render them with the same fixed-width table style.

Records are plain dicts of JSON-serializable scalars, so a ResultSet
round-trips losslessly through ``to_json``/``from_json`` (the sweep-smoke
golden test relies on that) and pickles cleanly across the ``--jobs``
process pool.

This module deliberately imports nothing from the rest of the package:
``repro.experiments.common`` keeps a deprecation shim pointing at
:func:`format_table` here without creating an import cycle.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional


def format_table(headers: List[str], rows: List[List[Any]]) -> str:
    """Fixed-width ASCII table: the one table style every report uses."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


class ResultSet:
    """An ordered collection of tidy result records.

    Every record is one evaluated phase: scenario coordinates (system,
    workload, scale, seed, ...), the phase's identity and time, and its
    energy split by component.  All verbs return new ResultSets or plain
    data; a ResultSet is never mutated after construction.
    """

    def __init__(self, records: Iterable[Mapping[str, Any]] = ()) -> None:
        self._records: List[Dict[str, Any]] = [dict(r) for r in records]

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self.to_records())

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self._records + other.to_records())

    def __repr__(self) -> str:
        return f"ResultSet({len(self._records)} records x {len(self.columns)} columns)"

    # -- access -------------------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        """The records as a list of fresh dicts (callers may mutate)."""
        return [dict(r) for r in self._records]

    @property
    def columns(self) -> List[str]:
        """Union of record keys, in first-appearance order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            for key in record:
                seen.setdefault(key)
        return list(seen)

    def unique(self, column: str) -> List[Any]:
        """Distinct values of one column, in first-appearance order."""
        seen: Dict[Any, None] = {}
        for record in self._records:
            if column in record:
                seen.setdefault(record[column])
        return list(seen)

    # -- filtering / aggregation --------------------------------------------

    def filter(
        self, predicate: Optional[Callable[[Dict[str, Any]], bool]] = None, **equals
    ) -> "ResultSet":
        """Records matching all ``column=value`` pairs (and ``predicate``).

        >>> rs = ResultSet([{"s": "cpu", "t": 1.0}, {"s": "mondrian", "t": 2.0}])
        >>> len(rs.filter(s="cpu"))
        1
        """
        def keep(record: Dict[str, Any]) -> bool:
            if any(record.get(k) != v for k, v in equals.items()):
                return False
            return predicate(record) if predicate is not None else True

        return ResultSet(r for r in self._records if keep(r))

    def total(self, column: str, **equals) -> float:
        """Sum of one numeric column over the matching records."""
        return float(
            sum(r[column] for r in self.filter(**equals)._records if column in r)
        )

    def pivot(
        self, index: str, columns: str, values: str, agg: str = "sum"
    ) -> Dict[Any, Dict[Any, Any]]:
        """Aggregate ``values`` into a dict-of-dicts spreadsheet.

        ``agg`` is ``"sum"``, ``"mean"``, ``"min"`` or ``"max"``.  Row and
        column orders follow first appearance, so reports built from a
        pivot are deterministic.

        Numeric cells reduce as floats.  Non-numeric values (the suite
        records' string-typed ``suite``/``family``/label columns) pass
        through instead of raising: ``min``/``max`` use plain Python
        ordering and ``sum``/``mean`` keep the cell's first value -- a
        label column pivots to the label, not to an error.
        """
        if agg not in ("sum", "mean", "min", "max"):
            raise ValueError(f"unknown aggregation {agg!r}")
        cells: Dict[Any, Dict[Any, List[Any]]] = {}
        for record in self._records:
            if index not in record or columns not in record or values not in record:
                continue
            row = cells.setdefault(record[index], {})
            row.setdefault(record[columns], []).append(record[values])
        reduce = {
            "sum": sum,
            "mean": lambda vs: sum(vs) / len(vs),
            "min": min,
            "max": max,
        }[agg]

        def cell(vs: List[Any]) -> Any:
            try:
                nums = [float(v) for v in vs]
            except (TypeError, ValueError):
                if agg in ("min", "max"):
                    return reduce(vs)
                return vs[0]
            return float(reduce(nums))

        return {
            row: {col: cell(vs) for col, vs in row_cells.items()}
            for row, row_cells in cells.items()
        }

    # -- rendering / export -------------------------------------------------

    def table(self, columns: Optional[List[str]] = None) -> str:
        """The records as a fixed-width ASCII table (report style)."""
        cols = columns if columns is not None else self.columns
        rows = [[record.get(c, "") for c in cols] for record in self._records]
        return format_table(list(cols), rows)

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize to a JSON array of records; optionally write ``path``."""
        text = json.dumps(self._records, indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        records = json.loads(text)
        if not isinstance(records, list):
            raise ValueError("expected a JSON array of records")
        return cls(records)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialize to CSV (header = :attr:`columns`); optionally write."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        writer.writerows(self._records)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as fh:
                fh.write(text)
        return text
