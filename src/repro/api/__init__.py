"""The scenario API: the declarative front door to the whole codebase.

Compose arbitrary system configurations, single evaluation points, and
cartesian parameter sweeps without touching the per-figure plumbing:

- :class:`SystemSpec` derives validated custom
  :class:`~repro.config.system.SystemConfig` objects from any preset --
  core model/count, SIMD width, partition scheme, probe algorithm,
  topology, HMC geometry, DRAM timing, interleave model -- so hardware
  points the paper never measured are one expression away.
- :class:`Scenario` pairs a system with a workload (basic operator or
  canonical multi-operator query), a model scale and workload
  parameters, and evaluates it through the shared content-keyed caches.
- :class:`Sweep` runs a cartesian grid of scenarios (optionally across
  a process pool) into a :class:`ResultSet` of tidy
  per-phase/per-energy-component records with JSON/CSV export,
  filtering and pivoting.

Command line: ``python -m repro.api --sweep SPEC.json`` (see
``docs/USAGE.md``), also reachable as ``run_all --sweep SPEC.json``.

>>> from repro.api import SystemSpec, Scenario
>>> spec = SystemSpec("mondrian").with_cores(32).with_topology("star")
>>> result = Scenario(spec, "join", model_scale=50.0,
...                   num_partitions=8).result()
>>> result.runtime_s > 0
True
"""

from repro.api.results import ResultSet, format_table
from repro.api.scenario import Scenario, records_from_result, run_plan
from repro.api.spec import CORE_MODELS, SystemSpec, as_spec
from repro.api.sweep import Sweep

__all__ = [
    "CORE_MODELS",
    "ResultSet",
    "Scenario",
    "Sweep",
    "SystemSpec",
    "as_spec",
    "format_table",
    "records_from_result",
    "run_plan",
]
