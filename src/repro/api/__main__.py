"""Command-line sweep runner: ``python -m repro.api``.

Usage::

    python -m repro.api --sweep SPEC.json                # grid from a file
    python -m repro.api --sweep SPEC.json --jobs 4       # process pool
    python -m repro.api --sweep SPEC.json --json out.json --csv out.csv
    python -m repro.api --system mondrian --system cpu \\
        --workload join --scale 500                      # inline 2x1 grid

``SPEC.json`` holds a :class:`~repro.api.sweep.Sweep` grid::

    {
      "systems": ["cpu", {"base": "mondrian", "num_cores": 32,
                          "topology": "star"}],
      "workloads": ["scan", "join"],
      "scales": [500.0],
      "seeds": [17],
      "num_partitions": [64]
    }

Systems are preset names or SystemSpec override dicts.  Without
``--json``/``--csv`` the records print as a fixed-width summary table;
``--json -`` / ``--csv -`` write the export to stdout instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.api.results import format_table
from repro.api.spec import as_spec
from repro.api.sweep import Sweep
from repro.experiments import common
from repro.faults.plan import FaultSpec
from repro.telemetry import trace as _trace

#: Columns of the human-readable summary table (full records keep more).
SUMMARY_COLUMNS = (
    "system",
    "workload",
    "phase",
    "scale",
    "time_s",
    "energy_j",
)


def build_parser() -> argparse.ArgumentParser:
    """The sweep CLI (kept separate so tooling can inspect the flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--sweep", metavar="SPEC.json",
        help="run the sweep grid described by this JSON file",
    )
    parser.add_argument(
        "--system", action="append", default=None, metavar="NAME",
        help="inline grid: add a system preset (repeatable; ignored with "
             "--sweep)",
    )
    parser.add_argument(
        "--workload", action="append", default=None, metavar="NAME",
        help="inline grid: add an operator or canonical query (repeatable)",
    )
    parser.add_argument(
        "--scale", type=float, action="append", default=None, metavar="X",
        help=f"inline grid: add a model scale (default "
             f"{common.MODEL_SCALE:.0f}x; repeatable)",
    )
    parser.add_argument(
        "--seed", type=int, action="append", default=None, metavar="N",
        help="inline grid: add a workload seed (default 17; repeatable)",
    )
    parser.add_argument(
        "--partitions", type=int, action="append", default=None, metavar="N",
        help=f"inline grid: add a partition count (default "
             f"{common.NUM_PARTITIONS}; repeatable)",
    )
    parser.add_argument(
        "--faults", metavar="JSON",
        help="inject a deterministic shuffle fault schedule into every "
             "system of the grid: a JSON dict of FaultSpec overrides, "
             "e.g. '{\"seed\": 7, \"drop_prob\": 0.2}' (functional "
             "outputs stay byte-identical; records gain resilience "
             "columns)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate scenarios in a pool of N worker processes "
             "(records stay in grid order; exports are byte-identical "
             "to --jobs 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared workload/result memoization",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persistent content-addressed result store directory: warm "
             "entries replay without simulation, evaluated misses are "
             "written back (default: $REPRO_STORE if set); store stats "
             "print to stderr after the run",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the ResultSet as JSON records to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--csv", metavar="PATH",
        help="write the ResultSet as CSV to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record telemetry spans for the sweep and write them to "
             "FILE as Chrome trace_event JSON (chrome://tracing / "
             "Perfetto); exports are byte-identical with or without "
             "tracing",
    )
    return parser


def export_result_set(results, json_path=None, csv_path=None) -> bool:
    """Write the requested exports (``'-'`` = stdout); True if any.

    Shared by this CLI and ``python -m repro.service submit`` so the
    two front ends cannot drift.
    """
    exported = False
    if json_path:
        text = results.to_json()
        if json_path == "-":
            print(text)
        else:
            Path(json_path).write_text(text + "\n")
            print(f"wrote {len(results)} records to {json_path}", file=sys.stderr)
        exported = True
    if csv_path:
        text = results.to_csv()
        if csv_path == "-":
            sys.stdout.write(text)
        else:
            Path(csv_path).write_text(text)
            print(f"wrote {len(results)} records to {csv_path}", file=sys.stderr)
        exported = True
    return exported


def print_summary_table(results) -> None:
    """The human-readable fixed-width summary (no-export default)."""
    rows = [
        [
            r["system"],
            r["workload"],
            (f"{r['stage']}/" if r.get("stage") else "") + r["phase"],
            f"{r['scale']:.0f}x",
            f"{r['time_s'] * 1e3:.3f} ms",
            f"{r['energy_j']:.4f} J",
        ]
        for r in results
    ]
    print(format_table(list(SUMMARY_COLUMNS), rows))


def _build_sweep(args) -> Sweep:
    if args.sweep:
        return Sweep.from_json(Path(args.sweep).read_text())
    grid = {}
    if args.system:
        grid["systems"] = tuple(args.system)
    if args.workload:
        grid["workloads"] = tuple(args.workload)
    if args.scale:
        grid["scales"] = tuple(args.scale)
    if args.seed:
        grid["seeds"] = tuple(args.seed)
    if args.partitions:
        grid["num_partitions"] = tuple(args.partitions)
    if not grid:
        raise SystemExit(
            "nothing to run: pass --sweep SPEC.json or at least one inline "
            "axis (--system/--workload/...)"
        )
    return Sweep(**grid)


def _with_faults(sweep: Sweep, faults_json: str) -> Sweep:
    """Apply ``--faults`` overrides to every system of the grid."""
    try:
        overrides = json.loads(faults_json)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--faults is not valid JSON: {exc}")
    if not isinstance(overrides, dict):
        raise SystemExit("--faults must be a JSON object of FaultSpec fields")
    try:
        # Validate field names and values up front (fail at the CLI, not
        # mid-sweep): FaultSpec's own __post_init__ checks the values.
        FaultSpec().with_overrides(**overrides)
        systems = tuple(
            as_spec(s).with_faults(**overrides) for s in sweep.systems
        )
        return replace(sweep, systems=systems)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--faults: {exc}")


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.no_cache:
        common.set_cache_enabled(False)
    if args.store:
        common.configure_store(args.store)

    sweep = _build_sweep(args)
    if args.faults:
        sweep = _with_faults(sweep, args.faults)
    tracer = _trace.install_tracer() if args.trace else None
    try:
        results = sweep.run(jobs=args.jobs)
    finally:
        if tracer is not None:
            _trace.uninstall_tracer()
            events = tracer.export_chrome(args.trace)
            print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    store_stats = common.store_stats()
    if store_stats is not None:
        print(
            "store: hits={hits} misses={misses} puts={puts} "
            "evictions={evictions} entries={entries}".format(**store_stats),
            file=sys.stderr,
        )

    if not export_result_set(results, args.json, args.csv):
        print(f"Sweep: {sweep.size} scenarios -> {len(results)} records\n")
        print_summary_table(results)


if __name__ == "__main__":
    main()
