"""SystemSpec: declarative, validated derivation of system configurations.

A :class:`SystemSpec` names a preset to start from plus the overrides
that turn it into the hardware point you actually want to evaluate --
core model and count, SIMD width, partition scheme, probe algorithm,
inter-stack topology, HMC geometry, DRAM timing, and the shuffle
network's interleave model.  ``to_config()`` materializes a fully
validated :class:`~repro.config.system.SystemConfig`; every override is
checked either here (unknown core models, unknown geometry/timing
fields) or by the config dataclasses' own ``__post_init__`` validation
(vocabulary, positivity, cross-field rules such as "permutable
partitioning needs near-memory compute").

Specs are frozen and hashable, so they serve directly as content-cache
keys (``repro.experiments.common`` memoizes results per spec the same
way it memoizes per preset name) and pickle cleanly across the sweep
process pool.  A bare preset name is a valid spec everywhere the API
accepts one (:func:`as_spec`).

>>> from repro.api.spec import SystemSpec
>>> spec = SystemSpec("mondrian").with_cores(32).with_topology("star")
>>> cfg = spec.to_config()
>>> cfg.num_cores, cfg.topology
(32, 'star')
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.config.cores import (
    CoreConfig,
    cortex_a35_mondrian,
    cortex_a57_cpu,
    krait400_nmp,
)
from repro.config.system import SystemConfig, get_preset

#: Named core models an override may select (Table 3's compute units).
CORE_MODELS = {
    "cortex-a57": cortex_a57_cpu,
    "krait400": krait400_nmp,
    "cortex-a35": cortex_a35_mondrian,
}

#: Scalar SystemConfig fields a spec may override one-for-one.
_SCALAR_OVERRIDES = (
    "kind",
    "num_cores",
    "partition_scheme",
    "probe_algorithm",
    "topology",
    "interleave_model",
    "has_cache_hierarchy",
    "llc_b",
)

#: Nested config dataclasses overridable field-by-field.
_NESTED_OVERRIDES = ("geometry", "timing", "interconnect", "faults")

_Items = Tuple[Tuple[str, Any], ...]


def _as_items(value: Union[Mapping[str, Any], _Items]) -> _Items:
    """Normalize a mapping (or items tuple) to sorted, hashable items."""
    pairs = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(k), v) for k, v in pairs))


@dataclass(frozen=True)
class SystemSpec:
    """A system preset plus validated overrides.

    Unset fields (``None`` / empty) inherit from the base preset; the
    fluent ``with_*`` helpers return new specs, so partial specs compose:

    >>> base = SystemSpec("nmp-perm")
    >>> wide = base.with_core_model("cortex-a35", simd_width_bits=512)
    >>> base.to_config().core.name          # the original is untouched
    'krait400'
    >>> wide.to_config().core.simd_width_bits
    512
    """

    base: str = "mondrian"
    name: Optional[str] = None
    kind: Optional[str] = None
    core_model: Optional[str] = None
    num_cores: Optional[int] = None
    simd_width_bits: Optional[int] = None
    partition_scheme: Optional[str] = None
    probe_algorithm: Optional[str] = None
    topology: Optional[str] = None
    interleave_model: Optional[str] = None
    has_cache_hierarchy: Optional[bool] = None
    llc_b: Optional[int] = None
    geometry: _Items = field(default=())
    timing: _Items = field(default=())
    interconnect: _Items = field(default=())
    faults: _Items = field(default=())

    def __post_init__(self) -> None:
        get_preset(self.base)  # KeyError with the valid names on a miss
        if self.core_model is not None and self.core_model not in CORE_MODELS:
            raise ValueError(
                f"unknown core model {self.core_model!r}; "
                f"choose from {sorted(CORE_MODELS)}"
            )
        for nested in _NESTED_OVERRIDES:
            object.__setattr__(self, nested, _as_items(getattr(self, nested)))

    # -- fluent builders ----------------------------------------------------

    @classmethod
    def from_preset(cls, name: str) -> "SystemSpec":
        """The spec equivalent of ``get_preset(name)`` -- no overrides."""
        return cls(base=name)

    def named(self, name: str) -> "SystemSpec":
        """Set the derived configuration's display name."""
        return replace(self, name=name)

    def with_cores(self, num_cores: int) -> "SystemSpec":
        return replace(self, num_cores=num_cores)

    def with_core_model(
        self, model: str, simd_width_bits: Optional[int] = None
    ) -> "SystemSpec":
        """Select a named core model, optionally resized.

        An omitted ``simd_width_bits`` keeps any width already set on
        this spec (it does not reset it to the model's default).
        """
        if simd_width_bits is None:
            return replace(self, core_model=model)
        return replace(self, core_model=model, simd_width_bits=simd_width_bits)

    def with_simd(self, simd_width_bits: int) -> "SystemSpec":
        return replace(self, simd_width_bits=simd_width_bits)

    def with_partitioning(self, scheme: str) -> "SystemSpec":
        return replace(self, partition_scheme=scheme)

    def with_probe(self, algorithm: str) -> "SystemSpec":
        return replace(self, probe_algorithm=algorithm)

    def with_topology(self, topology: str) -> "SystemSpec":
        return replace(self, topology=topology)

    def with_interleave(self, model: str) -> "SystemSpec":
        return replace(self, interleave_model=model)

    def with_geometry(self, **overrides) -> "SystemSpec":
        return replace(self, geometry=dict(self.geometry, **overrides))

    def with_timing(self, **overrides) -> "SystemSpec":
        return replace(self, timing=dict(self.timing, **overrides))

    def with_interconnect(self, **overrides) -> "SystemSpec":
        return replace(self, interconnect=dict(self.interconnect, **overrides))

    def with_faults(self, **overrides) -> "SystemSpec":
        """Override the deterministic shuffle fault schedule
        (:class:`~repro.faults.plan.FaultSpec` fields, e.g.
        ``drop_prob=0.2, seed=7``)."""
        return replace(self, faults=dict(self.faults, **overrides))

    # -- derivation ---------------------------------------------------------

    @property
    def is_preset(self) -> bool:
        """True when the spec adds nothing to its base preset."""
        return self == SystemSpec(base=self.base)

    def overrides(self) -> Dict[str, Any]:
        """The non-inherited fields, for labels and serialization."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            if f.name == "base":
                continue
            value = getattr(self, f.name)
            if value is None or value == ():
                continue
            out[f.name] = dict(value) if f.name in _NESTED_OVERRIDES else value
        return out

    @property
    def label(self) -> str:
        """Display name: explicit ``name`` or a deterministic derivation."""
        if self.name:
            return self.name
        overrides = self.overrides()
        if not overrides:
            return self.base
        parts = []
        for key, value in overrides.items():
            if key in _NESTED_OVERRIDES:
                inner = ",".join(f"{k}={v}" for k, v in sorted(value.items()))
                parts.append(f"{key}({inner})")
            else:
                parts.append(f"{key}={value}")
        return f"{self.base}[{';'.join(parts)}]"

    @property
    def cache_key(self) -> tuple:
        """Hashable content key: everything the derived config depends on."""
        return (
            "spec",
            self.base,
            self.name,
            self.kind,
            self.core_model,
            self.num_cores,
            self.simd_width_bits,
            self.partition_scheme,
            self.probe_algorithm,
            self.topology,
            self.interleave_model,
            self.has_cache_hierarchy,
            self.llc_b,
            self.geometry,
            self.timing,
            self.interconnect,
            self.faults,
        )

    def _derive_core(self, preset_core: CoreConfig) -> CoreConfig:
        if self.core_model is not None:
            if self.core_model == "cortex-a35":
                if self.simd_width_bits is None:
                    return cortex_a35_mondrian()
                return cortex_a35_mondrian(simd_width_bits=self.simd_width_bits)
            core = CORE_MODELS[self.core_model]()
            if self.simd_width_bits is not None:
                core = replace(core, simd_width_bits=self.simd_width_bits)
            return core
        if self.simd_width_bits is not None:
            if preset_core.name.startswith("cortex-a35"):
                # Re-derive through the factory so the name and power
                # stay consistent with the ablation convention.
                return cortex_a35_mondrian(simd_width_bits=self.simd_width_bits)
            return replace(preset_core, simd_width_bits=self.simd_width_bits)
        return preset_core

    def _derive_nested(self, preset_value, overrides: _Items, what: str):
        if not overrides:
            return preset_value
        try:
            return replace(preset_value, **dict(overrides))
        except TypeError:
            valid = sorted(f.name for f in fields(preset_value))
            unknown = sorted(set(dict(overrides)) - set(valid))
            raise ValueError(
                f"unknown {what} field(s) {unknown}; valid fields: {valid}"
            ) from None

    def to_config(self) -> SystemConfig:
        """Materialize the spec into a validated :class:`SystemConfig`.

        Round-trip property: ``SystemSpec(p).to_config()`` equals
        ``get_preset(p)`` for every preset ``p`` (pinned by tests).
        """
        preset = get_preset(self.base)
        updates: Dict[str, Any] = {}
        for name in _SCALAR_OVERRIDES:
            value = getattr(self, name)
            if value is not None:
                updates[name] = value
        core = self._derive_core(preset.core)
        if core is not preset.core:
            updates["core"] = core
        updates["geometry"] = self._derive_nested(
            preset.geometry, self.geometry, "geometry"
        )
        updates["timing"] = self._derive_nested(preset.timing, self.timing, "timing")
        updates["interconnect"] = self._derive_nested(
            preset.interconnect, self.interconnect, "interconnect"
        )
        updates["faults"] = self._derive_nested(preset.faults, self.faults, "faults")
        updates["name"] = self.label
        return preset.with_overrides(**updates)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: base plus the non-inherited overrides."""
        return {"base": self.base, **self.overrides()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        """Inverse of :meth:`to_dict` (round-trip pinned by tests)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SystemSpec field(s) {unknown}; valid: {sorted(known)}"
            )
        return cls(**dict(data))


def as_spec(system: Union[str, SystemSpec]) -> SystemSpec:
    """Coerce a preset name or spec to a :class:`SystemSpec`."""
    if isinstance(system, SystemSpec):
        return system
    if isinstance(system, str):
        return SystemSpec(base=system)
    raise TypeError(
        f"expected a preset name or SystemSpec, got {type(system).__name__}"
    )
