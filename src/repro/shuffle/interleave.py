"""Network message-interleaving models.

The order in which a destination vault sees writes from concurrent
sources is a property of the memory network.  Two models:

- :func:`round_robin_interleave`: sources inject in lockstep and the
  network preserves per-source FIFO order -- the idealized pattern of
  paper figure 2 ("message arrival order: A0 B0 A1 B1 ...").
- :func:`random_interleave`: sources progress at jittered rates, a more
  adversarial arrival order.  Row-buffer locality at the destination is
  equally destroyed; permutability is insensitive to the model (a
  property the test suite checks).

Both return the arrival order as a pair of parallel int64 index arrays
``(sources, indices)`` -- arrival ``k`` is element ``indices[k]`` of
stream ``sources[k]`` -- rather than a Python list of tuples, so the
shuffle engine can materialize destination buffers with single
fancy-indexing operations instead of a million-iteration loop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.config.system import INTERLEAVE_RANDOM, INTERLEAVE_ROUND_ROBIN

#: Arrival order: parallel ``(sources, indices)`` int64 arrays.
ArrivalOrder = Tuple[np.ndarray, np.ndarray]


def _empty_order() -> ArrivalOrder:
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def stream_starts(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: start of each stream in the concatenation.

    Shared with the shuffle engine, which uses the same offsets to map
    arrival order into the concatenated inbound streams."""
    starts = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return starts


def round_robin_interleave(stream_lengths: Sequence[int]) -> ArrivalOrder:
    """Arrival order of ``(sources, indices)`` arrays, round-robin.

    Sources with exhausted streams drop out of the rotation, matching a
    network where every source injects at the same rate until done.
    Equivalently: element ``(src, idx)`` arrives in round ``idx``, and
    rounds drain in source order -- so the arrival order is a stable
    sort of all elements by ``(idx, src)``.
    """
    lengths = np.asarray(stream_lengths, dtype=np.int64)
    total = int(lengths.sum()) if len(lengths) else 0
    if total == 0:
        return _empty_order()
    sources = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    indices = np.arange(total, dtype=np.int64) - np.repeat(
        stream_starts(lengths), lengths
    )
    order = np.lexsort((sources, indices))
    return sources[order], indices[order]


def random_interleave(
    stream_lengths: Sequence[int], seed: int = 0
) -> ArrivalOrder:
    """Arrival order under randomized source progress.

    Per-source FIFO order is preserved (networks do not reorder a single
    flow here); the merge order across sources is uniformly random.
    """
    lengths = np.asarray(stream_lengths, dtype=np.int64)
    total = int(lengths.sum()) if len(lengths) else 0
    if total == 0:
        return _empty_order()
    rng = np.random.default_rng(seed)
    sources = np.repeat(np.arange(len(stream_lengths)), stream_lengths)
    rng.shuffle(sources)
    sources = sources.astype(np.int64, copy=False)
    # Per-source running index: group the arrivals by source (stable, so
    # FIFO order within a source survives), number each group 0..len-1,
    # and scatter those numbers back to arrival positions.
    by_source = np.argsort(sources, kind="stable")
    within = np.arange(total, dtype=np.int64) - np.repeat(
        stream_starts(lengths), lengths
    )
    indices = np.empty(total, dtype=np.int64)
    indices[by_source] = within
    return sources, indices


#: Named interleave models, keyed by the one shared vocabulary
#: (``repro.config.system.INTERLEAVE_MODELS``).
NAMED_INTERLEAVES = {
    INTERLEAVE_ROUND_ROBIN: round_robin_interleave,
    INTERLEAVE_RANDOM: random_interleave,
}


def get_interleave(name: str):
    """Interleave callable for a configured model name.

    The ``random`` model keeps its default seed, so a given configuration
    still produces one deterministic arrival order.
    """
    try:
        return NAMED_INTERLEAVES[name]
    except KeyError:
        raise KeyError(
            f"unknown interleave model {name!r}; "
            f"choose from {sorted(NAMED_INTERLEAVES)}"
        ) from None
