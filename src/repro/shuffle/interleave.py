"""Network message-interleaving models.

The order in which a destination vault sees writes from concurrent
sources is a property of the memory network.  Two models:

- :func:`round_robin_interleave`: sources inject in lockstep and the
  network preserves per-source FIFO order -- the idealized pattern of
  paper figure 2 ("message arrival order: A0 B0 A1 B1 ...").
- :func:`random_interleave`: sources progress at jittered rates, a more
  adversarial arrival order.  Row-buffer locality at the destination is
  equally destroyed; permutability is insensitive to the model (a
  property the test suite checks).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def round_robin_interleave(stream_lengths: Sequence[int]) -> List[Tuple[int, int]]:
    """Arrival order of ``(source, element_index)`` pairs, round-robin.

    Sources with exhausted streams drop out of the rotation, matching a
    network where every source injects at the same rate until done.
    """
    order: List[Tuple[int, int]] = []
    positions = [0] * len(stream_lengths)
    remaining = sum(stream_lengths)
    while remaining:
        for src, length in enumerate(stream_lengths):
            if positions[src] < length:
                order.append((src, positions[src]))
                positions[src] += 1
                remaining -= 1
    return order


def random_interleave(
    stream_lengths: Sequence[int], seed: int = 0
) -> List[Tuple[int, int]]:
    """Arrival order under randomized source progress.

    Per-source FIFO order is preserved (networks do not reorder a single
    flow here); the merge order across sources is uniformly random.
    """
    rng = np.random.default_rng(seed)
    tokens = np.repeat(np.arange(len(stream_lengths)), stream_lengths)
    rng.shuffle(tokens)
    positions = [0] * len(stream_lengths)
    order: List[Tuple[int, int]] = []
    for src in tokens:
        src = int(src)
        order.append((src, positions[src]))
        positions[src] += 1
    return order
