"""The partitioning-phase data shuffle (paper figure 2, sections 4.1.2, 5.3-5.4).

Multiple source partitions concurrently push tuples toward destination
partitions; the memory network interleaves their messages, so writes
arrive at each destination in an order no single source controls.  The
shuffle engine models that interleaving functionally (real tuples move),
drives the shuffle_begin/shuffle_end barrier protocol, and produces both
the destination relations and the per-destination arrival traces that the
event-accurate DRAM model can replay.
"""

from repro.shuffle.engine import ShuffleEngine, ShuffleResult
from repro.shuffle.interleave import (
    NAMED_INTERLEAVES,
    get_interleave,
    random_interleave,
    round_robin_interleave,
)

__all__ = [
    "NAMED_INTERLEAVES",
    "ShuffleEngine",
    "ShuffleResult",
    "get_interleave",
    "random_interleave",
    "round_robin_interleave",
]
