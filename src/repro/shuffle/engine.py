"""Functional shuffle across memory partitions.

Given per-source relations and each tuple's destination partition, the
engine moves real tuples: it computes per-(source, destination) streams,
interleaves them per the network model, and materializes each
destination buffer either

- **addressed**: every tuple lands at the exact offset the histogram
  prefix sums assigned (source order preserved inside each source's
  slice), or
- **permutable**: tuples land at the destination's sequential tail in
  arrival order, via a :class:`repro.memctrl.permutable.PermutableWriteEngine`.

Both produce the same *multiset* per destination -- the permutability
guarantee -- but different orders and radically different DRAM write
patterns.  The engine also emits per-destination arrival traces
(vault-relative addresses) so the event-accurate DRAM model can replay
the traffic, and drives the :class:`ShuffleBarrier` handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.histogram import build_histogram, source_write_offsets
from repro.analytics.tuples import TUPLE_B, TUPLE_DTYPE, Relation
from repro.memctrl.permutable import (
    PermutableRegionConfig,
    PermutableWriteEngine,
    ShuffleBarrier,
)
from repro.shuffle.interleave import (
    ArrivalOrder,
    round_robin_interleave,
    stream_starts,
)


@dataclass
class ShuffleResult:
    """Everything the shuffle produced."""

    destinations: List[Relation]
    #: per destination: vault-relative byte address of each write, in
    #: arrival order (replayable on the event DRAM model).
    write_traces: List[np.ndarray]
    #: per destination: number of tuples received from each source.
    inbound_histograms: List[np.ndarray]
    barrier: ShuffleBarrier
    permutable: bool

    @property
    def total_tuples(self) -> int:
        return sum(len(d) for d in self.destinations)


class ShuffleEngine:
    """Move tuples between partitions with a chosen write discipline."""

    def __init__(
        self,
        num_destinations: int,
        object_b: int = TUPLE_B,
        permutable: bool = False,
        interleave: Callable[[Sequence[int]], ArrivalOrder] = round_robin_interleave,
        vectorized: bool = True,
    ) -> None:
        if num_destinations < 1:
            raise ValueError("need at least one destination")
        if object_b <= 0:
            raise ValueError("object size must be positive")
        self._num_dest = num_destinations
        self._object_b = object_b
        self._permutable = permutable
        self._interleave = interleave
        # ``vectorized=False`` selects the per-tuple reference loop; the
        # equivalence suite pins the two paths byte-identical.
        self._vectorized = vectorized

    @property
    def permutable(self) -> bool:
        return self._permutable

    def run(
        self,
        sources: List[Relation],
        dest_of: List[np.ndarray],
        overprovision: float = 1.0,
    ) -> ShuffleResult:
        """Shuffle ``sources[s]`` tuples to partitions ``dest_of[s]``.

        ``overprovision`` scales the permutable destination-buffer size
        relative to the exact inbound total (the CPU only has a
        "best-effort overprovisioned estimation" before the histograms
        are exchanged; 1.0 models the exact post-histogram size).
        """
        if len(sources) != len(dest_of):
            raise ValueError("sources and destination maps must align")
        if overprovision < 1.0:
            raise ValueError("overprovision must be >= 1.0")
        num_src = len(sources)

        # Histogram-build step: per source, tuples per destination.
        histograms = []
        for rel, dests in zip(sources, dest_of):
            if len(rel) != len(dests):
                raise ValueError("destination map length must match relation")
            histograms.append(build_histogram(dests, self._num_dest))

        # shuffle_begin: exchange totals, seal the barrier.
        barrier = ShuffleBarrier(self._num_dest if self._num_dest >= num_src else num_src)
        for src, hist in enumerate(histograms):
            for dest in range(self._num_dest):
                barrier.announce(src, dest, int(hist[dest]) * TUPLE_B)
        barrier.seal()

        # Build per-(source, dest) tuple streams, preserving source order.
        streams: List[List[np.ndarray]] = []
        for rel, dests in zip(sources, dest_of):
            order = np.argsort(dests, kind="stable")
            sorted_data = rel.data[order]
            sorted_dests = np.asarray(dests)[order]
            boundaries = np.searchsorted(sorted_dests, np.arange(self._num_dest + 1))
            streams.append(
                [
                    sorted_data[boundaries[d] : boundaries[d + 1]]
                    for d in range(self._num_dest)
                ]
            )

        per_src_offsets = source_write_offsets(histograms)
        destinations: List[Relation] = []
        traces: List[np.ndarray] = []
        inbound: List[np.ndarray] = []
        for dest in range(self._num_dest):
            rel, trace, hist = self._materialize_destination(
                dest,
                [streams[s][dest] for s in range(num_src)],
                [int(per_src_offsets[s][dest]) for s in range(num_src)],
                barrier,
                overprovision,
            )
            destinations.append(rel)
            traces.append(trace)
            inbound.append(hist)

        if not barrier.all_complete():
            raise RuntimeError("shuffle barrier incomplete after all deliveries")
        return ShuffleResult(
            destinations=destinations,
            write_traces=traces,
            inbound_histograms=inbound,
            barrier=barrier,
            permutable=self._permutable,
        )

    def _materialize_destination(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        if self._vectorized:
            return self._materialize_vectorized(
                dest, inbound_streams, src_offsets, barrier, overprovision
            )
        return self._materialize_scalar(
            dest, inbound_streams, src_offsets, barrier, overprovision
        )

    def _materialize_vectorized(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        """Array-native materialization: the whole arrival loop becomes a
        handful of fancy-indexing operations.

        ``flat`` maps arrival order to positions in the concatenation of
        the inbound streams; the permutable path writes arrivals at the
        sequential tail (one :meth:`PermutableWriteEngine.write_batch`),
        the addressed path scatters them to their exact histogram slots.
        """
        hist = np.array([len(s) for s in inbound_streams], dtype=np.int64)
        total = int(hist.sum())
        src_arr, idx_arr = self._interleave(hist)
        starts = stream_starts(hist)
        concat = (
            np.concatenate(inbound_streams)
            if inbound_streams
            else np.empty(0, dtype=TUPLE_DTYPE)
        )
        offsets = np.asarray(src_offsets, dtype=np.int64)
        flat = starts[src_arr] + idx_arr

        if self._permutable:
            capacity = max(1, int(np.ceil(total * overprovision)))
            engine = PermutableWriteEngine(
                PermutableRegionConfig(
                    base=0, size_b=capacity * self._object_b, object_b=self._object_b
                )
            )
            trace = engine.write_batch(
                count=total,
                marked_addrs=offsets[src_arr] * self._object_b,
            )
            buffer = concat[flat]
        else:
            slots = offsets[src_arr] + idx_arr
            trace = slots * self._object_b
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            buffer[slots] = concat[flat]
        barrier.deliver_batch(dest, total * TUPLE_B)
        return Relation(buffer, f"shuffle_dest/{dest}"), trace, hist

    def _materialize_scalar(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        """Per-tuple reference loop (the seed implementation), kept so the
        equivalence suite can pin the vectorized path against it."""
        lengths = [len(s) for s in inbound_streams]
        total = sum(lengths)
        arrival = list(zip(*self._interleave(lengths)))
        hist = np.array(lengths, dtype=np.int64)

        if self._permutable:
            capacity = max(1, int(np.ceil(total * overprovision)))
            engine = PermutableWriteEngine(
                PermutableRegionConfig(
                    base=0, size_b=capacity * self._object_b, object_b=self._object_b
                )
            )
            trace = np.empty(total, dtype=np.int64)
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            for i, (src, idx) in enumerate(arrival):
                addr = engine.write(None, marked_addr=src_offsets[src] * self._object_b)
                trace[i] = addr
                buffer[i] = inbound_streams[src][idx]
                barrier.deliver(dest, TUPLE_B)
            relation = Relation(buffer, f"shuffle_dest/{dest}")
        else:
            trace = np.empty(total, dtype=np.int64)
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            cursors = list(src_offsets)
            for i, (src, idx) in enumerate(arrival):
                slot = cursors[src]
                cursors[src] += 1
                trace[i] = slot * self._object_b
                buffer[slot] = inbound_streams[src][idx]
                barrier.deliver(dest, TUPLE_B)
            relation = Relation(buffer, f"shuffle_dest/{dest}")
        return relation, trace, hist
